//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale <f64>] [--seed <u64>] [--workers <n>] [--experiment <id>]
//! ```
//!
//! Experiment ids follow DESIGN.md's index: `e1` (prevalence), `fig1`,
//! `e3` (reach), `table1`, `table2`, `table3`, `table4`, `e7` (evasion),
//! `e8` (randomization checks), `e9` (excluded canvases), `e10`
//! (cross-device validation), `e12` ($document rule design), `e14`
//! (static-vs-dynamic cross-validation), or `all` (default).
//! Paper-vs-measured comparisons print as aligned tables.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::study::{run_study, StudyOptions, StudyResults};
use canvassing_vendors::all_vendors;
use canvassing_webgen::{SyntheticWeb, WebConfig};

struct Args {
    scale: f64,
    seed: u64,
    workers: usize,
    experiment: String,
    json_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 2025,
        workers: 8,
        experiment: "all".to_string(),
        json_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--workers" => args.workers = value("--workers").parse().expect("workers"),
            "--experiment" => args.experiment = value("--experiment"),
            "--json" => args.json_out = Some(value("--json")),
            "--help" | "-h" => {
                eprintln!("usage: repro [--scale F] [--seed N] [--workers N] [--experiment ID]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One paper-vs-measured comparison line.
fn cmp(label: &str, paper: &str, measured: String) {
    println!("  {label:<52} paper: {paper:<14} measured: {measured}");
}

fn pct(n: usize, base: usize) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * n as f64 / base as f64
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });
    let want = |id: &str| args.experiment == "all" || args.experiment == id;
    let options = StudyOptions {
        workers: args.workers,
        adblock_crawls: want("table2"),
        m1_validation: want("e10"),
        // E13 is an extension beyond the paper; only run when asked for
        // explicitly (it adds four more full crawls).
        defense_sweep: args.experiment == "e13",
        trace: false,
        // The serving replay is a deployment extension, not a paper
        // experiment; the soak bin (`serve_soak`) owns it.
        serving: false,
        engine: Default::default(),
    };
    eprintln!(
        "running study (control{} crawls) ...",
        if options.adblock_crawls {
            " + ad-blocker + M1"
        } else {
            ""
        }
    );
    let start = std::time::Instant::now();
    let results = run_study(&web, &options);
    eprintln!("study completed in {:.1?}", start.elapsed());

    if want("e1") {
        print_e1(&results);
    }
    if want("fig1") {
        print_fig1(&results);
    }
    if want("e3") {
        print_e3(&results);
    }
    if want("table1") {
        print_table1(&results);
    }
    if want("table2") {
        print_table2(&results);
    }
    if want("table3") {
        print_table3(&results);
    }
    if want("table4") {
        print_table4(&results);
    }
    if want("e7") {
        print_e7(&results);
    }
    if want("e8") {
        print_e8(&results);
    }
    if want("e9") {
        print_e9(&results);
    }
    if want("e10") {
        print_e10(&results);
    }
    if want("e12") {
        print_e12();
    }
    if want("e14") {
        print_e14(&results);
    }
    if args.experiment == "e13" {
        print_e13(&results);
    }
    if let Some(path) = &args.json_out {
        std::fs::write(path, results.to_json().expect("serialize")).expect("write json");
        eprintln!("wrote JSON results to {path}");
    }
}

fn print_e14(r: &StudyResults) {
    println!("\n== E14 (extension): static classifier vs dynamic detection ==");
    println!(
        "  {:<8} {:>5} {:>5} {:>5} {:>5} {:>13} {:>10} {:>8} {:>7}",
        "cohort", "TP", "FP", "FN", "TN", "inconclusive", "precision", "recall", "F1"
    );
    for (label, m) in [
        ("popular", &r.popular.static_dynamic),
        ("tail", &r.tail.static_dynamic),
    ] {
        println!(
            "  {:<8} {:>5} {:>5} {:>5} {:>5} {:>13} {:>10.3} {:>8.3} {:>7.3}",
            label,
            m.tp,
            m.fp,
            m.fn_,
            m.tn,
            m.inconclusive,
            m.precision(),
            m.recall(),
            m.f1()
        );
    }
    println!(
        "  {:<24} {:<38} double-render agrees",
        "vendor", "static verdict"
    );
    for row in &r.vendor_static {
        println!(
            "  {:<24} {:<38} {}",
            row.name,
            canvassing::validation::verdict_label(row.verdict),
            if row.double_render_agrees {
                "yes"
            } else {
                "NO"
            }
        );
    }
}

fn print_e13(r: &StudyResults) {
    println!("\n== E13 (extension): the measurement under canvas defenses ==");
    println!(
        "  {:<22} {:>16} {:>22} {:>10}",
        "defense", "unique canvases", "unstable-check sites", "fp sites"
    );
    for row in &r.defense_sweep {
        println!(
            "  {:<22} {:>16} {:>22} {:>10}",
            row.label, row.unique_canvases, row.unstable_sites, row.fingerprinting_sites
        );
    }
    println!(
        "  (per-render noise makes every extraction unique — clustering collapses; \
         per-session noise keeps within-visit stability but still splinters clusters \
         across sessions; blocking produces one shared constant canvas)"
    );
}

fn print_e1(r: &StudyResults) {
    println!("\n== E1: Prevalence (Section 4.1) ==");
    let p = &r.popular.prevalence;
    let t = &r.tail.prevalence;
    cmp(
        "popular sites crawled successfully",
        "16,276",
        format!("{}", p.successes),
    );
    cmp(
        "tail sites crawled successfully",
        "17,260",
        format!("{}", t.successes),
    );
    println!("  failure breakdown by kind (popular / tail):");
    let mut kinds: Vec<_> = r
        .popular
        .failures
        .keys()
        .chain(r.tail.failures.keys())
        .copied()
        .collect();
    kinds.sort();
    kinds.dedup();
    for kind in kinds {
        println!(
            "    {:<14} {:>6} / {}",
            kind,
            r.popular.failures.get(&kind).copied().unwrap_or(0),
            r.tail.failures.get(&kind).copied().unwrap_or(0),
        );
    }
    cmp(
        "popular sites fingerprinting",
        "2,067 (12.7%)",
        format!(
            "{} ({:.1}%)",
            p.fingerprinting_sites,
            100.0 * p.fingerprinting_rate()
        ),
    );
    cmp(
        "tail sites fingerprinting",
        "1,715 (9.9%)",
        format!(
            "{} ({:.1}%)",
            t.fingerprinting_sites,
            100.0 * t.fingerprinting_rate()
        ),
    );
    cmp(
        "canvases per fingerprinting site (mean/median/max)",
        "3.31 / 2 / 60",
        format!(
            "{:.2} / {} / {}",
            p.mean_canvases, p.median_canvases, p.max_canvases
        ),
    );
}

fn print_fig1(r: &StudyResults) {
    println!("\n== E2: Figure 1 — top-50 canvas popularity ==");
    println!("{}", r.figure1.render_ascii(30));
    if let Some((pop, tail)) = r.figure1.tail_outlier {
        cmp(
            "Shopify outlier (popular / tail sites)",
            "32 / 454",
            format!("{pop} / {tail}"),
        );
    }
    cmp(
        "most frequent popular canvas site count",
        "483",
        format!(
            "{}",
            r.figure1.bars.first().map(|b| b.popular_sites).unwrap_or(0)
        ),
    );
}

fn print_e3(r: &StudyResults) {
    println!("\n== E3: Reach (Section 4.2) ==");
    cmp(
        "unique canvases (popular / tail)",
        "504 / 288",
        format!(
            "{} / {}",
            r.popular.clustering.unique_canvases(),
            r.tail.clustering.unique_canvases()
        ),
    );
    let top6 = r.popular.clustering.sites_covered_by_top(6);
    cmp(
        "top-6 canvases cover popular fp sites",
        "70.1%",
        format!(
            "{:.1}%",
            pct(top6, r.popular.prevalence.fingerprinting_sites)
        ),
    );
    cmp(
        "tail fp sites sharing a canvas with popular",
        "91.4%",
        format!("{:.1}%", 100.0 * r.overlap.sharing_fraction()),
    );
    let sizes = &r.overlap.tail_only_cluster_sizes;
    cmp(
        "largest / next tail-only cluster",
        "15 / 3",
        format!(
            "{} / {}",
            sizes.first().copied().unwrap_or(0),
            sizes.get(1).copied().unwrap_or(0)
        ),
    );
}

fn print_table1(r: &StudyResults) {
    println!("\n== E4: Table 1 — vendor reach ==");
    const PAPER: &[(&str, usize, usize)] = &[
        ("Akamai", 485, 205),
        ("FingerprintJS", 462, 298),
        ("mail.ru", 242, 173),
        ("FingerprintJS (legacy)", 179, 90),
        ("Imperva", 49, 13),
        ("AWS Firewall", 48, 14),
        ("InsurAds", 40, 1),
        ("Signifyd", 39, 18),
        ("PerimeterX", 35, 2),
        ("Sift Science", 31, 8),
        ("Shopify", 32, 457),
        ("Adscore", 25, 30),
        ("GeeTest", 1, 0),
    ];
    println!(
        "  {:<24} {:>16} {:>16} {:>16} {:>16}",
        "Service", "paper top", "measured top", "paper tail", "measured tail"
    );
    for v in &r.attribution.vendors {
        let paper = PAPER.iter().find(|(n, _, _)| *n == v.name);
        let (pp, pt) = paper.map(|(_, p, t)| (*p, *t)).unwrap_or((0, 0));
        println!(
            "  {:<24} {:>16} {:>16} {:>16} {:>16}",
            v.name, pp, v.popular_sites, pt, v.tail_sites
        );
    }
    cmp(
        "total attributed (popular / tail)",
        "1,513 (73%) / 1,222 (71%)",
        format!(
            "{} ({:.0}%) / {} ({:.0}%)",
            r.attribution.attributed_sites.0,
            100.0 * r.attribution.popular_coverage(),
            r.attribution.attributed_sites.1,
            100.0 * r.attribution.tail_coverage()
        ),
    );
    cmp(
        "FingerprintJS commercial customers",
        "23 / 10",
        format!(
            "{} / {}",
            r.attribution.fpjs_commercial_sites.0, r.attribution.fpjs_commercial_sites.1
        ),
    );
}

fn print_table2(r: &StudyResults) {
    println!("\n== E5: Table 2 — ad-blocker crawls ==");
    const PAPER: &[(&str, usize, usize, usize, usize)] = &[
        ("Control", 6037, 4422, 2067, 1715),
        ("Adblock Plus", 5834, 4228, 1948, 1656),
        ("uBlock Origin", 5776, 4175, 1976, 1651),
    ];
    println!(
        "  {:<16} {:>22} {:>22}",
        "Config", "canvases paper→meas", "sites paper→meas"
    );
    for row in &r.table2 {
        let paper = PAPER.iter().find(|(n, ..)| *n == row.label);
        let (pc0, pc1, ps0, ps1) = paper
            .map(|(_, a, b, c, d)| (*a, *b, *c, *d))
            .unwrap_or((0, 0, 0, 0));
        println!(
            "  {:<16} {:>10}/{:<5}→{:>6}/{:<6} {:>8}/{:<5}→{:>5}/{:<5}",
            row.label, pc0, pc1, row.canvases.0, row.canvases.1, ps0, ps1, row.sites.0, row.sites.1
        );
    }
}

fn print_table3(r: &StudyResults) {
    println!("\n== E11: Table 3 — attribution methods ==");
    println!(
        "  {:<24} {:<10} {:<10} {:<16} measured-method",
        "Service", "demo", "customer", "pattern"
    );
    for v in all_vendors() {
        let measured = r
            .attribution
            .vendors
            .iter()
            .find(|m| m.name == v.name)
            .map(|m| m.method.as_str())
            .unwrap_or("-");
        println!(
            "  {:<24} {:<10} {:<10} {:<16} {}",
            v.name,
            if v.attribution.demo { "yes" } else { "" },
            if v.attribution.known_customer {
                "yes"
            } else {
                ""
            },
            v.url_pattern.unwrap_or("(per-site regex)"),
            measured,
        );
    }
}

fn print_table4(r: &StudyResults) {
    println!("\n== E6: Table 4 — blocklist coverage of canvases ==");
    const PAPER_POP: &[(&str, usize)] = &[
        ("EasyList", 1869),
        ("EasyPrivacy", 2157),
        ("Disconnect", 1251),
        ("Any", 2696),
        ("All", 942),
    ];
    const PAPER_TAIL: &[(&str, usize)] = &[
        ("EasyList", 1179),
        ("EasyPrivacy", 1340),
        ("Disconnect", 833),
        ("Any", 1635),
        ("All", 670),
    ];
    for (analysis, paper) in [(&r.popular, PAPER_POP), (&r.tail, PAPER_TAIL)] {
        let c = &analysis.coverage;
        println!("  {:?} cohort ({} canvases):", analysis.cohort, c.total);
        let rows = [
            ("EasyList", c.easylist),
            ("EasyPrivacy", c.easyprivacy),
            ("Disconnect", c.disconnect),
            ("Any", c.any),
            ("All", c.all),
        ];
        for (name, measured) in rows {
            let p = paper
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            cmp(
                &format!("  {name}"),
                &format!("{p}"),
                format!("{} ({:.0}%)", measured, pct(measured, c.total)),
            );
        }
    }
}

fn print_e7(r: &StudyResults) {
    println!("\n== E7: Evasion (Section 5.2) ==");
    let p = &r.popular.evasion;
    let t = &r.tail.evasion;
    cmp(
        "sites with ≥1 first-party canvas (pop/tail)",
        "49% / 52%",
        format!(
            "{:.1}% / {:.1}%",
            p.pct(p.first_party_sites),
            t.pct(t.first_party_sites)
        ),
    );
    cmp(
        "subdomain routing (pop/tail)",
        "9.5% / 2.1%",
        format!(
            "{:.1}% / {:.1}%",
            p.pct(p.subdomain_sites),
            t.pct(t.subdomain_sites)
        ),
    );
    cmp(
        "popular-CDN serving (pop/tail)",
        "2.1% / 1.9%",
        format!("{:.1}% / {:.1}%", p.pct(p.cdn_sites), t.pct(t.cdn_sites)),
    );
    cmp(
        "CNAME cloaking (pop/tail)",
        "(present)",
        format!(
            "{:.1}% / {:.1}%",
            p.pct(p.cname_sites),
            t.pct(t.cname_sites)
        ),
    );
}

fn print_e8(r: &StudyResults) {
    println!("\n== E8: Randomization checks (Section 5.3) ==");
    let p = &r.popular.evasion;
    let t = &r.tail.evasion;
    let both = p.double_render_sites + t.double_render_sites;
    let base = p.fingerprinting_sites + t.fingerprinting_sites;
    cmp(
        "fp sites performing the double-render check",
        "45%",
        format!(
            "{:.1}% (pop {:.1}%, tail {:.1}%)",
            pct(both, base),
            p.pct(p.double_render_sites),
            t.pct(t.double_render_sites)
        ),
    );
}

fn print_e9(r: &StudyResults) {
    println!("\n== E9: Excluded canvases (Appendix A.2) ==");
    let p = &r.popular.prevalence;
    let t = &r.tail.prevalence;
    cmp(
        "fingerprintable fraction of extractions",
        "83%",
        format!(
            "{:.0}% (pop), {:.0}% (tail)",
            100.0 * p.fingerprintable_fraction(),
            100.0 * t.fingerprintable_fraction()
        ),
    );
    cmp(
        "popular sites with lossy/WebP probes",
        "306",
        format!("{}", p.lossy_probe_sites),
    );
    cmp(
        "popular sites with small canvases",
        "216",
        format!("{}", p.small_canvas_sites),
    );
    cmp(
        "fully-excluded sites (pop/tail)",
        "155 / 138",
        format!("{} / {}", p.fully_excluded_sites, t.fully_excluded_sites),
    );
}

fn print_e10(r: &StudyResults) {
    println!("\n== E10: Cross-device validation (Section 3.1) ==");
    match &r.validation {
        Some(v) => {
            cmp(
                "canvases differ across devices",
                "yes",
                format!("{}", v.canvases_differ),
            );
            cmp(
                "site groupings identical",
                "yes",
                format!("{}", v.partitions_match),
            );
            cmp(
                "unique canvases Intel / M1",
                "equal",
                format!("{} / {}", v.unique_canvases.0, v.unique_canvases.1),
            );
        }
        None => println!("  (skipped — run with --experiment e10 or all)"),
    }
}

fn print_e12() {
    println!("\n== E12: $document rule design failure (Appendix A.6) ==");
    use canvassing_blocklist::FilterList;
    use canvassing_net::{ResourceType, Url};
    let list = FilterList::parse("EasyList-excerpt", "||mgid.com^$document\n");
    let script = Url::parse("https://mgid.com/fp-collect.js").unwrap();
    let doc = Url::parse("https://mgid.com/landing").unwrap();
    cmp(
        "||mgid.com^$document blocks mgid's script",
        "no",
        format!("{}", list.covers_script_url(&script, ResourceType::Script)),
    );
    cmp(
        "||mgid.com^$document blocks mgid documents",
        "yes",
        format!("{}", list.covers_script_url(&doc, ResourceType::Document)),
    );
}
