//! `bench` — the crawl-throughput perf-regression harness.
//!
//! ```text
//! bench [--scale F]... [--seed N] [--workers N] [--out PATH] [--check]
//! ```
//!
//! At each `--scale` point (repeatable; defaults to 0.05 and 0.2) the
//! harness generates the synthetic web, then crawls the combined
//! popular + tail frontier three ways:
//!
//! 1. **baseline** — every cache layer disabled (the pre-cache code path);
//! 2. **cold** — caches enabled but empty (first crawl of a session);
//! 3. **warm** — the same caches re-used (re-crawl / ablation pattern).
//!
//! Each pass records wall time, sites/sec, parse and render counts, and
//! cache hit rates; the harness also asserts the three datasets are
//! byte-identical (caching must never change records). Results land in
//! `BENCH_2.json` (override with `--out`) together with a peak-RSS proxy
//! read from `/proc/self/status`. With `--check`, the process exits
//! nonzero unless every scale's warm pass parsed strictly fewer scripts
//! than its cold pass — the CI regression gate for the cache layers.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{crawl_with_caches, CachingPolicy, CrawlConfig, CrawlStats};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::Serialize;

struct Args {
    scales: Vec<f64>,
    seed: u64,
    workers: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scales: Vec::new(),
        seed: 2025,
        workers: 8,
        out: "BENCH_2.json".to_string(),
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scales.push(value("--scale").parse().expect("scale")),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--workers" => args.workers = value("--workers").parse().expect("workers"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench [--scale F]... [--seed N] [--workers N] [--out PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.scales.is_empty() {
        args.scales = vec![0.05, 0.2];
    }
    args
}

/// One timed crawl pass. `sites_per_sec` is computed from process CPU
/// time (all threads), not wall time: CI and shared machines preempt
/// long runs unpredictably, and CPU time measures the compute the crawl
/// actually consumed — the quantity the cache layers reduce. Wall time
/// is reported alongside for context.
#[derive(Serialize)]
struct Pass {
    wall_ms: f64,
    cpu_ms: f64,
    sites_per_sec: f64,
    script_parses: u64,
    script_cache_hit_rate: f64,
    script_executions: u64,
    memo_computes: u64,
    memo_hits: u64,
    memo_hit_rate: f64,
}

impl Pass {
    fn new(wall: std::time::Duration, cpu_ms: f64, stats: &CrawlStats) -> Pass {
        // Fall back to wall time where /proc is unavailable.
        let secs = if cpu_ms > 0.0 {
            cpu_ms / 1e3
        } else {
            wall.as_secs_f64()
        }
        .max(1e-9);
        Pass {
            wall_ms: wall.as_secs_f64() * 1e3,
            cpu_ms,
            sites_per_sec: stats.sites as f64 / secs,
            script_parses: stats.script_parses,
            script_cache_hit_rate: stats.script_cache_hit_rate(),
            script_executions: stats.script_executions,
            memo_computes: stats.memo_computes,
            memo_hits: stats.memo_hits,
            memo_hit_rate: stats.memo_hit_rate(),
        }
    }
}

/// Cumulative process CPU time (utime + stime over all threads) in
/// milliseconds, from /proc/self/stat; 0.0 when unavailable.
fn cpu_time_ms() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // Fields 14/15 (1-based) are utime/stime in clock ticks; the comm
    // field may contain spaces but is parenthesized, so split after it.
    let Some(after_comm) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let ticks: u64 = match (
        fields.get(11).and_then(|v| v.parse::<u64>().ok()),
        fields.get(12).and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(u), Some(s)) => u + s,
        _ => return 0.0,
    };
    // Linux reports 100 ticks/sec (USER_HZ) on every mainstream arch.
    ticks as f64 * 10.0
}

/// Results for one `--scale` point.
#[derive(Serialize)]
struct ScaleReport {
    scale: f64,
    sites: u64,
    baseline: Pass,
    cold: Pass,
    warm: Pass,
    /// cold parses / warm parses (∞ encoded as parse count with 0 warm).
    cold_to_warm_parse_ratio: f64,
    /// warm sites/sec over baseline sites/sec.
    warm_speedup_vs_baseline: f64,
    /// cold sites/sec over baseline sites/sec.
    cold_speedup_vs_baseline: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    seed: u64,
    workers: usize,
    /// Peak resident set (VmHWM) of the bench process, in kilobytes —
    /// a proxy covering all passes; 0 when /proc is unavailable.
    peak_rss_kb: u64,
    scales: Vec<ScaleReport>,
}

/// VmHWM from /proc/self/status, in kB (0 when unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args = parse_args();
    let mut scales = Vec::new();
    let mut check_failures = Vec::new();

    for &scale in &args.scales {
        eprintln!(
            "[scale {scale}] generating synthetic web (seed {}) ...",
            args.seed
        );
        let web = SyntheticWeb::generate(WebConfig {
            seed: args.seed,
            scale,
        });
        let mut frontier = web.frontier(Cohort::Popular);
        frontier.extend(web.frontier(Cohort::Tail));

        let mut baseline_config = CrawlConfig::control();
        baseline_config.workers = args.workers;
        baseline_config.caching = CachingPolicy::disabled();
        let mut cached_config = CrawlConfig::control();
        cached_config.workers = args.workers;

        // Each pass drops its dataset (keeping only an FNV-1a hash of its
        // JSON for the byte-identity check) before the next pass starts:
        // retaining multi-GB datasets across passes would tax the later
        // passes' allocations and skew the comparison.
        let run_pass = |config: &CrawlConfig,
                        caches: &canvassing_browser::CrawlCaches|
         -> (Pass, CrawlStats, u64) {
            let start = std::time::Instant::now();
            let cpu_start = cpu_time_ms();
            let (ds, stats) = crawl_with_caches(&web.network, &frontier, config, caches);
            let wall = start.elapsed();
            let cpu = cpu_time_ms() - cpu_start;
            let json = ds.to_json().expect("serialize");
            let mut hash: u64 = 0xcbf29ce484222325;
            for b in json.as_bytes() {
                hash ^= *b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            (Pass::new(wall, cpu, &stats), stats, hash)
        };

        eprintln!(
            "[scale {scale}] baseline crawl ({} sites, caches off) ...",
            frontier.len()
        );
        let no_caches = baseline_config.build_caches();
        let (baseline, baseline_stats, baseline_hash) = run_pass(&baseline_config, &no_caches);

        eprintln!("[scale {scale}] cold cached crawl ...");
        let caches = cached_config.build_caches();
        let (cold, cold_stats, cold_hash) = run_pass(&cached_config, &caches);

        eprintln!("[scale {scale}] warm cached crawl ...");
        let (warm, warm_stats, warm_hash) = run_pass(&cached_config, &caches);

        assert_eq!(
            baseline_hash, cold_hash,
            "cold cached crawl changed the dataset"
        );
        assert_eq!(
            baseline_hash, warm_hash,
            "warm cached crawl changed the dataset"
        );
        eprintln!(
            "[scale {scale}] sites/sec: baseline {:.0}, cold {:.0}, warm {:.0}; \
             parses: baseline-executions {}, cold {}, warm {}",
            baseline.sites_per_sec,
            cold.sites_per_sec,
            warm.sites_per_sec,
            baseline.script_executions,
            cold.script_parses,
            warm.script_parses,
        );

        if args.check && warm_stats.script_parses >= cold_stats.script_parses {
            check_failures.push(format!(
                "scale {scale}: warm parses {} not strictly below cold parses {}",
                warm_stats.script_parses, cold_stats.script_parses
            ));
        }

        scales.push(ScaleReport {
            scale,
            sites: baseline_stats.sites,
            cold_to_warm_parse_ratio: cold_stats.script_parses as f64
                / (warm_stats.script_parses.max(1)) as f64,
            warm_speedup_vs_baseline: warm.sites_per_sec / baseline.sites_per_sec.max(1e-9),
            cold_speedup_vs_baseline: cold.sites_per_sec / baseline.sites_per_sec.max(1e-9),
            baseline,
            cold,
            warm,
        });
    }

    let report = BenchReport {
        bench: "crawl_throughput",
        seed: args.seed,
        workers: args.workers,
        peak_rss_kb: peak_rss_kb(),
        scales,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);

    if !check_failures.is_empty() {
        for failure in &check_failures {
            eprintln!("CHECK FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
