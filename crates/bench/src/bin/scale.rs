//! `scale` — the million-site streaming scale-out gate (PR 9).
//!
//! ```text
//! scale [--scale F]... [--seed N] [--rss-cap-mb N] [--smoke-scale F]
//!       [--out PATH] [--baseline PATH] [--check]
//! ```
//!
//! The batch pipeline materializes every `SiteRecord`, so memory grows
//! linearly with the frontier and the reproduction stalls around scale
//! 1.0 (40k sites). This harness gates the streaming replacement
//! ([`run_study_streamed`]) three ways:
//!
//! * **memory** — every `--scale` runs the streamed study first, then
//!   the process-lifetime peak RSS (`VmHWM`) is snapshotted *once*,
//!   before any in-memory work, and compared against `--rss-cap-mb`.
//!   The cap is a constant: if streaming is truly constant-memory, the
//!   same cap holds at every scale.
//! * **equivalence** — each scale then re-runs the batch [`run_study`]
//!   and the two rendered reports must be byte-identical (`--check`
//!   fails otherwise). This necessarily materializes the dataset, which
//!   is why it happens *after* the RSS snapshot.
//! * **reach** — `--smoke-scale 25` streams both cohorts of a
//!   million-site web (2 × 500k) through [`CohortAccumulator`]s,
//!   proving the scale the batch path cannot touch completes at all.
//!
//! Results land in `BENCH_9.json`. The `deterministic` section carries
//! per-(scale, kind) site counts, fingerprinting counts, and an FNV-1a
//! hash of each streamed report; `--baseline PATH` requires every fresh
//! entry to exactly match the committed entry with the same (scale,
//! kind) — committed entries the run didn't re-measure are ignored, so
//! CI can gate a reduced-scale subset against the full committed file.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::study::{run_study, run_study_streamed, StreamingOptions, StudyOptions};
use canvassing::CohortAccumulator;
use canvassing_blocklist::{DisconnectList, FilterList};
use canvassing_crawler::{crawl_streamed, CrawlConfig};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::{Deserialize, Serialize};

struct Args {
    scales: Vec<f64>,
    seed: u64,
    rss_cap_mb: u64,
    smoke_scale: f64,
    out: String,
    baseline: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scales: Vec::new(),
        seed: 2025,
        rss_cap_mb: 0,
        smoke_scale: 0.0,
        out: "BENCH_9.json".to_string(),
        baseline: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scales.push(value("--scale").parse().expect("scale")),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--rss-cap-mb" => args.rss_cap_mb = value("--rss-cap-mb").parse().expect("rss-cap-mb"),
            "--smoke-scale" => {
                args.smoke_scale = value("--smoke-scale").parse().expect("smoke-scale")
            }
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: scale [--scale F]... [--seed N] [--rss-cap-mb N] \
                     [--smoke-scale F] [--out PATH] [--baseline PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.scales.is_empty() {
        args.scales.push(1.0);
    }
    args.scales.sort_by(|a, b| a.partial_cmp(b).expect("scale"));
    args
}

/// FNV-1a over a byte string.
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Cumulative process CPU time (utime + stime) in milliseconds, from
/// /proc/self/stat; 0.0 when unavailable.
fn cpu_time_ms() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    let Some(after_comm) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let ticks: u64 = match (
        fields.get(11).and_then(|v| v.parse::<u64>().ok()),
        fields.get(12).and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(u), Some(s)) => u + s,
        _ => return 0.0,
    };
    ticks as f64 * 10.0
}

/// VmHWM from /proc/self/status, in kB (0 when unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The study configuration the gate runs: control crawls with traces
/// (so the observability section exercises per-chunk flushing), no
/// re-crawl experiments — the streamed-vs-batch delta is entirely in
/// the control path, and the extra crawls would only dilute the gate.
fn gate_options() -> StudyOptions {
    StudyOptions {
        workers: 8,
        adblock_crawls: false,
        m1_validation: false,
        defense_sweep: false,
        trace: true,
        serving: false,
        engine: Default::default(),
    }
}

/// One measured run in the machine-independent section. `kind` is
/// `"gate"` (streamed study + batch equivalence) or `"smoke"`
/// (streamed crawl reach, counts only).
#[derive(Clone, Serialize, Deserialize, PartialEq)]
struct ScaleEntry {
    scale: f64,
    kind: String,
    /// Sites attempted across both cohorts.
    sites: u64,
    /// Successful visits across both cohorts.
    successes: u64,
    /// Fingerprinting sites across both cohorts.
    fingerprinting_sites: u64,
    /// Unique canvases across both cohorts (not deduplicated between).
    unique_canvases: u64,
    /// FNV-1a of the streamed report bytes (gate runs only).
    report_fnv: Option<String>,
    /// Whether the batch report matched byte for byte (gate runs only).
    matches_in_memory: Option<bool>,
}

/// Same scale + seed must reproduce this section exactly on any host.
#[derive(Serialize, Deserialize, PartialEq)]
struct Deterministic {
    seed: u64,
    entries: Vec<ScaleEntry>,
}

#[derive(Serialize)]
struct Timing {
    scale: f64,
    kind: &'static str,
    phase: &'static str,
    wall_ms: f64,
    cpu_ms: f64,
    sites_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    deterministic: Deterministic,
    /// Peak RSS after all streaming phases, before any batch run — the
    /// `--rss-cap-mb` gate value.
    streaming_peak_rss_kb: u64,
    rss_cap_mb: u64,
    /// Final process peak RSS (includes the batch equivalence runs).
    peak_rss_kb: u64,
    timings: Vec<Timing>,
}

fn timed<T>(
    timings: &mut Vec<Timing>,
    scale: f64,
    kind: &'static str,
    phase: &'static str,
    sites: u64,
    f: impl FnOnce() -> T,
) -> T {
    let start = std::time::Instant::now();
    let cpu_start = cpu_time_ms();
    let out = f();
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let cpu = cpu_time_ms() - cpu_start;
    let secs = (wall / 1e3).max(1e-9);
    eprintln!(
        "[scale] {kind} {scale}: {phase} done in {:.1}s ({:.0} sites/sec)",
        wall / 1e3,
        sites as f64 / secs
    );
    timings.push(Timing {
        scale,
        kind,
        phase,
        wall_ms: wall,
        cpu_ms: cpu,
        sites_per_sec: sites as f64 / secs,
    });
    out
}

/// Streams both cohorts of a web through accumulators without building
/// a study — the smoke path: proves the crawl + fold pipeline completes
/// at scales where reports are beside the point.
fn smoke(web: &SyntheticWeb, workers: usize) -> ScaleEntry {
    let easylist = FilterList::parse("EasyList", &web.lists.easylist);
    let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
    let disconnect = DisconnectList::parse(&web.lists.disconnect);
    let mut config = CrawlConfig::control();
    config.workers = workers;

    let mut entry = ScaleEntry {
        scale: 0.0,
        kind: "smoke".into(),
        sites: 0,
        successes: 0,
        fingerprinting_sites: 0,
        unique_canvases: 0,
        report_fnv: None,
        matches_in_memory: None,
    };
    for cohort in [Cohort::Popular, Cohort::Tail] {
        let frontier = web.frontier(cohort);
        let caches = config.build_caches();
        let mut acc = CohortAccumulator::new();
        crawl_streamed(
            &web.network,
            &frontier,
            &config,
            &caches,
            512,
            |_, record| {
                acc.absorb(&record, &easylist, &easyprivacy, &disconnect);
            },
        );
        let analysis = acc.finish(cohort);
        entry.sites += analysis.attempted as u64;
        entry.successes += analysis.prevalence.successes as u64;
        entry.fingerprinting_sites += analysis.prevalence.fingerprinting_sites as u64;
        entry.unique_canvases += analysis.clustering.unique_canvases() as u64;
    }
    entry
}

fn main() {
    let args = parse_args();
    let options = gate_options();
    let streaming = StreamingOptions {
        chunk_sites: 512,
        segment_sites: 4096,
        spill_dir: None,
        shards: 1,
    };
    let mut timings: Vec<Timing> = Vec::new();
    let mut entries: Vec<ScaleEntry> = Vec::new();
    let mut streamed_reports: Vec<(f64, String)> = Vec::new();

    // Phase 1 — every streaming run, ascending scale. Nothing batch
    // happens before the RSS snapshot below, so VmHWM here is the
    // streaming pipeline's true high-water mark.
    for &scale in &args.scales {
        eprintln!(
            "[scale] gate {scale}: generating web (seed {}) ...",
            args.seed
        );
        let web = SyntheticWeb::generate(WebConfig {
            seed: args.seed,
            scale,
        });
        let sites = (web.frontier(Cohort::Popular).len() + web.frontier(Cohort::Tail).len()) as u64;
        let results = timed(&mut timings, scale, "gate", "streamed_study", sites, || {
            run_study_streamed(&web, &options, &streaming).expect("no spill configured")
        });
        let report = results.render_report();
        entries.push(ScaleEntry {
            scale,
            kind: "gate".into(),
            sites,
            successes: (results.popular.prevalence.successes + results.tail.prevalence.successes)
                as u64,
            fingerprinting_sites: (results.popular.prevalence.fingerprinting_sites
                + results.tail.prevalence.fingerprinting_sites)
                as u64,
            unique_canvases: (results.popular.clustering.unique_canvases()
                + results.tail.clustering.unique_canvases()) as u64,
            report_fnv: Some(format!("{:016x}", fnv(report.as_bytes()))),
            matches_in_memory: None,
        });
        streamed_reports.push((scale, report));
    }
    // The memory gate: every gate-scale streaming study has run,
    // nothing batch has. The smoke run comes after the snapshot — its
    // synthetic *web* alone dwarfs any dataset (a million generated
    // sites live in memory), so it gates reach, not residency.
    let streaming_peak_rss_kb = peak_rss_kb();
    eprintln!(
        "[scale] streaming peak RSS: {:.1} MB (cap: {} MB)",
        streaming_peak_rss_kb as f64 / 1024.0,
        args.rss_cap_mb
    );
    let mut check_failures: Vec<String> = Vec::new();
    if args.rss_cap_mb > 0 && streaming_peak_rss_kb > args.rss_cap_mb * 1024 {
        check_failures.push(format!(
            "streaming peak RSS {:.1} MB exceeds the {} MB cap",
            streaming_peak_rss_kb as f64 / 1024.0,
            args.rss_cap_mb
        ));
    }

    // Phase 2 — reach: stream a million-site web's cohorts end to end.
    if args.smoke_scale > 0.0 {
        let scale = args.smoke_scale;
        eprintln!(
            "[scale] smoke {scale}: generating web (seed {}) ...",
            args.seed
        );
        let web = SyntheticWeb::generate(WebConfig {
            seed: args.seed,
            scale,
        });
        let sites = (web.frontier(Cohort::Popular).len() + web.frontier(Cohort::Tail).len()) as u64;
        let mut entry = timed(
            &mut timings,
            scale,
            "smoke",
            "streamed_crawl",
            sites,
            || smoke(&web, options.workers),
        );
        entry.scale = scale;
        assert_eq!(entry.sites, sites);
        entries.push(entry);
    }

    // Phase 3 — batch equivalence: the in-memory study must render the
    // same bytes. Runs after the RSS snapshot because it materializes
    // full datasets by design.
    for (scale, streamed_report) in &streamed_reports {
        let web = SyntheticWeb::generate(WebConfig {
            seed: args.seed,
            scale: *scale,
        });
        let sites = (web.frontier(Cohort::Popular).len() + web.frontier(Cohort::Tail).len()) as u64;
        let batch = timed(&mut timings, *scale, "gate", "batch_study", sites, || {
            run_study(&web, &options).render_report()
        });
        let matches = batch == *streamed_report;
        if !matches {
            let at = batch
                .bytes()
                .zip(streamed_report.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| batch.len().min(streamed_report.len()));
            check_failures.push(format!(
                "scale {scale}: streamed report diverges from batch at byte {at}"
            ));
        }
        if let Some(entry) = entries
            .iter_mut()
            .find(|e| e.kind == "gate" && e.scale == *scale)
        {
            entry.matches_in_memory = Some(matches);
        }
    }

    let deterministic = Deterministic {
        seed: args.seed,
        entries,
    };

    if let Some(path) = &args.baseline {
        /// The slice of a committed report the drift gate compares
        /// (rss and timing fields are machine-dependent and skipped).
        #[derive(Deserialize)]
        struct Baseline {
            deterministic: Deterministic,
        }
        let committed: Baseline =
            serde_json::from_str(&std::fs::read_to_string(path).expect("read baseline"))
                .expect("parse baseline");
        if committed.deterministic.seed != deterministic.seed {
            check_failures.push(format!(
                "baseline {path} was produced with seed {}, run used {}",
                committed.deterministic.seed, deterministic.seed
            ));
        }
        for fresh in &deterministic.entries {
            let Some(committed_entry) = committed
                .deterministic
                .entries
                .iter()
                .find(|e| e.kind == fresh.kind && e.scale == fresh.scale)
            else {
                check_failures.push(format!(
                    "baseline {path} has no ({}, scale {}) entry",
                    fresh.kind, fresh.scale
                ));
                continue;
            };
            if committed_entry != fresh {
                check_failures.push(format!(
                    "({}, scale {}) drifted from {path}: committed {} vs fresh {}",
                    fresh.kind,
                    fresh.scale,
                    serde_json::to_string(committed_entry).expect("serialize"),
                    serde_json::to_string(fresh).expect("serialize"),
                ));
            }
        }
    }

    let report = BenchReport {
        bench: "streaming_scale",
        deterministic,
        streaming_peak_rss_kb,
        rss_cap_mb: args.rss_cap_mb,
        peak_rss_kb: peak_rss_kb(),
        timings,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);

    if args.check && !check_failures.is_empty() {
        for failure in &check_failures {
            eprintln!("CHECK FAILED: {failure}");
        }
        std::process::exit(1);
    }
    if !args.check {
        for failure in &check_failures {
            eprintln!("note (no --check): {failure}");
        }
    }
}
