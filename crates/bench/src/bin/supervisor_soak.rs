//! `supervisor_soak` — CI soak for the crash-tolerant shard supervisor.
//!
//! ```text
//! supervisor_soak [--seed N] [--scale F] [--out PATH] [--baseline PATH]
//!                 [--jsonl PATH] [--check]
//! ```
//!
//! Re-runs the chaos battery from `tests/supervisor_chaos.rs` as a gate
//! sweep over a fixed faulted workload (48 sites, 3 shards, 6-record
//! segments), then times a clean supervised crawl of the full frontier
//! at `--scale` (default 0.05). Gates, each of which fails the process
//! under `--check`:
//!
//! 1. **Kill-at-every-record byte identity** — for every kill point K
//!    in shard 0's range, a crash with a torn segment tail at K is
//!    re-leased and the merged dataset is byte-identical to an
//!    uninterrupted `workers = 1` crawl, at exactly one re-done record.
//! 2. **Scenario byte identity** — stall (lease expiry), duplicate
//!    launch (fencing), straggler (speculation), crash-before-first-
//!    spill, and seeded mixed chaos all merge byte-identical.
//! 3. **Exact accounting** — `records_recovered + recrawled ==
//!    frontier` for every run, with `duplicates_dropped` counting every
//!    collision.
//! 4. **Re-work bound** — `records_redone <= crashes x segment_sites +
//!    duplicates_dropped` for every run.
//! 5. **Protocol visibility** — the spill-side trace carries the
//!    expected `lease.expire` / `worker.fenced` / `straggler.speculate`
//!    instants per scenario.
//!
//! Scenario reports are fully deterministic; `--baseline PATH` (the
//! committed `BENCH_10.json`) requires every fresh deterministic entry
//! to match the committed one exactly. Timings are machine-dependent
//! and never gated. `--jsonl PATH` appends one JSON line per gate (the
//! CI soak artifact).

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use canvassing_crawler::{
    crawl, shard_range, supervise_crawl, CrawlConfig, FaultScript, RetryPolicy, SpeculationPolicy,
    SupervisorConfig, WorkerFault,
};
use canvassing_net::{FaultMatrix, Url};
use canvassing_trace::{RingSink, TraceSink};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::{Deserialize, Serialize};

/// Gate-emitting callback every scenario reports through:
/// `(gate name, ok, detail, jsonl sink)`.
type GateFn<'a> = dyn FnMut(String, bool, String, &mut Option<std::fs::File>) + 'a;

/// One gate result, written per line under `--jsonl`.
#[derive(Serialize)]
struct GateLine {
    gate: String,
    ok: bool,
    detail: String,
}

/// One scenario's deterministic outcome — the unit the committed
/// baseline compares exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Entry {
    scenario: String,
    sites: usize,
    workers_launched: usize,
    workers_crashed: usize,
    workers_fenced: usize,
    workers_cancelled: usize,
    leases_expired: usize,
    leases_stolen: usize,
    re_leases: usize,
    speculative_launches: usize,
    records_crawled: usize,
    records_redone: usize,
    duplicates_dropped: usize,
    max_epoch: u64,
    dataset_fnv: String,
    matches_direct: bool,
}

#[derive(Serialize, Deserialize)]
struct Deterministic {
    seed: u64,
    entries: Vec<Entry>,
}

#[derive(Serialize)]
struct Timing {
    scale: f64,
    phase: &'static str,
    wall_ms: f64,
    sites_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    deterministic: Deterministic,
    timings: Vec<Timing>,
}

struct Args {
    seed: u64,
    scale: f64,
    out: String,
    baseline: Option<String>,
    jsonl: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 2025,
        scale: 0.05,
        out: "BENCH_10.json".into(),
        baseline: None,
        jsonl: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--jsonl" => args.jsonl = Some(value("--jsonl")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: supervisor_soak [--seed N] [--scale F] [--out PATH] \
                     [--baseline PATH] [--jsonl PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The fixed sweep workload: 48 faulted popular-frontier sites.
fn sweep_workload(seed: u64) -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
    let mut web = SyntheticWeb::generate(WebConfig { seed, scale: 0.02 });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.truncate(48);
    let targets: Vec<String> = frontier.iter().step_by(3).map(|u| u.host.clone()).collect();
    FaultMatrix::new(7).inject_all(&mut web.network.faults, targets.iter().map(String::as_str));
    let mut config = CrawlConfig::control();
    config.workers = 1;
    config.retry = RetryPolicy::retries(1);
    (web, frontier, config)
}

fn sweep_sup(trace: Option<Arc<dyn TraceSink>>) -> SupervisorConfig {
    let mut s = SupervisorConfig::new(3);
    s.segment_sites = 6;
    s.trace = trace;
    s
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("canvassing-soak-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn main() {
    let args = parse_args();
    let mut jsonl = args.jsonl.as_ref().map(|p| {
        std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create {p}: {e}");
            std::process::exit(2);
        })
    });
    let mut failures: Vec<String> = Vec::new();
    let mut gate = |name: String, ok: bool, detail: String, jsonl: &mut Option<std::fs::File>| {
        println!("[{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
        if let Some(f) = jsonl {
            let line = GateLine {
                gate: name.clone(),
                ok,
                detail,
            };
            let _ = writeln!(f, "{}", serde_json::to_string(&line).expect("gate line"));
        }
        if !ok {
            failures.push(name);
        }
    };

    let (web, frontier, config) = sweep_workload(args.seed);
    let direct = crawl(&web.network, &frontier, &config);
    let direct_json = serde_json::to_string(&direct).expect("dataset serializes");
    let mut entries: Vec<Entry> = Vec::new();

    let run_scenario = |name: &str,
                        faults: &FaultScript,
                        sup: &SupervisorConfig,
                        entries: &mut Vec<Entry>,
                        jsonl: &mut Option<std::fs::File>,
                        gate: &mut GateFn|
     -> canvassing_crawler::SupervisionReport {
        let dir = tmp_dir(name);
        let (merged, report) = supervise_crawl(&web.network, &frontier, &config, &dir, sup, faults)
            .expect("supervised crawl completes");
        std::fs::remove_dir_all(&dir).ok();
        let merged_json = serde_json::to_string(&merged).expect("dataset serializes");
        let matches = merged_json == direct_json;
        gate(
            format!("byte-identity/{name}"),
            matches,
            format!(
                "merged dataset {} the uninterrupted workers=1 crawl",
                if matches { "matches" } else { "DIVERGES from" }
            ),
            jsonl,
        );
        let exact = report.merge.records_recovered + report.merge.recrawled == frontier.len();
        gate(
            format!("exact-accounting/{name}"),
            exact,
            format!(
                "{} recovered + {} recrawled == {} frontier, {} duplicates dropped",
                report.merge.records_recovered,
                report.merge.recrawled,
                frontier.len(),
                report.merge.duplicates_dropped
            ),
            jsonl,
        );
        let bound = report.workers_crashed * sup.segment_sites + report.merge.duplicates_dropped;
        gate(
            format!("rework-bound/{name}"),
            report.records_redone <= bound,
            format!(
                "{} records redone <= {} ({} crashes x {} segment sites + {} duplicates), wasted ratio {:.3}",
                report.records_redone,
                bound,
                report.workers_crashed,
                sup.segment_sites,
                report.merge.duplicates_dropped,
                report.wasted_work_ratio()
            ),
            jsonl,
        );
        entries.push(Entry {
            scenario: name.to_string(),
            sites: frontier.len(),
            workers_launched: report.workers_launched,
            workers_crashed: report.workers_crashed,
            workers_fenced: report.workers_fenced,
            workers_cancelled: report.workers_cancelled,
            leases_expired: report.leases_expired,
            leases_stolen: report.leases_stolen,
            re_leases: report.re_leases,
            speculative_launches: report.speculative_launches,
            records_crawled: report.records_crawled,
            records_redone: report.records_redone,
            duplicates_dropped: report.merge.duplicates_dropped,
            max_epoch: report.max_epoch,
            dataset_fnv: format!("{:016x}", fnv(merged_json.as_bytes())),
            matches_direct: matches,
        });
        report
    };

    // --- 1. The kill-at-every-record sweep (gates rolled up per K). ---
    let shard0 = shard_range(frontier.len(), 0, 3);
    let mut kill_identical = 0usize;
    let mut kill_single_redo = 0usize;
    for k in 0..shard0.len() {
        let mut faults = FaultScript::none();
        faults.inject(0, 1, WorkerFault::CrashAtRecord(k));
        let dir = tmp_dir(&format!("kill-{k}"));
        let (merged, report) = supervise_crawl(
            &web.network,
            &frontier,
            &config,
            &dir,
            &sweep_sup(None),
            &faults,
        )
        .expect("supervised crawl completes");
        std::fs::remove_dir_all(&dir).ok();
        if serde_json::to_string(&merged).expect("dataset serializes") == direct_json {
            kill_identical += 1;
        }
        if report.records_redone == 1 && report.workers_crashed == 1 {
            kill_single_redo += 1;
        }
    }
    gate(
        "kill-sweep/byte-identity".into(),
        kill_identical == shard0.len(),
        format!(
            "{kill_identical}/{} kill points merged byte-identical",
            shard0.len()
        ),
        &mut jsonl,
    );
    gate(
        "kill-sweep/one-torn-record".into(),
        kill_single_redo == shard0.len(),
        format!(
            "{kill_single_redo}/{} kill points re-did exactly the torn record",
            shard0.len()
        ),
        &mut jsonl,
    );

    // --- 2. Scenario battery (each also a deterministic baseline entry). ---
    run_scenario(
        "clean",
        &FaultScript::none(),
        &sweep_sup(None),
        &mut entries,
        &mut jsonl,
        &mut gate,
    );

    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::CrashAtRecord(3));
    faults.inject(0, 2, WorkerFault::CrashAtRecord(2));
    run_scenario(
        "double-crash",
        &faults,
        &sweep_sup(None),
        &mut entries,
        &mut jsonl,
        &mut gate,
    );

    let mut faults = FaultScript::none();
    faults.inject(1, 1, WorkerFault::CrashBeforeFirstSpill);
    run_scenario(
        "crash-before-first-spill",
        &faults,
        &sweep_sup(None),
        &mut entries,
        &mut jsonl,
        &mut gate,
    );

    let stall_sink = Arc::new(RingSink::new(512));
    let mut stall_sup = sweep_sup(Some(Arc::clone(&stall_sink) as Arc<dyn TraceSink>));
    stall_sup.speculation = SpeculationPolicy::Off;
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::Stall { after_records: 4 });
    let stall_report = run_scenario(
        "stall",
        &faults,
        &stall_sup,
        &mut entries,
        &mut jsonl,
        &mut gate,
    );
    let expires: usize = stall_sink
        .traces()
        .iter()
        .map(|t| t.instant_count("lease.expire"))
        .sum();
    gate(
        "protocol/stall-expires-once".into(),
        expires == 1 && stall_report.leases_expired == 1,
        format!("lease.expire fired {expires}x for one hung worker"),
        &mut jsonl,
    );

    let dup_sink = Arc::new(RingSink::new(512));
    let mut faults = FaultScript::none();
    faults.duplicate_launch(0, 3);
    let dup_report = run_scenario(
        "duplicate-launch",
        &faults,
        &sweep_sup(Some(Arc::clone(&dup_sink) as Arc<dyn TraceSink>)),
        &mut entries,
        &mut jsonl,
        &mut gate,
    );
    let fenced: usize = dup_sink
        .traces()
        .iter()
        .map(|t| t.instant_count("worker.fenced"))
        .sum();
    gate(
        "protocol/duplicate-is-fenced".into(),
        fenced == 1 && dup_report.merge.duplicates_dropped > 0,
        format!(
            "worker.fenced fired {fenced}x, merge dropped {} overlapping records",
            dup_report.merge.duplicates_dropped
        ),
        &mut jsonl,
    );

    let spec_sink = Arc::new(RingSink::new(512));
    let mut spec_sup = sweep_sup(Some(Arc::clone(&spec_sink) as Arc<dyn TraceSink>));
    spec_sup.speculation = SpeculationPolicy::Race {
        after_quiet_ticks: 4,
    };
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::Straggle { period: 12 });
    let spec_report = run_scenario(
        "straggler",
        &faults,
        &spec_sup,
        &mut entries,
        &mut jsonl,
        &mut gate,
    );
    let speculated: usize = spec_sink
        .traces()
        .iter()
        .map(|t| t.instant_count("straggler.speculate"))
        .sum();
    gate(
        "protocol/straggler-is-raced".into(),
        speculated == 1
            && spec_report.speculative_launches == 1
            && spec_report.workers_cancelled == 1,
        format!(
            "straggler.speculate fired {speculated}x, {} racer(s), {} loser(s) cancelled",
            spec_report.speculative_launches, spec_report.workers_cancelled
        ),
        &mut jsonl,
    );

    for seed in 1..=3u64 {
        let faults = FaultScript::seeded(seed, 3);
        run_scenario(
            &format!("seeded-{seed}"),
            &faults,
            &sweep_sup(None),
            &mut entries,
            &mut jsonl,
            &mut gate,
        );
    }

    // --- 3. Baseline drift gate over the deterministic entries. ---
    let deterministic = Deterministic {
        seed: args.seed,
        entries,
    };
    if let Some(path) = &args.baseline {
        /// The committed slice the drift gate compares (timings are
        /// machine-dependent and skipped).
        #[derive(Deserialize)]
        struct Baseline {
            deterministic: Deterministic,
        }
        let committed: Baseline =
            serde_json::from_str(&std::fs::read_to_string(path).expect("read baseline"))
                .expect("parse baseline");
        let mut drift: Vec<String> = Vec::new();
        if committed.deterministic.seed != deterministic.seed {
            drift.push(format!(
                "baseline seed {} vs run seed {}",
                committed.deterministic.seed, deterministic.seed
            ));
        }
        for fresh in &deterministic.entries {
            match committed
                .deterministic
                .entries
                .iter()
                .find(|e| e.scenario == fresh.scenario)
            {
                None => drift.push(format!("no committed entry for {}", fresh.scenario)),
                Some(c) if c != fresh => drift.push(format!(
                    "{} drifted: committed {} vs fresh {}",
                    fresh.scenario,
                    serde_json::to_string(c).expect("serialize"),
                    serde_json::to_string(fresh).expect("serialize")
                )),
                Some(_) => {}
            }
        }
        gate(
            "baseline-drift".into(),
            drift.is_empty(),
            if drift.is_empty() {
                format!("all {} scenarios match {path}", deterministic.entries.len())
            } else {
                drift.join("; ")
            },
            &mut jsonl,
        );
    }

    // --- 4. Supervised throughput at --scale (timed, never gated). ---
    let mut timings: Vec<Timing> = Vec::new();
    {
        let web = SyntheticWeb::generate(WebConfig {
            seed: args.seed,
            scale: args.scale,
        });
        let frontier = web.frontier(Cohort::Popular);
        let mut config = CrawlConfig::control();
        config.workers = 1;
        let mut sup = SupervisorConfig::new(4);
        sup.segment_sites = 256;
        let dir = tmp_dir("throughput");
        let start = std::time::Instant::now();
        let (_, report) = supervise_crawl(
            &web.network,
            &frontier,
            &config,
            &dir,
            &sup,
            &FaultScript::none(),
        )
        .expect("supervised crawl completes");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        std::fs::remove_dir_all(&dir).ok();
        eprintln!(
            "[soak] supervised {} sites in {:.1}s ({:.0} sites/sec, {} segments)",
            frontier.len(),
            wall / 1e3,
            frontier.len() as f64 / (wall / 1e3).max(1e-9),
            report.merge.segments
        );
        timings.push(Timing {
            scale: args.scale,
            phase: "supervised_crawl",
            wall_ms: wall,
            sites_per_sec: frontier.len() as f64 / (wall / 1e3).max(1e-9),
        });

        let start = std::time::Instant::now();
        let _ = crawl(&web.network, &frontier, &config);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        timings.push(Timing {
            scale: args.scale,
            phase: "direct_crawl",
            wall_ms: wall,
            sites_per_sec: frontier.len() as f64 / (wall / 1e3).max(1e-9),
        });
    }

    let report = BenchReport {
        bench: "supervisor_soak",
        deterministic,
        timings,
    };
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write report");
    eprintln!("wrote {}", args.out);
    if let Some(p) = &args.jsonl {
        println!("wrote gate results to {p}");
    }

    if failures.is_empty() {
        println!(
            "SUPERVISOR SOAK OK: all gates passed over {} sites x {} kill points",
            frontier.len(),
            shard0.len()
        );
    } else {
        eprintln!(
            "SUPERVISOR SOAK FAILED: {} gate(s): {:?}",
            failures.len(),
            failures
        );
        if args.check {
            std::process::exit(1);
        }
    }
}
