//! `lint` — runs the static fingerprinting classifiers over every script
//! body in the synthetic corpus and prints per-script findings with
//! stable rule IDs (`CF-READ`, `CFB-READ`, `BN-LOSSY`, `INC-DYN-MIME`, …).
//!
//! ```text
//! lint [--scale <f64>] [--seed <u64>] [--verdict <fp|benign|inconclusive>]
//!      [--engine <ast|bytecode|both>] [--quiet]
//!      [--deny-inconclusive] [--deny-divergence] [--dump-bytecode]
//! ```
//!
//! Scripts are deduplicated by FNV-1a body hash, exactly as the crawl's
//! triage cache does, so each unique body prints once. Two analysis
//! engines are available: the AST taint pass (`ast`), the bytecode
//! abstract interpreter (`bytecode`), or the production cascade (`both`,
//! the default — AST verdicts with the bytecode engine adjudicating the
//! inconclusive remainder).
//!
//! Gates for CI:
//!
//! * `--deny-inconclusive` exits non-zero if any fingerprinting-corpus
//!   script (vendor, generic, or seeded-evasive) is left `Inconclusive`
//!   by the selected engine.
//! * `--deny-divergence` exits non-zero if the two engines *disagree
//!   decisively* on any body — both produce a non-`Inconclusive` verdict
//!   and one says fingerprinting while the other says benign. (Differing
//!   sub-flags such as `exfil` are reported but not denied: the bytecode
//!   engine legitimately proves more flows.)
//!
//! `--dump-bytecode` prints each body's compiled-VM disassembly next to
//! its static verdict — what the execution engine will actually run for
//! a script the classifier flagged (combine with `--verdict fp` to dump
//! just the fingerprinting corpus).

use canvassing::validation::verdict_label;
use canvassing_analysis::{
    classify, classify_bytecode, classify_merged, classify_source, ScriptAnalysis, Verdict,
};
use canvassing_net::{Resource, ScriptRef, Url};
use canvassing_script::source_hash;
use canvassing_webgen::{SyntheticWeb, WebConfig};

use std::collections::BTreeMap;

struct Args {
    scale: f64,
    seed: u64,
    verdict: Option<String>,
    engine: Engine,
    quiet: bool,
    deny_inconclusive: bool,
    deny_divergence: bool,
    dump_bytecode: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Ast,
    Bytecode,
    Both,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: 2025,
        verdict: None,
        engine: Engine::Both,
        quiet: false,
        deny_inconclusive: false,
        deny_divergence: false,
        dump_bytecode: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale").parse().unwrap_or_else(|_| {
                    eprintln!("--scale wants a float");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed wants an integer");
                    std::process::exit(2);
                })
            }
            "--verdict" => args.verdict = Some(value("--verdict")),
            "--engine" => {
                args.engine = match value("--engine").as_str() {
                    "ast" => Engine::Ast,
                    "bytecode" => Engine::Bytecode,
                    "both" => Engine::Both,
                    other => {
                        eprintln!("unknown --engine {other} (want ast|bytecode|both)");
                        std::process::exit(2);
                    }
                }
            }
            "--quiet" => args.quiet = true,
            "--deny-inconclusive" => args.deny_inconclusive = true,
            "--deny-divergence" => args.deny_divergence = true,
            "--dump-bytecode" => args.dump_bytecode = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: lint [--scale F] [--seed N] [--verdict fp|benign|inconclusive] \
                     [--engine ast|bytecode|both] [--quiet] [--deny-inconclusive] \
                     [--deny-divergence] [--dump-bytecode]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One unique script body found in the corpus, analyzed by both engines.
struct Entry {
    label: String,
    location: String,
    source: String,
    ast: ScriptAnalysis,
    bytecode: ScriptAnalysis,
    merged: ScriptAnalysis,
}

impl Entry {
    fn displayed(&self, engine: Engine) -> &ScriptAnalysis {
        match engine {
            Engine::Ast => &self.ast,
            Engine::Bytecode => &self.bytecode,
            Engine::Both => &self.merged,
        }
    }

    /// Decisive disagreement: both engines commit to a class and the
    /// classes differ. Sub-flag (exfil/double-render) differences are
    /// not divergence.
    fn diverges(&self) -> bool {
        self.ast.verdict != Verdict::Inconclusive
            && self.bytecode.verdict != Verdict::Inconclusive
            && self.ast.verdict.is_fingerprinting() != self.bytecode.verdict.is_fingerprinting()
    }
}

fn analyze_entry(source: &str) -> (ScriptAnalysis, ScriptAnalysis, ScriptAnalysis) {
    match canvassing_script::parse(source) {
        Ok(program) => (
            classify(&program),
            classify_bytecode(&program),
            classify_merged(&program),
        ),
        Err(_) => {
            // Both engines see the same parse failure.
            let inc = classify_source(source);
            (inc.clone(), inc.clone(), inc)
        }
    }
}

fn wants(analysis: &ScriptAnalysis, filter: Option<&str>) -> bool {
    match filter {
        None => true,
        Some("fp") => analysis.verdict.is_fingerprinting(),
        Some("benign") => analysis.verdict == Verdict::Benign,
        Some("inconclusive") => analysis.verdict == Verdict::Inconclusive,
        Some(other) => {
            eprintln!("unknown --verdict {other} (want fp|benign|inconclusive)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });

    // Enumerate every script body in the corpus: hosted script resources
    // plus inline bundles inside pages, deduplicated by body hash so
    // shared vendor deployments analyze once.
    let mut entries: BTreeMap<u64, Entry> = BTreeMap::new();
    let keys: Vec<(String, String)> = web
        .network
        .resource_keys()
        .map(|(h, p)| (h.to_string(), p.to_string()))
        .collect();
    for (host, path) in keys {
        let url = Url::https(&host, &path);
        match web.network.peek(&url) {
            Some(Resource::Script(s)) => {
                entries.entry(source_hash(&s.source)).or_insert_with(|| {
                    let (ast, bytecode, merged) = analyze_entry(&s.source);
                    Entry {
                        label: s.label.clone(),
                        location: url.to_string(),
                        source: s.source.clone(),
                        ast,
                        bytecode,
                        merged,
                    }
                });
            }
            Some(Resource::Page(p)) => {
                for r in &p.scripts {
                    if let ScriptRef::Inline { source, label } = r {
                        entries.entry(source_hash(source)).or_insert_with(|| {
                            let (ast, bytecode, merged) = analyze_entry(source);
                            Entry {
                                label: label.clone(),
                                location: format!("{url} (inline)"),
                                source: source.clone(),
                                ast,
                                bytecode,
                                merged,
                            }
                        });
                    }
                }
            }
            None => {}
        }
    }

    let mut by_verdict: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut corpus_inconclusive: Vec<&Entry> = Vec::new();
    let mut divergent: Vec<&Entry> = Vec::new();
    let mut recovered = 0usize;
    for (hash, entry) in &entries {
        let displayed = entry.displayed(args.engine);
        *by_verdict
            .entry(verdict_label(displayed.verdict))
            .or_insert(0) += 1;
        let fingerprint_corpus = entry.label.starts_with("vendor:")
            || entry.label.starts_with("generic:")
            || entry.label.starts_with("evasive:");
        if fingerprint_corpus && displayed.verdict == Verdict::Inconclusive {
            corpus_inconclusive.push(entry);
        }
        if entry.diverges() {
            divergent.push(entry);
        }
        if entry.ast.verdict == Verdict::Inconclusive
            && entry.merged.verdict != Verdict::Inconclusive
        {
            recovered += 1;
        }
        if !wants(displayed, args.verdict.as_deref()) {
            continue;
        }
        if !args.quiet {
            println!(
                "{hash:016x} {} [{}] {}",
                verdict_label(displayed.verdict),
                entry.label,
                entry.location
            );
            if args.engine == Engine::Both && entry.ast.verdict != entry.bytecode.verdict {
                println!(
                    "    engines: ast={} bytecode={}",
                    verdict_label(entry.ast.verdict),
                    verdict_label(entry.bytecode.verdict)
                );
            }
            for finding in &displayed.findings {
                println!("    {}: {}", finding.rule.code(), finding.detail);
            }
            if args.dump_bytecode {
                match canvassing_script::parse(&entry.source) {
                    Ok(program) => {
                        let compiled = canvassing_script::compile(&program);
                        for line in canvassing_script::disassemble(&compiled).lines() {
                            println!("    | {line}");
                        }
                    }
                    Err(e) => println!("    | (does not parse: {e})"),
                }
            }
        }
    }

    println!("\n{} unique script bodies", entries.len());
    for (label, count) in &by_verdict {
        println!("  {label}: {count}");
    }
    println!("  bytecode-recovered: {recovered}");
    println!("  engine divergences: {}", divergent.len());

    let mut deny = false;
    if args.deny_inconclusive && !corpus_inconclusive.is_empty() {
        eprintln!(
            "DENY: {} fingerprinting-corpus script(s) are statically inconclusive:",
            corpus_inconclusive.len()
        );
        for e in corpus_inconclusive {
            eprintln!("  [{}] {}", e.label, e.location);
        }
        deny = true;
    }
    if args.deny_divergence && !divergent.is_empty() {
        eprintln!(
            "DENY: {} script body(ies) with decisive engine disagreement:",
            divergent.len()
        );
        for e in divergent {
            eprintln!(
                "  [{}] {} ast={} bytecode={}",
                e.label,
                e.location,
                verdict_label(e.ast.verdict),
                verdict_label(e.bytecode.verdict)
            );
        }
        deny = true;
    }
    if deny {
        std::process::exit(1);
    }
}
