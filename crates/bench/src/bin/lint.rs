//! `lint` — runs the static fingerprinting classifier over every script
//! body in the synthetic corpus and prints per-script findings with
//! stable rule IDs (`CF-READ`, `BN-LOSSY`, `INC-DYN-MIME`, …).
//!
//! ```text
//! lint [--scale <f64>] [--seed <u64>] [--verdict <fp|benign|inconclusive>]
//!      [--quiet] [--deny-inconclusive] [--dump-bytecode]
//! ```
//!
//! Scripts are deduplicated by FNV-1a body hash, exactly as the crawl's
//! triage cache does, so each unique body prints once. With
//! `--deny-inconclusive` the process exits non-zero if any vendor or
//! generic fingerprinting script is statically `Inconclusive` — the CI
//! gate for classifier coverage of the fingerprinting corpus.
//!
//! `--dump-bytecode` prints each body's compiled-VM disassembly next to
//! its static verdict — what the execution engine will actually run for
//! a script the classifier flagged (combine with `--verdict fp` to dump
//! just the fingerprinting corpus).

use canvassing::validation::verdict_label;
use canvassing_analysis::{AnalysisCache, ScriptAnalysis, Verdict};
use canvassing_net::{Resource, ScriptRef, Url};
use canvassing_webgen::{SyntheticWeb, WebConfig};

use std::collections::BTreeMap;
use std::sync::Arc;

struct Args {
    scale: f64,
    seed: u64,
    verdict: Option<String>,
    quiet: bool,
    deny_inconclusive: bool,
    dump_bytecode: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: 2025,
        verdict: None,
        quiet: false,
        deny_inconclusive: false,
        dump_bytecode: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                args.scale = value("--scale").parse().unwrap_or_else(|_| {
                    eprintln!("--scale wants a float");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed wants an integer");
                    std::process::exit(2);
                })
            }
            "--verdict" => args.verdict = Some(value("--verdict")),
            "--quiet" => args.quiet = true,
            "--deny-inconclusive" => args.deny_inconclusive = true,
            "--dump-bytecode" => args.dump_bytecode = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: lint [--scale F] [--seed N] [--verdict fp|benign|inconclusive] \
                     [--quiet] [--deny-inconclusive] [--dump-bytecode]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One unique script body found in the corpus.
struct Entry {
    label: String,
    location: String,
    source: String,
    analysis: Arc<ScriptAnalysis>,
}

fn wants(analysis: &ScriptAnalysis, filter: Option<&str>) -> bool {
    match filter {
        None => true,
        Some("fp") => analysis.verdict.is_fingerprinting(),
        Some("benign") => analysis.verdict == Verdict::Benign,
        Some("inconclusive") => analysis.verdict == Verdict::Inconclusive,
        Some(other) => {
            eprintln!("unknown --verdict {other} (want fp|benign|inconclusive)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });

    // Enumerate every script body in the corpus: hosted script resources
    // plus inline bundles inside pages. The cache deduplicates by body
    // hash, so shared vendor deployments analyze once.
    let cache = AnalysisCache::new();
    let mut entries: BTreeMap<u64, Entry> = BTreeMap::new();
    let keys: Vec<(String, String)> = web
        .network
        .resource_keys()
        .map(|(h, p)| (h.to_string(), p.to_string()))
        .collect();
    for (host, path) in keys {
        let url = Url::https(&host, &path);
        match web.network.peek(&url) {
            Some(Resource::Script(s)) => {
                let (hash, analysis) = cache.analyze(&s.source, None);
                entries.entry(hash).or_insert_with(|| Entry {
                    label: s.label.clone(),
                    location: url.to_string(),
                    source: s.source.clone(),
                    analysis,
                });
            }
            Some(Resource::Page(p)) => {
                for r in &p.scripts {
                    if let ScriptRef::Inline { source, label } = r {
                        let (hash, analysis) = cache.analyze(source, None);
                        entries.entry(hash).or_insert_with(|| Entry {
                            label: label.clone(),
                            location: format!("{url} (inline)"),
                            source: source.clone(),
                            analysis,
                        });
                    }
                }
            }
            None => {}
        }
    }

    let mut by_verdict: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut corpus_inconclusive: Vec<&Entry> = Vec::new();
    for (hash, entry) in &entries {
        *by_verdict
            .entry(verdict_label(entry.analysis.verdict))
            .or_insert(0) += 1;
        let fingerprint_corpus =
            entry.label.starts_with("vendor:") || entry.label.starts_with("generic:");
        if fingerprint_corpus && entry.analysis.verdict == Verdict::Inconclusive {
            corpus_inconclusive.push(entry);
        }
        if !wants(&entry.analysis, args.verdict.as_deref()) {
            continue;
        }
        if !args.quiet {
            println!(
                "{hash:016x} {} [{}] {}",
                verdict_label(entry.analysis.verdict),
                entry.label,
                entry.location
            );
            for finding in &entry.analysis.findings {
                println!("    {}: {}", finding.rule.code(), finding.detail);
            }
            if args.dump_bytecode {
                match canvassing_script::parse(&entry.source) {
                    Ok(program) => {
                        let compiled = canvassing_script::compile(&program);
                        for line in canvassing_script::disassemble(&compiled).lines() {
                            println!("    | {line}");
                        }
                    }
                    Err(e) => println!("    | (does not parse: {e})"),
                }
            }
        }
    }

    println!("\n{} unique script bodies", entries.len());
    for (label, count) in &by_verdict {
        println!("  {label}: {count}");
    }

    if args.deny_inconclusive && !corpus_inconclusive.is_empty() {
        eprintln!(
            "DENY: {} fingerprinting-corpus script(s) are statically inconclusive:",
            corpus_inconclusive.len()
        );
        for e in corpus_inconclusive {
            eprintln!("  [{}] {}", e.label, e.location);
        }
        std::process::exit(1);
    }
}
