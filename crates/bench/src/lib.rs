//! # canvassing-bench
//!
//! Benchmarks and the `repro` binary that regenerates every table and
//! figure of the paper. See `src/bin/repro.rs` and the Criterion benches
//! under `benches/`.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

/// Re-exported study entry points used by the benches.
pub use canvassing::study::{run_study, StudyOptions};
