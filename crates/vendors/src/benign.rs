//! Benign canvas users (Appendix A.2) — the scripts the paper's
//! heuristics must *exclude* from the fingerprintable set.

use serde::{Deserialize, Serialize};

/// Kinds of benign canvas usage observed in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenignKind {
    /// WebP support probe: extract a default-size blank canvas as
    /// `image/webp` (excluded by the lossy-format heuristic; 306 top-20k
    /// sites in the paper).
    WebpProbe,
    /// Emoji rendering support probe on a tiny canvas (excluded by the
    /// <16×16 size heuristic).
    EmojiProbe,
    /// Small uniform-color canvas extraction, e.g. the 12×12 canvas on
    /// lacounty.gov (excluded by the size heuristic).
    SmallBadge,
    /// Image-editor style preview exported as JPEG (excluded by the lossy
    /// heuristic).
    EditorPreview,
    /// Animation loop that also extracts a frame; its script calls
    /// `save`/`restore`/`translate`, tripping the animation heuristic.
    AnimationFrame,
}

impl BenignKind {
    /// All kinds, for iteration in generators and tests.
    pub fn all() -> &'static [BenignKind] {
        &[
            BenignKind::WebpProbe,
            BenignKind::EmojiProbe,
            BenignKind::SmallBadge,
            BenignKind::EditorPreview,
            BenignKind::AnimationFrame,
        ]
    }

    /// A short label used in script provenance tags.
    pub fn label(&self) -> &'static str {
        match self {
            BenignKind::WebpProbe => "benign:webp-probe",
            BenignKind::EmojiProbe => "benign:emoji-probe",
            BenignKind::SmallBadge => "benign:small-badge",
            BenignKind::EditorPreview => "benign:editor-preview",
            BenignKind::AnimationFrame => "benign:animation",
        }
    }
}

/// Returns canvascript source for a benign canvas user. `variant` makes
/// inconsequential differences between sites (badge colors etc.) so the
/// benign population isn't one giant identical cluster.
pub fn source(kind: BenignKind, variant: u64) -> String {
    match kind {
        BenignKind::WebpProbe => r#"// feature-detect: webp (lossy + lossless-quality probe)
let c = document.createElement("canvas");
let probe = c.toDataURL("image/webp");
let probeLow = c.toDataURL("image/webp", 0.2);
probe.indexOf("data:image/webp") == 0;
"#
        .to_string(),
        BenignKind::EmojiProbe => r#"// feature-detect: emoji rendering
let c = document.createElement("canvas");
c.width = 10; c.height = 10;
let x = c.getContext("2d");
x.textBaseline = "top";
x.font = "8px Arial";
x.fillText("\u{1F600}", 0, 0);
let probe = c.toDataURL();
len(probe) > 30;
"#
        .to_string(),
        BenignKind::SmallBadge => {
            let shade = 40 + variant.wrapping_mul(37) % 180;
            format!(
                r#"// ui badge snapshot
let c = document.createElement("canvas");
c.width = 12; c.height = 12;
let x = c.getContext("2d");
x.fillStyle = "rgb({shade}, {g}, {b})";
x.fillRect(0, 0, 12, 12);
let png = c.toDataURL();
"#,
                g = (shade + 30) % 255,
                b = (shade + 90) % 255,
            )
        }
        BenignKind::EditorPreview => {
            let hue = variant.wrapping_mul(59) % 360;
            format!(
                r##"// editor export preview
let c = document.createElement("canvas");
c.width = 300; c.height = 200;
let x = c.getContext("2d");
x.fillStyle = "hsl({hue}, 60%, 70%)";
x.fillRect(0, 0, 300, 200);
x.fillStyle = "#fff";
x.font = "24px Arial";
x.fillText("Preview", 90, 100);
let jpg = c.toDataURL("image/jpeg", 0.8);
let jpgSmall = c.toDataURL("image/jpeg", 0.4);
"##
            )
        }
        BenignKind::AnimationFrame => r#"// sparkline animation (one frame)
let c = document.createElement("canvas");
c.width = 300; c.height = 150;
let x = c.getContext("2d");
for (let i = 0; i < 6; i = i + 1) {
    x.save();
    x.translate(i * 40 + 10, 75);
    x.rotate(i * 0.5);
    x.fillStyle = "rgba(30, 144, 255, 0.6)";
    x.fillRect(-8, -8, 16, 16);
    x.restore();
}
let frame = c.toDataURL();
x.save();
x.rotate(0.1);
x.fillRect(120, 60, 30, 30);
x.restore();
let frame2 = c.toDataURL();
"#
        .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_source() {
        for k in BenignKind::all() {
            assert!(!source(*k, 0).is_empty());
        }
    }

    #[test]
    fn variants_differ_where_expected() {
        assert_ne!(
            source(BenignKind::SmallBadge, 1),
            source(BenignKind::SmallBadge, 2)
        );
        assert_eq!(
            source(BenignKind::WebpProbe, 1),
            source(BenignKind::WebpProbe, 2)
        );
    }

    #[test]
    fn webp_probe_uses_lossy_mime() {
        assert!(source(BenignKind::WebpProbe, 0).contains("image/webp"));
    }

    #[test]
    fn animation_uses_save_restore() {
        let s = source(BenignKind::AnimationFrame, 0);
        assert!(s.contains("save") && s.contains("restore"));
    }
}
