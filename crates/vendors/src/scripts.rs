//! canvascript source for each vendor's fingerprinting script.
//!
//! Each generator returns deterministic source text. Identical source ⇒
//! identical canvases on one device, which is the invariant the paper's
//! clustering exploits. Imperva is the deliberate exception: its script
//! embeds a per-site token, so every deployment renders a unique canvas
//! (§4.3.2) and grouping-by-canvas cannot find its customers.

use crate::VendorId;

/// Returns the vendor's script source. `site_token` is a word-like,
/// per-site string (letters and hyphens); only Imperva's script uses it.
/// `commercial` selects the paid FingerprintJS variant, which renders the
/// *same* canvases as the open-source build but probes extra surfaces and
/// carries different source text (the paper distinguishes the two by URL
/// and script content, not by canvas).
pub fn source(id: VendorId, site_token: &str, commercial: bool) -> String {
    match id {
        VendorId::Akamai => AKAMAI.to_string(),
        VendorId::FingerprintJs => {
            if commercial {
                format!("{FPJS_HEADER_PRO}{FPJS_CANVASES}{FPJS_PRO_EXTRAS}{FPJS_DRIVER}")
            } else {
                format!("{FPJS_HEADER_OSS}{FPJS_CANVASES}{FPJS_DRIVER}")
            }
        }
        VendorId::MailRu => MAILRU.to_string(),
        VendorId::FingerprintJsLegacy => FPJS_LEGACY.to_string(),
        VendorId::Imperva => imperva(site_token),
        VendorId::AwsWaf => AWS_WAF.to_string(),
        VendorId::InsurAds => INSURADS.to_string(),
        VendorId::Signifyd => SIGNIFYD.to_string(),
        VendorId::PerimeterX => PERIMETERX.to_string(),
        VendorId::SiftScience => SIFT.to_string(),
        VendorId::Shopify => SHOPIFY.to_string(),
        VendorId::Adscore => ADSCORE.to_string(),
        VendorId::GeeTest => GEETEST.to_string(),
    }
}

/// A long-tail fingerprinting script distinct per `n` — stands in for the
/// hundreds of small, unattributed fingerprinters behind the paper's 504
/// unique canvases. Scripts with different `n` render different canvases;
/// the same `n` renders the same canvas everywhere.
pub fn generic_fingerprinter(n: u64) -> String {
    let phrase = match n % 4 {
        0 => "Pack my box with five dozen liquor jugs",
        1 => "How vexingly quick daft zebras jump",
        2 => "Sphinx of black quartz judge my vow",
        _ => "The five boxing wizards jump quickly",
    };
    let hue = n.wrapping_mul(47) % 360;
    let x = 2 + n.wrapping_mul(13) % 9;
    format!(
        r##"// fp-kit v{n}
let c = document.createElement("canvas");
c.width = 260; c.height = 48;
let x = c.getContext("2d");
x.textBaseline = "top";
x.fillStyle = "hsl({hue}, 80%, 45%)";
x.fillRect({x}, 2, 180, 18);
x.fillStyle = "#111";
x.font = "{size}px Segoe UI";
x.fillText("#{n} {phrase}", 3, 22);
let fp = c.toDataURL();
fp;
"##,
        size = 12 + n % 5,
    )
}

/// Akamai bot-manager sensor: one distinctive canvas, no stability check,
/// served first-party under `/akam/` (its EasyList rule misses it due to
/// the first-party exception, §5.2 footnote 5).
const AKAMAI: &str = r##"// akam sensor
fn bmakCanvas() {
    let c = document.createElement("canvas");
    c.width = 280; c.height = 60;
    let x = c.getContext("2d");
    x.fillStyle = "rgb(255,102,0)";
    x.fillRect(10, 5, 100, 30);
    x.fillStyle = "#0b6";
    x.font = "16px Arial";
    x.textBaseline = "alphabetic";
    x.fillText("<@nv45. F1n63r,Pr1n71n6!", 12, 40);
    x.strokeStyle = "rgba(0,0,255,0.6)";
    x.beginPath();
    x.arc(220, 30, 22, 0, 2 * pi(), false);
    x.stroke();
    return c.toDataURL();
}
let bmak = bmakCanvas();
bmak;
"##;

const FPJS_HEADER_OSS: &str = "// FingerprintJS open-source v4 (canvas source)\n";
const FPJS_HEADER_PRO: &str = "// Fingerprint Pro agent (licensed build)\n";

/// The two FingerprintJS test canvases: the winding (geometry) canvas and
/// the text canvas with the `Cwm fjordbank` pangram and emoji, following
/// the structure of the real `sources/canvas.ts`.
const FPJS_CANVASES: &str = r##"
fn fpjsWinding() {
    let c = document.createElement("canvas");
    c.width = 122; c.height = 110;
    let x = c.getContext("2d");
    x.globalCompositeOperation = "multiply";
    x.fillStyle = "#f2f";
    x.beginPath();
    x.arc(40, 40, 40, 0, 2 * pi(), true);
    x.fill();
    x.fillStyle = "#2ff";
    x.beginPath();
    x.arc(80, 40, 40, 0, 2 * pi(), true);
    x.fill();
    x.fillStyle = "#ff2";
    x.beginPath();
    x.arc(60, 80, 40, 0, 2 * pi(), true);
    x.fill();
    x.fillStyle = "#f9c";
    x.beginPath();
    x.arc(60, 60, 60, 0, 2 * pi(), true);
    x.arc(60, 60, 20, 0, 2 * pi(), true);
    x.fill("evenodd");
    return c.toDataURL();
}
fn fpjsText() {
    let c = document.createElement("canvas");
    c.width = 240; c.height = 60;
    let x = c.getContext("2d");
    x.textBaseline = "alphabetic";
    x.fillStyle = "#f60";
    x.fillRect(100, 1, 62, 20);
    x.fillStyle = "#069";
    x.font = "11pt no-real-font-123";
    x.fillText("Cwm fjordbank gly \u{1F603}", 2, 15);
    x.fillStyle = "rgba(102, 204, 0, 0.2)";
    x.font = "18pt Arial";
    x.fillText("Cwm fjordbank gly \u{1F603}", 4, 45);
    return c.toDataURL();
}
"##;

/// Pro build probes additional surfaces (modeled as measureText probes of
/// unusual font stacks — the "mathML" surface of footnote 2). These calls
/// are recorded by the instrumentation but do not change the canvases.
const FPJS_PRO_EXTRAS: &str = r##"
fn fpjsProExtras() {
    let c = document.createElement("canvas");
    let x = c.getContext("2d");
    x.font = "12px math";
    let m1 = x.measureText("mMwWlLiI0O&1").width;
    x.font = "12px serif";
    let m2 = x.measureText("mMwWlLiI0O&1").width;
    return m1 + m2;
}
let proSurface = fpjsProExtras();
"##;

/// The driver performs the §5.3 stability check: render the text canvas
/// twice; if the two data URLs differ, the browser is randomizing and the
/// canvas component is discarded from the fingerprint.
const FPJS_DRIVER: &str = r##"
let textA = fpjsText();
let textB = fpjsText();
let winding = fpjsWinding();
let canvasStable = textA == textB;
let components = [];
if (canvasStable) {
    components.push(textA);
    components.push(winding);
} else {
    components.push("canvas:unstable");
}
components.join("|");
"##;

/// mail.ru top counter: two canvases, with a stability double-render on
/// the first.
const MAILRU: &str = r##"// privacy-cs top counter
fn mrTextCanvas() {
    let c = document.createElement("canvas");
    c.width = 220; c.height = 44;
    let x = c.getContext("2d");
    x.textBaseline = "top";
    x.font = "13px Tahoma";
    x.fillStyle = "#00c";
    x.fillText("Tov Mail.Ru 1*@>@0", 4, 4);
    x.fillStyle = "rgba(255, 153, 0, 0.7)";
    x.fillRect(30, 18, 140, 20);
    x.fillStyle = "#333";
    x.fillText("radar-kit 3.1", 36, 22);
    return c.toDataURL();
}
fn mrGradientCanvas() {
    let c = document.createElement("canvas");
    c.width = 120; c.height = 40;
    let x = c.getContext("2d");
    let g = x.createLinearGradient(0, 0, 120, 0);
    g.addColorStop(0, "#005ff9");
    g.addColorStop(1, "#ff9e00");
    x.fillStyle = g;
    x.fillRect(0, 0, 120, 40);
    x.strokeStyle = "#fff";
    x.beginPath();
    x.moveTo(6, 34);
    x.quadraticCurveTo(60, -14, 114, 34);
    x.stroke();
    return c.toDataURL();
}
let m1 = mrTextCanvas();
let m2 = mrTextCanvas();
let m3 = mrGradientCanvas();
let ok = m1 == m2;
"##;

/// The ~2020 FingerprintJS: one text canvas, no emoji, different geometry
/// — an *update* to the vendor's script changed the canvas and broke
/// cluster continuity with the modern version (§4.3.1).
const FPJS_LEGACY: &str = r##"// fingerprintjs2 (legacy)
fn legacyCanvas() {
    let c = document.createElement("canvas");
    c.width = 400; c.height = 60;
    let x = c.getContext("2d");
    x.textBaseline = "alphabetic";
    x.fillStyle = "#f60";
    x.fillRect(125, 1, 62, 20);
    x.fillStyle = "#069";
    x.font = "11pt Arial";
    x.fillText("Cwm fjordbank glyphs vext quiz,", 2, 15);
    x.fillStyle = "rgba(102, 204, 0, 0.7)";
    x.font = "18pt Arial";
    x.fillText("Cwm fjordbank glyphs vext quiz,", 4, 45);
    return c.toDataURL();
}
let l1 = legacyCanvas();
let l2 = legacyCanvas();
let stable = l1 == l2;
"##;

/// Imperva: the canvas embeds the per-site token, making every deployment
/// unique; customers are found by the Table 3 URL regex instead.
fn imperva(site_token: &str) -> String {
    format!(
        r##"// incapsula device intelligence
let c = document.createElement("canvas");
c.width = 300; c.height = 40;
let x = c.getContext("2d");
x.textBaseline = "top";
x.font = "14px Helvetica";
x.fillStyle = "#222";
x.fillText("imprv::{site_token}", 4, 4);
x.strokeStyle = "#c00";
x.strokeRect(2, 2, 296, 36);
x.fillStyle = "rgba(0, 128, 255, 0.4)";
x.fillRect(180, 8, 100, 24);
c.toDataURL();
"##
    )
}

const AWS_WAF: &str = r##"// awswaf challenge token
let c = document.createElement("canvas");
c.width = 320; c.height = 50;
let x = c.getContext("2d");
x.fillStyle = "#f90";
x.beginPath();
x.moveTo(10, 40);
x.bezierCurveTo(60, 0, 120, 0, 170, 40);
x.fill();
x.font = "15px Amazon Ember";
x.fillStyle = "#232f3e";
x.fillText("awswaf integrity v2 ~#", 120, 30);
c.toDataURL();
"##;

const INSURADS: &str = r##"// insurads attention tracker
fn iaText() {
    let c = document.createElement("canvas");
    c.width = 200; c.height = 50;
    let x = c.getContext("2d");
    x.font = "italic 14px Georgia";
    x.fillStyle = "#7a00cc";
    x.fillText("InsurAds RT-attention", 5, 28);
    return c.toDataURL();
}
fn iaShapes() {
    let c = document.createElement("canvas");
    c.width = 60; c.height = 60;
    let x = c.getContext("2d");
    x.fillStyle = "#0cf";
    x.beginPath();
    x.ellipse(30, 30, 24, 14, 0.5, 0, 2 * pi(), false);
    x.fill();
    return c.toDataURL();
}
let a = iaText();
let b = iaShapes();
"##;

const SIGNIFYD: &str = r##"// signifyd device fingerprint
let c = document.createElement("canvas");
c.width = 260; c.height = 40;
let x = c.getContext("2d");
x.textBaseline = "middle";
x.font = "bold 13px Verdana";
x.fillStyle = "#e8563a";
x.fillText("Signifyd ClearSale? d3v1c3", 6, 20);
x.globalAlpha = 0.5;
x.fillStyle = "#3ae856";
x.fillRect(140, 5, 110, 30);
c.toDataURL();
"##;

const PERIMETERX: &str = r##"// px sensor
fn pxText() {
    let c = document.createElement("canvas");
    c.width = 150; c.height = 50;
    let x = c.getContext("2d");
    x.font = "22px Courier New";
    x.fillStyle = "#10b981";
    x.fillText("PX7*hB", 8, 34);
    return c.toDataURL();
}
fn pxShapes() {
    let c = document.createElement("canvas");
    c.width = 80; c.height = 80;
    let x = c.getContext("2d");
    x.translate(40, 40);
    x.rotate(0.7853981633974483);
    x.fillStyle = "#f43f5e";
    x.fillRect(-20, -20, 40, 40);
    return c.toDataURL();
}
let p1 = pxText();
let p2 = pxShapes();
"##;

const SIFT: &str = r##"// sift science beacon
let c = document.createElement("canvas");
c.width = 240; c.height = 40;
let x = c.getContext("2d");
x.font = "14px Lucida Grande";
x.fillStyle = "#295dab";
x.fillText("sift trustscore &8^s", 4, 26);
x.strokeStyle = "#ffb700";
x.lineWidth = 3;
x.beginPath();
x.moveTo(150, 8);
x.lineTo(190, 32);
x.lineTo(230, 8);
x.stroke();
c.toDataURL();
"##;

/// Shopify storefront performance beacon — the tail-heavy outlier of
/// Figure 1 (Shopify storefronts are far denser below rank 20k).
const SHOPIFY: &str = r##"// shopify storefront renderer probe
let c = document.createElement("canvas");
c.width = 257; c.height = 31;
let x = c.getContext("2d");
x.textBaseline = "top";
x.font = "12px -apple-system";
x.fillStyle = "#5e8e3e";
x.fillText("shopify_perf_kit gpu-tier?", 2, 2);
x.fillStyle = "rgba(94, 142, 62, 0.25)";
x.fillRect(0, 16, 257, 14);
c.toDataURL();
"##;

const ADSCORE: &str = r##"// adscore.re verify
fn adsCanvas() {
    let c = document.createElement("canvas");
    c.width = 300; c.height = 50;
    let x = c.getContext("2d");
    x.font = "16px Trebuchet MS";
    x.fillStyle = "#9333ea";
    x.fillText("AdScore valid-traffic \u{1F600}", 4, 34);
    return c.toDataURL();
}
let a1 = adsCanvas();
let a2 = adsCanvas();
let verdict = a1 == a2;
"##;

const GEETEST: &str = r##"// geetest captcha env check
let c = document.createElement("canvas");
c.width = 300; c.height = 44;
let x = c.getContext("2d");
x.font = "15px PingFang SC";
x.fillStyle = "#3b82f6";
x.fillText("geetest slide-verify 4.0", 5, 28);
x.fillStyle = "rgba(59, 130, 246, 0.3)";
x.beginPath();
x.arc(250, 22, 16, 0, 2 * pi(), false);
x.fill();
c.toDataURL();
"##;

/// Derives a word-like, letters-and-hyphens token from a site host — used
/// for Imperva's per-site path segment and canvas text.
pub fn site_token(host: &str) -> String {
    const SYLLABLES: &[&str] = &[
        "va", "len", "tor", "mi", "ke", "ra", "dun", "sol", "pex", "qui", "zan", "bo",
    ];
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for b in host.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut parts = Vec::new();
    for word in 0..2 {
        let mut s = String::new();
        for i in 0..3 {
            let idx = ((h >> (word * 24 + i * 8)) % SYLLABLES.len() as u64) as usize;
            s.push_str(SYLLABLES[idx]);
        }
        // Capitalize to look like the real-world path segments.
        let mut chars = s.chars();
        if let Some(first) = chars.next() {
            parts.push(format!("{}{}", first.to_ascii_uppercase(), chars.as_str()));
        }
    }
    parts.join("-")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_vendors;

    #[test]
    fn sources_are_deterministic() {
        for v in all_vendors() {
            assert_eq!(
                source(v.id, "Tok-En", false),
                source(v.id, "Tok-En", false),
                "{}",
                v.name
            );
        }
    }

    #[test]
    fn sources_are_pairwise_distinct() {
        let all: Vec<String> = all_vendors()
            .iter()
            .map(|v| source(v.id, "Tok-En", false))
            .collect();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn imperva_embeds_site_token() {
        let a = source(VendorId::Imperva, "Alpha-Beta", false);
        let b = source(VendorId::Imperva, "Gamma-Delta", false);
        assert_ne!(a, b);
        assert!(a.contains("Alpha-Beta"));
    }

    #[test]
    fn non_imperva_ignores_site_token() {
        for v in all_vendors().iter().filter(|v| v.id != VendorId::Imperva) {
            assert_eq!(source(v.id, "A-A", false), source(v.id, "B-B", false));
        }
    }

    #[test]
    fn fpjs_commercial_and_oss_differ_in_text_only_markers() {
        let oss = source(VendorId::FingerprintJs, "", false);
        let pro = source(VendorId::FingerprintJs, "", true);
        assert_ne!(oss, pro);
        assert!(oss.contains("open-source"));
        assert!(pro.contains("Pro"));
        // Both contain the identical canvas functions.
        assert!(oss.contains("fpjsWinding"));
        assert!(pro.contains("fpjsWinding"));
    }

    #[test]
    fn generic_fingerprinters_differ_by_index() {
        assert_ne!(generic_fingerprinter(1), generic_fingerprinter(2));
        assert_eq!(generic_fingerprinter(7), generic_fingerprinter(7));
    }

    #[test]
    fn site_tokens_are_wordlike() {
        let t = site_token("www.example-shop.com");
        assert!(t.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
        assert_eq!(t, site_token("www.example-shop.com"));
        assert_ne!(t, site_token("other.org"));
    }
}
