//! # canvassing-vendors
//!
//! Models of the fingerprinting services the paper attributes (Table 1 /
//! Table 3), plus the benign canvas users its heuristics must exclude
//! (Appendix A.2). Every script is *canvascript source text* served over
//! the simulated network — attribution patterns match real URLs, and the
//! clustering pipeline sees real rendered canvases.
//!
//! The fidelity contract per vendor: (a) its test canvases are distinct
//! from every other vendor's, (b) they are identical wherever the vendor
//! is deployed (except Imperva, which embeds a per-site token — the
//! paper's reason Imperva cannot track across sites), (c) vendors that
//! perform the §5.3 double-render randomization check extract the same
//! canvas twice, and (d) script URL shapes follow Table 3's patterns.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod benign;
pub mod scripts;

use serde::{Deserialize, Serialize};

/// Identity of a modeled fingerprinting service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VendorId {
    /// Akamai bot detection.
    Akamai,
    /// FingerprintJS (open-source and commercial render identical canvases).
    FingerprintJs,
    /// mail.ru counters.
    MailRu,
    /// Older (~2020) FingerprintJS with a different canvas.
    FingerprintJsLegacy,
    /// Imperva bot detection (unique canvas per customer site).
    Imperva,
    /// AWS Application Firewall.
    AwsWaf,
    /// InsurAds attention analytics.
    InsurAds,
    /// Signifyd fraud detection.
    Signifyd,
    /// PerimeterX bot detection.
    PerimeterX,
    /// Sift Science fraud detection.
    SiftScience,
    /// Shopify storefront performance monitoring.
    Shopify,
    /// Adscore ad-fraud detection.
    Adscore,
    /// GeeTest CAPTCHA.
    GeeTest,
}

/// How the paper established ground truth for a vendor (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionMethods {
    /// A public demo page exists and was crawled.
    pub demo: bool,
    /// Known customers were crawled.
    pub known_customer: bool,
    /// A script URL pattern identifies the vendor.
    pub script_pattern: bool,
}

/// Static description of one vendor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vendor {
    /// Identity.
    pub id: VendorId,
    /// Display name as in Table 1.
    pub name: &'static str,
    /// Whether the paper classifies the service as a security application
    /// (bold rows in Table 1).
    pub security: bool,
    /// Table 3 attribution methods.
    pub attribution: AttributionMethods,
    /// Substring that identifies the vendor's script URL (Table 3), when
    /// URL-based identification works at all.
    pub url_pattern: Option<&'static str>,
    /// Third-party host the script is canonically served from, or `None`
    /// when the vendor serves first-party (Akamai's `/akam/` path,
    /// Imperva's per-site path, FingerprintJS OSS bundling).
    pub serving_host: Option<&'static str>,
    /// Whether the script performs the double-render randomization check
    /// (§5.3), extracting the same canvas twice.
    pub double_render: bool,
    /// Number of distinct test canvases the script draws.
    pub canvas_count: usize,
    /// Public demo page host, when one exists.
    pub demo_host: Option<&'static str>,
}

/// All modeled vendors, in Table 1 order.
pub fn all_vendors() -> &'static [Vendor] {
    const A: AttributionMethods = AttributionMethods {
        demo: false,
        known_customer: false,
        script_pattern: true,
    };
    static VENDORS: &[Vendor] = &[
        Vendor {
            id: VendorId::Akamai,
            name: "Akamai",
            security: true,
            attribution: AttributionMethods {
                demo: false,
                known_customer: true,
                script_pattern: true,
            },
            url_pattern: Some("/akam/"),
            serving_host: None, // first-party path /akam/...
            double_render: false,
            canvas_count: 1,
            demo_host: None,
        },
        Vendor {
            id: VendorId::FingerprintJs,
            name: "FingerprintJS",
            security: false,
            attribution: AttributionMethods {
                demo: true,
                known_customer: true,
                script_pattern: true,
            },
            url_pattern: Some("fpnpmcdn.net"),
            serving_host: Some("fpnpmcdn.net"),
            double_render: true,
            canvas_count: 2,
            demo_host: Some("demo.fingerprint.com"),
        },
        Vendor {
            id: VendorId::MailRu,
            name: "mail.ru",
            security: false,
            attribution: A,
            url_pattern: Some("privacy-cs.mail.ru"),
            serving_host: Some("privacy-cs.mail.ru"),
            double_render: true,
            canvas_count: 2,
            demo_host: None,
        },
        Vendor {
            id: VendorId::FingerprintJsLegacy,
            name: "FingerprintJS (legacy)",
            security: false,
            attribution: AttributionMethods {
                demo: false,
                known_customer: true,
                script_pattern: true,
            },
            url_pattern: Some("fingerprintjs2"),
            serving_host: None, // legacy OSS is typically self-hosted/bundled
            double_render: true,
            canvas_count: 1,
            demo_host: None,
        },
        Vendor {
            id: VendorId::Imperva,
            name: "Imperva",
            security: true,
            attribution: AttributionMethods {
                demo: false,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: None, // identified by regex over first-party URLs
            serving_host: None,
            double_render: false,
            canvas_count: 1,
            demo_host: None,
        },
        Vendor {
            id: VendorId::AwsWaf,
            name: "AWS Firewall",
            security: true,
            attribution: A,
            url_pattern: Some("awswaf.com"),
            serving_host: Some("token.awswaf.com"),
            double_render: false,
            canvas_count: 1,
            demo_host: None,
        },
        Vendor {
            id: VendorId::InsurAds,
            name: "InsurAds",
            security: false,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("insurads.com"),
            serving_host: Some("cdn.insurads.com"),
            double_render: false,
            canvas_count: 2,
            demo_host: Some("insurads.com"),
        },
        Vendor {
            id: VendorId::Signifyd,
            name: "Signifyd",
            security: true,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("signifyd.com"),
            serving_host: Some("cdn-scripts.signifyd.com"),
            double_render: false,
            canvas_count: 1,
            demo_host: Some("www.signifyd.com"),
        },
        Vendor {
            id: VendorId::PerimeterX,
            name: "PerimeterX",
            security: true,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("px-cloud.net"),
            serving_host: Some("client.px-cloud.net"),
            double_render: false,
            canvas_count: 2,
            demo_host: Some("www.humansecurity.com"),
        },
        Vendor {
            id: VendorId::SiftScience,
            name: "Sift Science",
            security: true,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("sift.com"),
            serving_host: Some("cdn.sift.com"),
            double_render: false,
            canvas_count: 1,
            demo_host: Some("sift.com"),
        },
        Vendor {
            id: VendorId::Shopify,
            name: "Shopify",
            security: false,
            attribution: AttributionMethods {
                demo: true,
                known_customer: true,
                script_pattern: true,
            },
            url_pattern: Some("shopifycloud"),
            serving_host: Some("cdn.shopifycloud.com"),
            double_render: false,
            canvas_count: 1,
            demo_host: Some("performance.shopify.com"),
        },
        Vendor {
            id: VendorId::Adscore,
            name: "Adscore",
            security: true,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("adsco.re"),
            serving_host: Some("c.adsco.re"),
            double_render: true,
            canvas_count: 1,
            demo_host: Some("adscore.com"),
        },
        Vendor {
            id: VendorId::GeeTest,
            name: "GeeTest",
            security: true,
            attribution: AttributionMethods {
                demo: true,
                known_customer: false,
                script_pattern: true,
            },
            url_pattern: Some("geetest.com"),
            serving_host: Some("static.geetest.com"),
            double_render: false,
            canvas_count: 1,
            demo_host: Some("www.geetest.com"),
        },
    ];
    VENDORS
}

/// Looks up a vendor by id. Every `VendorId` variant has an entry in
/// [`all_vendors`] (enforced by a unit test), so the fallback to the
/// first table row is unreachable in practice.
pub fn vendor(id: VendorId) -> &'static Vendor {
    let vendors = all_vendors();
    vendors.iter().find(|v| v.id == id).unwrap_or(&vendors[0])
}

/// The Imperva customer-identification regex from Table 3.
pub const IMPERVA_URL_REGEX: &str = r"https?://(?:www\.)?[^/]+/([A-Za-z\-]+)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_vendors_modeled() {
        assert_eq!(all_vendors().len(), 13);
    }

    #[test]
    fn vendor_lookup_covers_all_ids() {
        for v in all_vendors() {
            assert_eq!(vendor(v.id).name, v.name);
        }
    }

    #[test]
    fn security_vendors_match_table_1_bold_rows() {
        let security: Vec<&str> = all_vendors()
            .iter()
            .filter(|v| v.security)
            .map(|v| v.name)
            .collect();
        assert_eq!(
            security,
            vec![
                "Akamai",
                "Imperva",
                "AWS Firewall",
                "Signifyd",
                "PerimeterX",
                "Sift Science",
                "Adscore",
                "GeeTest"
            ]
        );
    }

    #[test]
    fn double_render_vendors() {
        let dr: Vec<VendorId> = all_vendors()
            .iter()
            .filter(|v| v.double_render)
            .map(|v| v.id)
            .collect();
        assert!(dr.contains(&VendorId::FingerprintJs));
        assert!(dr.contains(&VendorId::MailRu));
        assert!(dr.contains(&VendorId::FingerprintJsLegacy));
        assert!(dr.contains(&VendorId::Adscore));
    }

    #[test]
    fn imperva_has_no_stable_url_pattern() {
        assert!(vendor(VendorId::Imperva).url_pattern.is_none());
    }
}
