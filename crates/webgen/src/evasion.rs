//! The seeded evasion corpus: fingerprinting scripts written to defeat
//! *syntactic* static analysis while behaving identically at runtime.
//!
//! Every variant performs a lossless read of a ≥16×16 canvas — the
//! dynamic §3.2 detector flags them all — but each launders the operand
//! the AST taint pass needs to see literally, so the AST engine can only
//! say `Inconclusive`. The bytecode abstract interpreter
//! (`canvassing-analysis::absint`) is expected to recover a decisive
//! `Fingerprinting` verdict for every variant; the differential test
//! suite gates that recovery rate at ≥80%.
//!
//! Four families, mirroring the evasion patterns catalogued in the
//! FP-Inspector / FP-Radar line of work:
//!
//! * **A — laundered dimensions** (v0, v1): canvas width/height assigned
//!   from variables or constant arithmetic instead of numeric literals.
//! * **B — laundered MIME** (v2–v5): the `toDataURL` argument assembled
//!   by concatenation, `fromCharCode`, `slice`, or case mapping.
//! * **C — helper indirection** (v6, v7): the canvas is created (and
//!   sized) inside a helper function and read through its return value.
//! * **D — laundered exfiltration** (v8, v9): the read result reaches a
//!   sink through a helper parameter or a piecewise-assembled URL, with
//!   a family-A/B launder keeping the AST engine undecided.

/// Number of distinct evasion variants in the corpus.
pub const EVASION_VARIANT_COUNT: u32 = 10;

/// Ground-truth provenance label for an evasion deployment.
pub fn evasion_label(variant: u32) -> String {
    format!("evasive:{}", variant % EVASION_VARIANT_COUNT)
}

/// The script source for one evasion variant. Deterministic; the same
/// variant is byte-identical everywhere it is deployed (so it clusters
/// as one canvas, like a generic fingerprinter).
pub fn evasive_script(variant: u32) -> String {
    match variant % EVASION_VARIANT_COUNT {
        // A: dimensions through locals.
        0 => r##"// ev0: dims via locals
let w = 220;
let h = 70;
let c = document.createElement("canvas");
c.width = w;
c.height = h;
let x = c.getContext("2d");
x.fillStyle = "#137fb2";
x.fillRect(4, 4, 120, 30);
x.fillText("ev0 laundered dims", 6, 24);
let fp = c.toDataURL();
fp;
"##
        .to_string(),
        // A: dimensions from constant arithmetic.
        1 => r##"// ev1: dims via arithmetic
let base = 100;
let c = document.createElement("canvas");
c.width = base * 2 + 40;
c.height = base - 36;
let x = c.getContext("2d");
x.fillStyle = "#b21313";
x.fillRect(2, 2, 90, 40);
x.fillText("ev1 computed dims", 5, 30);
let fp = c.toDataURL();
fp;
"##
        .to_string(),
        // B: MIME reassembled by concatenation.
        2 => r##"// ev2: concat mime
let c = document.createElement("canvas");
c.width = 250;
c.height = 44;
let x = c.getContext("2d");
x.fillText("ev2 concat mime", 4, 20);
let m = "image/" + "pn" + "g";
let fp = c.toDataURL(m);
fp;
"##
        .to_string(),
        // B: MIME with a charcode-injected byte.
        3 => r##"// ev3: charcode mime
let c = document.createElement("canvas");
c.width = 200;
c.height = 50;
let x = c.getContext("2d");
x.fillText("ev3 charcode mime", 4, 20);
let m = "image/p" + fromCharCode(110) + "g";
let fp = c.toDataURL(m);
fp;
"##
        .to_string(),
        // B: MIME sliced out of a padded literal.
        4 => r##"// ev4: sliced mime
let c = document.createElement("canvas");
c.width = 230;
c.height = 40;
let x = c.getContext("2d");
x.fillText("ev4 sliced mime", 4, 20);
let m = "xximage/pngzz".slice(2, 11);
let fp = c.toDataURL(m);
fp;
"##
        .to_string(),
        // B: MIME through case mapping.
        5 => r##"// ev5: cased mime
let c = document.createElement("canvas");
c.width = 210;
c.height = 42;
let x = c.getContext("2d");
x.fillText("ev5 cased mime", 4, 20);
let m = "IMAGE/PNG".toLowerCase();
let fp = c.toDataURL(m);
fp;
"##
        .to_string(),
        // C: canvas born inside a helper, default dimensions.
        6 => r##"// ev6: factory helper
fn makeCanvas() {
    let c = document.createElement("canvas");
    return c;
}
let k = makeCanvas();
let x = k.getContext("2d");
x.fillText("ev6 factory", 5, 20);
let fp = k.toDataURL();
fp;
"##
        .to_string(),
        // C: helper sizes and draws before handing the canvas back.
        7 => r##"// ev7: sized factory
fn prepared() {
    let c = document.createElement("canvas");
    c.width = 240;
    c.height = 36;
    let x = c.getContext("2d");
    x.fillStyle = "#0b6e4f";
    x.fillRect(1, 1, 200, 30);
    x.fillText("ev7 prepared", 4, 22);
    return c;
}
let k = prepared();
let fp = k.toDataURL();
fp;
"##
        .to_string(),
        // D: sink behind a helper parameter, dims laundered via locals.
        8 => r##"// ev8: relayed beacon
fn relay(p) {
    navigator.sendBeacon("/collect", p);
}
let w = 180;
let h = 44;
let c = document.createElement("canvas");
c.width = w;
c.height = h;
let x = c.getContext("2d");
x.fillText("ev8 relayed", 4, 20);
let fp = c.toDataURL();
relay(fp);
0;
"##
        .to_string(),
        // D: assembled endpoint + concat mime, posted to the window.
        _ => r##"// ev9: assembled endpoint
let c = document.createElement("canvas");
c.width = 260;
c.height = 48;
let x = c.getContext("2d");
x.fillText("ev9 assembled", 4, 20);
let m = "image/" + "png";
let fp = c.toDataURL(m);
let u = "/c" + "ol" + "lect";
window.postMessage(u + fp);
0;
"##
        .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..EVASION_VARIANT_COUNT {
            let src = evasive_script(v);
            assert!(seen.insert(src.clone()), "variant {v} duplicates another");
            assert_eq!(src, evasive_script(v + EVASION_VARIANT_COUNT), "wraps");
        }
    }

    #[test]
    fn every_variant_parses() {
        for v in 0..EVASION_VARIANT_COUNT {
            canvassing_script::parse(&evasive_script(v))
                .unwrap_or_else(|e| panic!("variant {v} failed to parse: {e}"));
        }
    }

    fn fresh_host() -> canvassing_dom::Document {
        canvassing_dom::Document::new(canvassing_raster::DeviceProfile::intel_ubuntu())
    }

    #[test]
    fn every_variant_runs_cleanly() {
        for v in 0..EVASION_VARIANT_COUNT {
            let program = canvassing_script::parse(&evasive_script(v)).expect("parse");
            let mut host = fresh_host();
            canvassing_script::run(&program, &mut host)
                .unwrap_or_else(|e| panic!("variant {v} failed at runtime: {e}"));
        }
    }

    #[test]
    fn every_variant_reads_a_large_canvas_at_runtime() {
        for v in 0..EVASION_VARIANT_COUNT {
            let program = canvassing_script::parse(&evasive_script(v)).expect("parse");
            let mut host = fresh_host();
            canvassing_script::run(&program, &mut host).expect("run");
            let ex = host.extractions();
            assert!(!ex.is_empty(), "variant {v} performed no canvas read");
            assert!(
                ex.iter()
                    .any(|e| e.width >= 16 && e.height >= 16 && e.mime == "image/png"),
                "variant {v} read is not a §3.2-qualifying extraction"
            );
        }
    }
}
