//! Generation parameters, calibrated to the paper's reported marginals.
//!
//! Every constant here is traceable to a number in the paper; the
//! pipeline then *measures these back* through the same crawler +
//! detection + clustering steps the paper used. Nothing downstream reads
//! this module — it exists only to plant the synthetic web.

use canvassing_vendors::VendorId;
use serde::{Deserialize, Serialize};

/// Cohort of a site in the Tranco-like ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cohort {
    /// Ranks 1..=20,000 ("top 20k").
    Popular,
    /// A 20k sample of ranks 20,001..=1,000,000 ("tail 20k").
    Tail,
}

/// Per-vendor deployment counts among *successfully crawled, fingerprinting*
/// sites — Table 1 of the paper, at scale 1.0.
pub const VENDOR_SITE_COUNTS: &[(VendorId, usize, usize)] = &[
    (VendorId::Akamai, 485, 205),
    (VendorId::FingerprintJs, 462, 298),
    (VendorId::MailRu, 242, 173),
    (VendorId::FingerprintJsLegacy, 179, 90),
    (VendorId::Imperva, 49, 13),
    (VendorId::AwsWaf, 48, 14),
    (VendorId::InsurAds, 40, 1),
    (VendorId::Signifyd, 39, 18),
    (VendorId::PerimeterX, 35, 2),
    (VendorId::SiftScience, 31, 8),
    (VendorId::Shopify, 32, 457),
    (VendorId::Adscore, 25, 30),
    (VendorId::GeeTest, 1, 0),
];

/// Of the FingerprintJS deployments, how many use the paid commercial
/// service (§4.3.1: 23 top sites, 10 tail sites).
pub const FPJS_COMMERCIAL: (usize, usize) = (23, 10);

/// How one vendor/generic deployment serves its script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Serving {
    /// Classic `<script src="https://vendor.example/...">`.
    ThirdParty,
    /// Script hosted on the site's own host under a vendor path
    /// (Akamai's `/akam/`, Imperva's per-site token path).
    FirstPartyPath,
    /// Source bundled into the site's own first-party JavaScript.
    Bundled,
    /// Served from a dedicated subdomain of the site (`fp.site.com`).
    Subdomain,
    /// First-party subdomain CNAME-cloaked to the vendor's host.
    CnameCloak,
    /// Served from a popular CDN (Appendix A.5).
    Cdn,
}

/// A serving-strategy mixture (weights; need not sum to 1 — they are
/// normalized at sampling time).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServingMix {
    /// Weight of [`Serving::ThirdParty`].
    pub third_party: f64,
    /// Weight of [`Serving::Bundled`].
    pub bundled: f64,
    /// Weight of [`Serving::Subdomain`].
    pub subdomain: f64,
    /// Weight of [`Serving::CnameCloak`].
    pub cname: f64,
    /// Weight of [`Serving::Cdn`].
    pub cdn: f64,
}

impl ServingMix {
    /// Everything from the vendor's own host.
    pub const fn third_party_only() -> ServingMix {
        ServingMix {
            third_party: 1.0,
            bundled: 0.0,
            subdomain: 0.0,
            cname: 0.0,
            cdn: 0.0,
        }
    }
}

/// The category of a long-tail generic fingerprinter, which decides which
/// blocklists its serving host appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenericCategory {
    /// Advertising-affiliated: EasyList (and often EasyPrivacy).
    Ad,
    /// Tracking/analytics-affiliated: EasyPrivacy (and often Disconnect).
    Tracker,
    /// On all three lists (clear tracking/advertising intent, Table 4
    /// "All" row).
    AllLists,
    /// Unlisted (new or niche actors).
    Unlisted,
}

/// Top-level generation config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebConfig {
    /// RNG seed; two configs with the same seed generate identical webs.
    pub seed: u64,
    /// Scale factor: 1.0 reproduces the paper's 20k + 20k crawl; tests use
    /// small fractions. Counts are multiplied and rounded.
    pub scale: f64,
}

impl WebConfig {
    /// Paper-scale configuration.
    pub fn paper_scale(seed: u64) -> WebConfig {
        WebConfig { seed, scale: 1.0 }
    }

    /// Reduced-scale configuration for tests (5% keeps every vendor with a
    /// nonzero site count present in the popular cohort).
    pub fn test_scale(seed: u64) -> WebConfig {
        WebConfig { seed, scale: 0.05 }
    }

    /// Applies the scale to a paper-scale count (at least 1 when the
    /// original count is nonzero, so rare vendors don't vanish).
    pub fn scaled(&self, count: usize) -> usize {
        if count == 0 {
            return 0;
        }
        ((count as f64 * self.scale).round() as usize).max(1)
    }

    /// Sites per cohort (paper: 20,000 each).
    pub fn cohort_size(&self) -> usize {
        self.scaled(20_000)
    }

    /// Successfully crawled sites per cohort (paper: 16,276 / 17,260 —
    /// the rest time out, refuse connections, or otherwise fail).
    pub fn crawl_successes(&self, cohort: Cohort) -> usize {
        match cohort {
            Cohort::Popular => self.scaled(16_276),
            Cohort::Tail => self.scaled(17_260),
        }
    }

    /// Fingerprinting sites per cohort (paper: 2,067 / 1,715). The
    /// difference between this and the attributed-vendor union is filled
    /// with long-tail generic fingerprinters.
    pub fn fingerprinting_sites(&self, cohort: Cohort) -> usize {
        match cohort {
            Cohort::Popular => self.scaled(2_067),
            Cohort::Tail => self.scaled(1_715),
        }
    }

    /// Unique fingerprintable canvases per cohort (paper: 504 / 288) —
    /// drives how many distinct generic clusters exist.
    pub fn unique_canvas_target(&self, cohort: Cohort) -> usize {
        match cohort {
            Cohort::Popular => self.scaled(504),
            Cohort::Tail => self.scaled(288),
        }
    }

    /// Share of sites whose homepage is a Shopify storefront, per cohort.
    /// Derived from Table 1: 32 / 16,276 popular vs 457 / 17,260 tail.
    pub fn shopify_storefronts(&self, cohort: Cohort) -> usize {
        match cohort {
            Cohort::Popular => self.scaled(32),
            Cohort::Tail => self.scaled(457),
        }
    }

    /// Number of `.ru` sites per cohort. §4.3.1: mail.ru's canvas set
    /// appears on one-third of all `.ru` domains in the top 20k, and on
    /// 242 popular sites ⇒ ~726 `.ru` populars. Tail keeps the same 3×
    /// relation to its 173 mail.ru sites.
    pub fn ru_sites(&self, cohort: Cohort) -> usize {
        match cohort {
            Cohort::Popular => self.scaled(726),
            Cohort::Tail => self.scaled(519),
        }
    }

    /// Serving mixture for a vendor in a cohort. The numbers are chosen so
    /// the §5.2 marginals come out of the measurement: ≥1 first-party
    /// canvas on ~49%/52% of fingerprinting sites, subdomain routing on
    /// ~9.5%/2.1%, popular-CDN serving on ~2.1%/1.9%.
    pub fn vendor_serving(&self, id: VendorId, commercial: bool, cohort: Cohort) -> ServingMix {
        use VendorId::*;
        match id {
            // Akamai and Imperva always serve from the customer's own host.
            Akamai | Imperva => ServingMix {
                third_party: 0.0,
                bundled: 0.0,
                subdomain: 0.0,
                cname: 0.0,
                cdn: 0.0,
            },
            FingerprintJs if commercial => ServingMix {
                // Commercial: vendor CDN or the documented Cloudflare
                // worker route (§5.2 footnote 6).
                third_party: 0.2,
                bundled: 0.0,
                subdomain: 0.0,
                cname: 0.0,
                cdn: 0.8,
            },
            FingerprintJs => match cohort {
                Cohort::Popular => ServingMix {
                    third_party: 0.46,
                    bundled: 0.40,
                    subdomain: 0.12,
                    cname: 0.01,
                    cdn: 0.01,
                },
                Cohort::Tail => ServingMix {
                    third_party: 0.20,
                    bundled: 0.75,
                    subdomain: 0.04,
                    cname: 0.0,
                    cdn: 0.01,
                },
            },
            FingerprintJsLegacy => match cohort {
                Cohort::Popular => ServingMix {
                    third_party: 0.55,
                    bundled: 0.35,
                    subdomain: 0.10,
                    cname: 0.0,
                    cdn: 0.0,
                },
                Cohort::Tail => ServingMix {
                    third_party: 0.30,
                    bundled: 0.70,
                    subdomain: 0.0,
                    cname: 0.0,
                    cdn: 0.0,
                },
            },
            MailRu => ServingMix {
                third_party: 0.97,
                bundled: 0.0,
                subdomain: 0.0,
                cname: 0.03,
                cdn: 0.0,
            },
            // Shopify storefront assets come from Shopify's CDN host.
            Shopify => ServingMix::third_party_only(),
            // The security products serve third-party with a sprinkle of
            // subdomain integration on popular (better-engineered) sites.
            _ => match cohort {
                Cohort::Popular => ServingMix {
                    third_party: 0.85,
                    bundled: 0.0,
                    subdomain: 0.15,
                    cname: 0.0,
                    cdn: 0.0,
                },
                Cohort::Tail => ServingMix::third_party_only(),
            },
        }
    }

    /// Serving mixture for generic long-tail fingerprinters. First-party
    /// bundling is the dominant evasion (§5.2: "the most popular in our
    /// data is bundling the fingerprinting library into the site's
    /// first-party JavaScript").
    pub fn generic_serving(&self, cohort: Cohort) -> ServingMix {
        match cohort {
            Cohort::Popular => ServingMix {
                third_party: 0.84,
                bundled: 0.10,
                subdomain: 0.03,
                cname: 0.02,
                cdn: 0.01,
            },
            Cohort::Tail => ServingMix {
                third_party: 0.74,
                bundled: 0.22,
                subdomain: 0.01,
                cname: 0.02,
                cdn: 0.01,
            },
        }
    }

    /// Category mixture for generic clusters, chosen to land Table 4's
    /// static-coverage rows (EasyList 31%/27%, EasyPrivacy 36%/30%,
    /// Disconnect 21%/19%, Any 45%/37%, All 16%/15%).
    pub fn generic_category_weights(&self) -> [(GenericCategory, f64); 4] {
        [
            (GenericCategory::Ad, 0.14),
            (GenericCategory::Tracker, 0.12),
            (GenericCategory::AllLists, 0.13),
            (GenericCategory::Unlisted, 0.61),
        ]
    }

    /// Probability that a *successfully crawled, non-fingerprinting* site
    /// still uses canvas benignly (WebP probes etc., Appendix A.2).
    pub fn benign_rate(&self) -> f64 {
        0.06
    }

    /// Probability a fingerprinting site shows a consent banner
    /// (autoconsent opts in, so this only exercises the banner path).
    pub fn consent_banner_rate(&self) -> f64 {
        0.35
    }

    /// Probability a site runs a bot-detection gate the crawler must pass.
    pub fn bot_gate_rate(&self) -> f64 {
        0.08
    }

    /// Distribution of *extra* generic fingerprinting scripts on a
    /// fingerprinting site (beyond its primary deployments) —
    /// (count, weight). Drives the §4.1 per-site canvas distribution
    /// (mean 3.31, median 2, max 60).
    pub fn extra_generic_weights(&self) -> &'static [(usize, f64)] {
        &[
            (0, 0.30),
            (1, 0.30),
            (2, 0.20),
            (3, 0.12),
            (5, 0.06),
            (8, 0.02),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors_at_one() {
        let c = WebConfig {
            seed: 1,
            scale: 0.05,
        };
        assert_eq!(c.scaled(20_000), 1_000);
        assert_eq!(c.scaled(1), 1);
        assert_eq!(c.scaled(0), 0);
    }

    #[test]
    fn paper_scale_counts() {
        let c = WebConfig::paper_scale(1);
        assert_eq!(c.cohort_size(), 20_000);
        assert_eq!(c.crawl_successes(Cohort::Popular), 16_276);
        assert_eq!(c.fingerprinting_sites(Cohort::Tail), 1_715);
    }

    #[test]
    fn vendor_counts_match_table_1_totals() {
        let popular: usize = VENDOR_SITE_COUNTS.iter().map(|(_, p, _)| p).sum();
        let tail: usize = VENDOR_SITE_COUNTS.iter().map(|(_, _, t)| t).sum();
        // Sums exceed the distinct attributed-site counts (1,513 / 1,222)
        // because sites may use several vendors.
        assert_eq!(popular, 1_668);
        assert_eq!(tail, 1_309);
    }

    #[test]
    fn serving_mix_weights_are_nonnegative() {
        let c = WebConfig::paper_scale(0);
        for (id, _, _) in VENDOR_SITE_COUNTS {
            for cohort in [Cohort::Popular, Cohort::Tail] {
                let m = c.vendor_serving(*id, false, cohort);
                for w in [m.third_party, m.bundled, m.subdomain, m.cname, m.cdn] {
                    assert!(w >= 0.0);
                }
            }
        }
    }

    #[test]
    fn extra_generic_weights_sum_to_one() {
        let c = WebConfig::paper_scale(0);
        let sum: f64 = c.extra_generic_weights().iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
