//! Synthetic EasyList / EasyPrivacy / Disconnect content.
//!
//! The lists are generated *from the deployment plan*, the way real lists
//! accrete around the real web. The structure deliberately reproduces the
//! rule-design phenomena the paper measures:
//!
//! * **Static coverage ≫ dynamic blocking** (§5.1 vs §5.2): many rules
//!   match script URLs that are served first-party (Akamai's `/akam/`
//!   path, subdomain-routed SDKs) where ad blockers apply first-party
//!   exceptions; others are neutralized by site-scoped `@@` exceptions the
//!   lists carry "to avoid breaking sites".
//! * **`$document` rules** (Appendix A.6): a corpus of rules that apply
//!   only to documents and therefore never block a script request — the
//!   `||mgid.com^$document` failure mode.
//! * **Domain-based Disconnect**: a flat domain list.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use canvassing_net::domain::registrable_domain;
use serde::{Deserialize, Serialize};

use crate::config::{GenericCategory, Serving};
use crate::deployment::{ScriptKind, WebPlan};
use crate::materialize::generic_host;

/// The three generated lists, as raw text (EasyList/EasyPrivacy in ABP
/// filter syntax, Disconnect as one domain per line).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedLists {
    /// EasyList-shaped advertising list.
    pub easylist: String,
    /// EasyPrivacy-shaped tracking list.
    pub easyprivacy: String,
    /// Disconnect-shaped domain list.
    pub disconnect: String,
}

/// Low cluster ids (the big, widely embedded scripts) accumulate
/// site-scoped `@@` exceptions — blocking them would break many sites.
/// This is the id threshold as a per-mille of the cluster population.
const EL_EXCEPTED_HEAD_PERMILLE: usize = 400;

/// Generates all three lists from the plan.
pub fn generate_lists(plan: &WebPlan) -> GeneratedLists {
    // Which registrable page domains use each generic cluster (for
    // site-scoped exceptions).
    let mut cluster_pages: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for site in &plan.sites {
        for d in &site.deployments {
            if let ScriptKind::Generic { cluster, .. } = d.kind {
                if d.serving == Serving::ThirdParty {
                    let rd = registrable_domain(&site.seed.host)
                        .unwrap_or(&site.seed.host)
                        .to_string();
                    let pages = cluster_pages.entry(cluster).or_default();
                    if !pages.contains(&rd) {
                        pages.push(rd);
                    }
                }
            }
        }
    }

    let mut el = String::new();
    let mut ep = String::new();
    let mut dc = String::new();

    el.push_str("[Adblock Plus 2.0]\n! Title: EasyList (synthetic)\n");
    ep.push_str("[Adblock Plus 2.0]\n! Title: EasyPrivacy (synthetic)\n");
    dc.push_str("# Disconnect tracker protection (synthetic)\n");

    // ----- vendor rules -----
    // Akamai: EasyList carries a path rule that matches the sensor URL,
    // but the script is served first-party, so blockers never fire on it
    // (§5.2 footnote 5).
    el.push_str("/akam/*$script\n");
    // mail.ru: blocked on paper, excepted on .ru sites to avoid breakage.
    el.push_str("||privacy-cs.mail.ru^$script\n");
    el.push_str("@@||privacy-cs.mail.ru^$script,domain=ru\n");
    // Ad-tech vendors with effective script rules.
    el.push_str("||cdn.insurads.com^$script\n");
    el.push_str("||c.adsco.re^$script\n");
    // The Appendix A.6 example, verbatim: a document-only rule that never
    // applies to script loads.
    el.push_str("||mgid.com^$document\n");

    ep.push_str("||privacy-cs.mail.ru^\n");
    ep.push_str("||openfpcdn.io^$script\n");
    ep.push_str("||fpnpmcdn.net^$script\n");
    ep.push_str("||client.px-cloud.net^\n");
    ep.push_str("||cdn.sift.com^\n");
    ep.push_str("||c.adsco.re^\n");
    ep.push_str("||cdn.insurads.com^\n");

    dc.push_str("mail.ru\n");
    dc.push_str("sift.com\n");
    dc.push_str("adsco.re\n");
    dc.push_str("insurads.com\n");

    // ----- generic cluster rules -----
    for cluster in &plan.clusters {
        let host = generic_host(cluster.id, cluster.category);
        match cluster.category {
            GenericCategory::Ad | GenericCategory::AllLists => {
                let _ = writeln!(el, "||{host}^$script");
                // A share of rules is neutralized by site-scoped
                // exceptions contributed to avoid breaking those sites.
                let head_cutoff = plan.clusters.len() * EL_EXCEPTED_HEAD_PERMILLE / 1000;
                if (cluster.id as usize) < head_cutoff {
                    if let Some(pages) = cluster_pages.get(&cluster.id) {
                        if !pages.is_empty() {
                            let _ = writeln!(el, "@@||{host}^$script,domain={}", pages.join("|"));
                        }
                    }
                }
                // Plus the $document companion every ad domain tends to
                // accumulate (never blocks scripts).
                let _ = writeln!(el, "||{host}^$document");
            }
            GenericCategory::Tracker => {}
            GenericCategory::Unlisted => continue,
        }
        match cluster.category {
            GenericCategory::Tracker | GenericCategory::AllLists => {
                let _ = writeln!(ep, "||{host}^$script");
            }
            _ => {}
        }
        if cluster.category == GenericCategory::AllLists {
            let _ = writeln!(dc, "{}", registrable_domain(&host).unwrap_or(&host));
        }
    }

    // ----- inert $document ballast -----
    // EasyList had 828 `$document`-modified rules at analysis time (A.6).
    // They exist here so rule-count statistics and matcher benchmarks see
    // a realistic corpus; none of them can ever block a script.
    for i in 0..200 {
        let _ = writeln!(el, "||inert-ad-network-{i}.example^$document");
    }
    // And generic cosmetic/path noise that never matches our URLs.
    for i in 0..120 {
        let _ = writeln!(el, "/banner-{i}x90.");
        let _ = writeln!(ep, "/pixel-{i}.gif");
    }

    GeneratedLists {
        easylist: el,
        easyprivacy: ep,
        disconnect: dc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cohort, WebConfig};
    use crate::deployment::plan_web;
    use crate::population::generate_cohort;
    use canvassing_blocklist::{DisconnectList, FilterList};
    use canvassing_net::{ResourceType, Url};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lists() -> GeneratedLists {
        let config = WebConfig::test_scale(5);
        let mut rng = StdRng::seed_from_u64(5);
        let popular = generate_cohort(&config, Cohort::Popular, &mut rng);
        let tail = generate_cohort(&config, Cohort::Tail, &mut rng);
        let plan = plan_web(&config, popular, tail, &mut rng);
        generate_lists(&plan)
    }

    #[test]
    fn lists_parse() {
        let g = lists();
        let el = FilterList::parse("EasyList", &g.easylist);
        let ep = FilterList::parse("EasyPrivacy", &g.easyprivacy);
        let dc = DisconnectList::parse(&g.disconnect);
        assert!(el.rules.len() > 100, "{} EL rules", el.rules.len());
        assert!(ep.rules.len() > 50);
        assert!(dc.len() >= 4, "{} disconnect domains", dc.len());
    }

    #[test]
    fn akamai_rule_matches_statically() {
        let g = lists();
        let el = FilterList::parse("EasyList", &g.easylist);
        let url = Url::parse("https://customer.com/akam/13/ab12cd34.js").unwrap();
        assert!(el.covers_script_url(&url, ResourceType::Script));
    }

    #[test]
    fn mgid_document_rule_never_covers_scripts() {
        let g = lists();
        let el = FilterList::parse("EasyList", &g.easylist);
        let url = Url::parse("https://mgid.com/fp.js").unwrap();
        assert!(!el.covers_script_url(&url, ResourceType::Script));
    }

    #[test]
    fn mailru_statically_covered_but_excepted_on_ru_pages() {
        let g = lists();
        let el = FilterList::parse("EasyList", &g.easylist);
        let url = Url::parse("https://privacy-cs.mail.ru/counter/top.js").unwrap();
        // Static (adblockparser-style) coverage counts it...
        assert!(el.covers_script_url(&url, ResourceType::Script));
        // ...but in context on a .ru page, the exception fires.
        let ctx = canvassing_blocklist::RequestContext::new(
            url,
            ResourceType::Script,
            false,
            "some-site.ru",
        );
        assert!(matches!(
            el.evaluate(&ctx),
            canvassing_blocklist::Verdict::Excepted { .. }
        ));
    }

    #[test]
    fn disconnect_contains_mailru() {
        let g = lists();
        let dc = DisconnectList::parse(&g.disconnect);
        assert!(dc.contains_url(&Url::parse("https://privacy-cs.mail.ru/counter/top.js").unwrap()));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(lists().easylist, lists().easylist);
    }
}
