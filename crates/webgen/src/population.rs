//! Site population: Tranco-like ranking, host names, TLD distribution,
//! crawl-failure flags.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::{Cohort, WebConfig};

/// One site in the synthetic ranking (before deployment planning).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSeed {
    /// Tranco-like rank (1-based; tail ranks start above the popular
    /// cohort and are sparse, like the paper's random tail sample).
    pub rank: u32,
    /// Cohort the site belongs to.
    pub cohort: Cohort,
    /// Homepage host (no `www.` — the crawler normalizes).
    pub host: String,
    /// Whether the site fails to crawl (down, timeout, hard bot wall).
    pub down: bool,
    /// Whether the homepage is a Shopify storefront.
    pub shopify: bool,
}

/// Second-level-domain word stock for generated host names.
const WORDS: &[&str] = &[
    "news", "shop", "cloud", "media", "game", "tech", "bank", "travel", "health", "data", "home",
    "auto", "food", "sport", "music", "video", "mail", "blog", "store", "market", "play", "learn",
    "social", "stream", "crypto", "design", "photo", "forum", "wiki", "jobs",
];

/// Weighted TLD stock (weight, tld). `.ru` is handled separately because
/// its share is a calibrated input (mail.ru reach, §4.3.1).
const TLDS: &[(u32, &str)] = &[
    (52, "com"),
    (10, "org"),
    (8, "net"),
    (6, "de"),
    (5, "co.uk"),
    (4, "io"),
    (4, "fr"),
    (3, "com.br"),
    (3, "jp"),
    (2, "it"),
    (2, "nl"),
    (1, "com.pa"),
];

fn pick_tld<R: Rng>(rng: &mut R) -> &'static str {
    let total: u32 = TLDS.iter().map(|(w, _)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (w, tld) in TLDS {
        if roll < *w {
            return tld;
        }
        roll -= w;
    }
    "com"
}

/// Generates the full site population for one cohort. `rng` must be the
/// config-seeded generator so populations are reproducible.
pub fn generate_cohort<R: Rng>(config: &WebConfig, cohort: Cohort, rng: &mut R) -> Vec<SiteSeed> {
    let n = config.cohort_size();
    let ru_target = config.ru_sites(cohort);
    let shopify_target = config.shopify_storefronts(cohort);
    let successes = config.crawl_successes(cohort);

    // Ranks: popular 1..=n; tail is a sparse random sample of the range
    // (20k, 1M] like the paper's (scaled by config).
    let popular_span = config.scaled(20_000) as u32;
    let mut ranks: Vec<u32> = match cohort {
        Cohort::Popular => (1..=n as u32).collect(),
        Cohort::Tail => {
            let lo = popular_span + 1;
            let hi = config.scaled(1_000_000) as u32;
            let mut set = std::collections::BTreeSet::new();
            while set.len() < n {
                set.insert(rng.gen_range(lo..=hi.max(lo + n as u32 * 2)));
            }
            set.into_iter().collect()
        }
    };
    ranks.sort_unstable();

    // Which positions are .ru, which are Shopify storefronts, which fail.
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let ru_set: std::collections::BTreeSet<usize> =
        indices.iter().take(ru_target).copied().collect();
    // Storefronts are drawn from non-.ru positions (Shopify has no
    // meaningful .ru presence).
    let shopify_set: std::collections::BTreeSet<usize> = indices
        .iter()
        .filter(|i| !ru_set.contains(i))
        .take(shopify_target)
        .copied()
        .collect();
    // Crawl failures: never a storefront (we need exact Table 1 Shopify
    // counts among successes), otherwise uniform.
    let mut failure_candidates: Vec<usize> = (0..n).filter(|i| !shopify_set.contains(i)).collect();
    failure_candidates.shuffle(rng);
    let down_set: std::collections::BTreeSet<usize> = failure_candidates
        .into_iter()
        .take(n.saturating_sub(successes))
        .collect();

    (0..n)
        .map(|i| {
            let rank = ranks[i];
            let shopify = shopify_set.contains(&i);
            let word1 = WORDS[rng.gen_range(0..WORDS.len())];
            let word2 = WORDS[rng.gen_range(0..WORDS.len())];
            let host = if ru_set.contains(&i) {
                format!("{word1}-{word2}{rank}.ru")
            } else if shopify {
                format!("{word1}-boutique{rank}.com")
            } else {
                format!("{word1}{word2}{rank}.{}", pick_tld(rng))
            };
            SiteSeed {
                rank,
                cohort,
                host,
                down: down_set.contains(&i),
                shopify,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(cohort: Cohort) -> Vec<SiteSeed> {
        let config = WebConfig::test_scale(7);
        let mut rng = StdRng::seed_from_u64(7);
        generate_cohort(&config, cohort, &mut rng)
    }

    #[test]
    fn cohort_sizes_match_config() {
        let config = WebConfig::test_scale(7);
        assert_eq!(gen(Cohort::Popular).len(), config.cohort_size());
        assert_eq!(gen(Cohort::Tail).len(), config.cohort_size());
    }

    #[test]
    fn success_counts_match_config() {
        let config = WebConfig::test_scale(7);
        for cohort in [Cohort::Popular, Cohort::Tail] {
            let up = gen(cohort).iter().filter(|s| !s.down).count();
            assert_eq!(up, config.crawl_successes(cohort));
        }
    }

    #[test]
    fn ru_and_shopify_targets_met() {
        let config = WebConfig::test_scale(7);
        let sites = gen(Cohort::Tail);
        let ru = sites.iter().filter(|s| s.host.ends_with(".ru")).count();
        assert_eq!(ru, config.ru_sites(Cohort::Tail));
        let shop = sites.iter().filter(|s| s.shopify).count();
        assert_eq!(shop, config.shopify_storefronts(Cohort::Tail));
    }

    #[test]
    fn storefronts_never_fail_to_crawl() {
        for s in gen(Cohort::Tail) {
            if s.shopify {
                assert!(!s.down);
            }
        }
    }

    #[test]
    fn hosts_are_unique_and_parseable() {
        let sites = gen(Cohort::Popular);
        let mut hosts: Vec<&str> = sites.iter().map(|s| s.host.as_str()).collect();
        hosts.sort_unstable();
        let before = hosts.len();
        hosts.dedup();
        assert_eq!(hosts.len(), before, "host collision");
        for s in &sites {
            assert!(canvassing_net::Url::parse(&format!("https://{}/", s.host)).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen(Cohort::Popular);
        let b = gen(Cohort::Popular);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.host == y.host && x.down == y.down));
    }

    #[test]
    fn popular_ranks_are_dense_tail_sparse() {
        let pop = gen(Cohort::Popular);
        assert_eq!(pop[0].rank, 1);
        let tail = gen(Cohort::Tail);
        let config = WebConfig::test_scale(7);
        assert!(tail.iter().all(|s| s.rank > config.scaled(20_000) as u32));
    }
}
