//! # canvassing-webgen
//!
//! The synthetic Web: a deterministic stand-in for the paper's crawl
//! targets (Tranco top-20k "popular" sites plus a 20k "tail" sample of
//! ranks 20k+1..1M).
//!
//! Generation proceeds in four stages, each its own module:
//!
//! 1. [`population`] — ranks, host names, TLD structure (including the
//!    calibrated `.ru` share and Shopify storefront density), and
//!    crawl-failure flags;
//! 2. [`deployment`] — which sites run which fingerprinting scripts
//!    (exact Table 1 vendor counts, the generic long tail sized to the
//!    unique-canvas totals, serving-strategy mixtures for §5.2);
//! 3. [`materialize`] — DNS records, hosted pages and scripts, CNAME
//!    cloaks, CDN paths;
//! 4. [`listgen`] — EasyList / EasyPrivacy / Disconnect content grown
//!    around the deployments.
//!
//! Everything is a pure function of [`config::WebConfig`] (seed + scale):
//! the same config generates the identical web, byte for byte, which is
//! what makes the paper's re-crawl experiments (Table 2, the Intel/M1
//! validation) meaningful in this reproduction.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod deployment;
pub mod evasion;
pub mod listgen;
pub mod materialize;
pub mod population;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use config::{Cohort, GenericCategory, Serving, WebConfig};
pub use deployment::{Deployment, GenericCluster, ScriptKind, SitePlan, WebPlan};
pub use evasion::{evasion_label, evasive_script, EVASION_VARIANT_COUNT};
pub use listgen::GeneratedLists;

use canvassing_net::Network;

/// A fully generated synthetic web: the site plan (crawl frontier and
/// ground truth), the network serving it, and the blocklists that grew
/// around it.
pub struct SyntheticWeb {
    /// Generation parameters.
    pub config: WebConfig,
    /// Ground-truth site plans (the crawler only uses `seed.host`;
    /// analyses never look at the plan).
    pub plan: WebPlan,
    /// The network: DNS + hosted resources + fault plan.
    pub network: Network,
    /// Generated blocklists.
    pub lists: GeneratedLists,
}

impl SyntheticWeb {
    /// Generates the web for a config. Deterministic in `config`.
    pub fn generate(config: WebConfig) -> SyntheticWeb {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let popular = population::generate_cohort(&config, Cohort::Popular, &mut rng);
        let tail = population::generate_cohort(&config, Cohort::Tail, &mut rng);
        let plan = deployment::plan_web(&config, popular, tail, &mut rng);
        let network = materialize::materialize(&plan);
        let lists = listgen::generate_lists(&plan);
        SyntheticWeb {
            config,
            plan,
            network,
            lists,
        }
    }

    /// Publicly known customers per vendor (the paper gathered these from
    /// vendor marketing pages): the lowest-ranked live site running each
    /// vendor that advertises customers, preferring externally-served
    /// deployments so the Script Pattern confirmation step has a URL to
    /// check.
    pub fn known_customers(&self) -> Vec<(canvassing_vendors::VendorId, canvassing_net::Url)> {
        let mut out = Vec::new();
        for v in canvassing_vendors::all_vendors() {
            if !v.attribution.known_customer {
                continue;
            }
            let uses_vendor = |s: &&SitePlan, serving: Option<Serving>| {
                s.deployments.iter().any(|d| {
                    matches!(d.kind, ScriptKind::Vendor { id, .. } if id == v.id)
                        && serving.map_or(d.serving != Serving::Bundled, |want| d.serving == want)
                })
            };
            let live = || self.plan.sites.iter().filter(|s| !s.seed.down);
            // Prefer a classic third-party embed (its URL carries the
            // vendor's Script Pattern), then first-party paths (Akamai),
            // then anything externally served.
            let candidate = live()
                .find(|s| uses_vendor(s, Some(Serving::ThirdParty)))
                .or_else(|| live().find(|s| uses_vendor(s, Some(Serving::FirstPartyPath))))
                .or_else(|| live().find(|s| uses_vendor(s, None)));
            if let Some(site) = candidate {
                out.push((v.id, canvassing_net::Url::https(&site.seed.host, "/")));
            }
        }
        out
    }

    /// Demo-page URLs for vendors that operate a public demo.
    pub fn demo_pages(&self) -> Vec<(canvassing_vendors::VendorId, canvassing_net::Url)> {
        canvassing_vendors::all_vendors()
            .iter()
            .filter_map(|v| {
                v.demo_host
                    .map(|h| (v.id, canvassing_net::Url::https(h, "/")))
            })
            .collect()
    }

    /// The crawl frontier for a cohort: homepage URLs in rank order
    /// (including sites that will fail — the crawler discovers that).
    pub fn frontier(&self, cohort: Cohort) -> Vec<canvassing_net::Url> {
        self.plan
            .sites
            .iter()
            .filter(|s| s.seed.cohort == cohort)
            .map(|s| canvassing_net::Url::https(&s.seed.host, "/"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = SyntheticWeb::generate(WebConfig::test_scale(42));
        let b = SyntheticWeb::generate(WebConfig::test_scale(42));
        assert_eq!(a.network.resource_count(), b.network.resource_count());
        assert_eq!(a.lists.easylist, b.lists.easylist);
        assert_eq!(a.plan.sites.len(), b.plan.sites.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticWeb::generate(WebConfig::test_scale(1));
        let b = SyntheticWeb::generate(WebConfig::test_scale(2));
        let hosts_a: Vec<&str> = a.plan.sites.iter().map(|s| s.seed.host.as_str()).collect();
        let hosts_b: Vec<&str> = b.plan.sites.iter().map(|s| s.seed.host.as_str()).collect();
        assert_ne!(hosts_a, hosts_b);
    }

    #[test]
    fn frontier_sizes() {
        let web = SyntheticWeb::generate(WebConfig::test_scale(42));
        assert_eq!(
            web.frontier(Cohort::Popular).len(),
            web.config.cohort_size()
        );
        assert_eq!(web.frontier(Cohort::Tail).len(), web.config.cohort_size());
    }
}
