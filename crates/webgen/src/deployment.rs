//! Deployment planning: which site runs which fingerprinting script, and
//! how it is served.
//!
//! The planner turns the paper's Table 1 / §4 marginals into an explicit
//! assignment: exact vendor site counts per cohort, a long-tail of
//! generic fingerprinters sized to hit the unique-canvas totals (504 /
//! 288), the tail-only cluster structure (largest 15, next 3, §4.2), and
//! the serving-strategy mixtures that produce the §5.2 evasion numbers.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use canvassing_vendors::{all_vendors, VendorId};

use crate::config::{
    Cohort, GenericCategory, Serving, ServingMix, WebConfig, FPJS_COMMERCIAL, VENDOR_SITE_COUNTS,
};
use crate::population::SiteSeed;

/// What script a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScriptKind {
    /// A modeled vendor.
    Vendor {
        /// Which vendor.
        id: VendorId,
        /// Paid FingerprintJS build (only meaningful for FingerprintJs).
        commercial: bool,
    },
    /// A long-tail generic fingerprinter, identified by cluster id.
    Generic {
        /// Cluster id — same id ⇒ same script ⇒ same canvas everywhere.
        cluster: u32,
        /// Blocklist affiliation of the cluster's serving host.
        category: GenericCategory,
    },
    /// A statically-evasive fingerprinter from the seeded evasion corpus
    /// ([`crate::evasion`]): runtime behavior identical to a generic
    /// fingerprinter, source written to defeat syntactic analysis.
    Evasive {
        /// Which evasion variant (same variant ⇒ same script everywhere).
        variant: u32,
    },
}

/// One planned deployment on one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The script.
    pub kind: ScriptKind,
    /// How it reaches the page.
    pub serving: Serving,
}

/// A fully planned site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SitePlan {
    /// Population seed (rank, host, cohort, flags).
    pub seed: SiteSeed,
    /// Fingerprinting deployments (empty for non-fingerprinting sites).
    pub deployments: Vec<Deployment>,
    /// Benign canvas scripts on the page.
    pub benign: Vec<canvassing_vendors::benign::BenignKind>,
    /// Consent banner present.
    pub consent_banner: bool,
    /// Bot-detection gate present (crawler passes it; kept for realism
    /// and fault-injection tests).
    pub bot_gate: bool,
}

/// Metadata about one generic cluster (shared across cohorts).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GenericCluster {
    /// Cluster id (also keys the script source and serving host).
    pub id: u32,
    /// Blocklist affiliation.
    pub category: GenericCategory,
    /// Whether the cluster only ever appears on tail sites.
    pub tail_only: bool,
}

/// The full deployment plan for both cohorts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebPlan {
    /// All sites, popular cohort first.
    pub sites: Vec<SitePlan>,
    /// Generic cluster metadata.
    pub clusters: Vec<GenericCluster>,
}

fn sample_serving<R: Rng>(mix: &ServingMix, default: Serving, rng: &mut R) -> Serving {
    let entries = [
        (Serving::ThirdParty, mix.third_party),
        (Serving::Bundled, mix.bundled),
        (Serving::Subdomain, mix.subdomain),
        (Serving::CnameCloak, mix.cname),
        (Serving::Cdn, mix.cdn),
    ];
    let total: f64 = entries.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return default;
    }
    let mut roll = rng.gen_range(0.0..total);
    for (serving, w) in entries {
        if roll < w {
            return serving;
        }
        roll -= w;
    }
    default
}

/// Head-heavy cluster sizes: `n_clusters` entries summing to `n_sites`
/// (each ≥ 1), decaying geometrically so Figure 1's tail of bars emerges.
pub fn cluster_sizes(n_clusters: usize, n_sites: usize) -> Vec<usize> {
    assert!(
        n_sites >= n_clusters,
        "{n_sites} sites < {n_clusters} clusters"
    );
    let mut sizes = vec![1usize; n_clusters];
    let mut extra = n_sites - n_clusters;
    // Geometric allocation over the head.
    let r: f64 = 0.80;
    let mut share = (extra as f64) * (1.0 - r);
    let mut i = 0;
    while extra > 0 && i < n_clusters {
        let add = (share.round() as usize).clamp(1, extra);
        sizes[i] += add;
        extra -= add;
        share *= r;
        i += 1;
    }
    // Any remainder lands on the head.
    sizes[0] += extra;
    sizes
}

/// Plans one cohort. `cluster_pool` carries the shared generic clusters
/// (created by the popular pass, reused and extended by the tail pass).
#[allow(clippy::too_many_arguments)]
fn plan_cohort<R: Rng>(
    config: &WebConfig,
    cohort: Cohort,
    seeds: Vec<SiteSeed>,
    clusters: &mut Vec<GenericCluster>,
    rng: &mut R,
) -> Vec<SitePlan> {
    let mut plans: Vec<SitePlan> = seeds
        .into_iter()
        .map(|seed| SitePlan {
            consent_banner: rng.gen_bool(config.consent_banner_rate()),
            bot_gate: rng.gen_bool(config.bot_gate_rate()),
            seed,
            deployments: Vec::new(),
            benign: Vec::new(),
        })
        .collect();

    let up: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.seed.down)
        .map(|(i, _)| i)
        .collect();

    // ----- pick the fingerprinting site set -----
    let fp_target = config.fingerprinting_sites(cohort);
    let storefronts: Vec<usize> = up
        .iter()
        .copied()
        .filter(|&i| plans[i].seed.shopify)
        .collect();
    let mut ru_sites: Vec<usize> = up
        .iter()
        .copied()
        .filter(|&i| plans[i].seed.host.ends_with(".ru"))
        .collect();
    ru_sites.shuffle(rng);
    let mailru_count = config.scaled(
        VENDOR_SITE_COUNTS
            .iter()
            .find(|(id, _, _)| *id == VendorId::MailRu)
            .map(|(_, p, t)| if cohort == Cohort::Popular { *p } else { *t })
            .unwrap_or(0),
    );
    let mailru_sites: Vec<usize> = ru_sites.iter().take(mailru_count).copied().collect();

    let mut fp_set: Vec<usize> = Vec::new();
    let mut in_fp = vec![false; plans.len()];
    for &i in storefronts.iter().chain(mailru_sites.iter()) {
        if !in_fp[i] {
            in_fp[i] = true;
            fp_set.push(i);
        }
    }
    let mut rest: Vec<usize> = up.iter().copied().filter(|&i| !in_fp[i]).collect();
    rest.shuffle(rng);
    for &i in rest.iter() {
        if fp_set.len() >= fp_target {
            break;
        }
        in_fp[i] = true;
        fp_set.push(i);
    }

    // ----- vendor assignments -----
    // Shopify: exactly the storefronts. mail.ru: the chosen .ru sites.
    for &i in &storefronts {
        let mix = config.vendor_serving(VendorId::Shopify, false, cohort);
        plans[i].deployments.push(Deployment {
            kind: ScriptKind::Vendor {
                id: VendorId::Shopify,
                commercial: false,
            },
            serving: sample_serving(&mix, Serving::ThirdParty, rng),
        });
    }
    for &i in &mailru_sites {
        let mix = config.vendor_serving(VendorId::MailRu, false, cohort);
        plans[i].deployments.push(Deployment {
            kind: ScriptKind::Vendor {
                id: VendorId::MailRu,
                commercial: false,
            },
            serving: sample_serving(&mix, Serving::ThirdParty, rng),
        });
    }

    // Other vendors: exact counts. The distinct attributed-site total is
    // capped at the paper's Table 1 totals (1,513 popular / 1,222 tail):
    // vendors prefer fresh sites until the cap, then overlap onto
    // already-attributed sites (sites "may use multiple fingerprinting
    // services").
    let attributed_target = config.scaled(if cohort == Cohort::Popular {
        1_513
    } else {
        1_222
    });
    let mut covered: Vec<usize> = fp_set
        .iter()
        .copied()
        .filter(|&i| !plans[i].deployments.is_empty())
        .collect();
    let mut uncovered: Vec<usize> = fp_set
        .iter()
        .copied()
        .filter(|&i| plans[i].deployments.is_empty())
        .collect();
    uncovered.shuffle(rng);
    uncovered.truncate(attributed_target.saturating_sub(covered.len()));

    let mut slots: Vec<(VendorId, bool)> = Vec::new();
    for (id, pop_count, tail_count) in VENDOR_SITE_COUNTS {
        if matches!(id, VendorId::MailRu | VendorId::Shopify) {
            continue;
        }
        let count = config.scaled(if cohort == Cohort::Popular {
            *pop_count
        } else {
            *tail_count
        });
        let commercial_quota = if *id == VendorId::FingerprintJs {
            config.scaled(if cohort == Cohort::Popular {
                FPJS_COMMERCIAL.0
            } else {
                FPJS_COMMERCIAL.1
            })
        } else {
            0
        };
        for k in 0..count {
            slots.push((*id, k < commercial_quota));
        }
    }
    slots.shuffle(rng);
    for (id, commercial) in slots {
        let site = match uncovered.pop() {
            Some(s) => {
                covered.push(s);
                s
            }
            None => match covered.choose(rng) {
                Some(&s) => s,
                None => break,
            },
        };
        // A site never deploys the same vendor twice.
        let duplicate = plans[site]
            .deployments
            .iter()
            .any(|d| matches!(d.kind, ScriptKind::Vendor { id: v, .. } if v == id));
        let site = if duplicate {
            match covered.choose(rng) {
                Some(&s) => s,
                None => site,
            }
        } else {
            site
        };
        let mix = config.vendor_serving(id, commercial, cohort);
        let default = if matches!(id, VendorId::Akamai | VendorId::Imperva) {
            Serving::FirstPartyPath
        } else {
            Serving::ThirdParty
        };
        plans[site].deployments.push(Deployment {
            kind: ScriptKind::Vendor { id, commercial },
            serving: sample_serving(&mix, default, rng),
        });
    }

    // ----- generic long-tail -----
    let generic_sites: Vec<usize> = fp_set
        .iter()
        .copied()
        .filter(|&i| plans[i].deployments.is_empty())
        .collect();

    // How many distinct generic clusters this cohort should exhibit:
    // unique-canvas target minus the vendor-contributed uniques.
    let imperva_here = config.scaled(
        VENDOR_SITE_COUNTS
            .iter()
            .find(|(id, _, _)| *id == VendorId::Imperva)
            .map(|(_, p, t)| if cohort == Cohort::Popular { *p } else { *t })
            .unwrap_or(0),
    );
    let vendor_uniques: usize = all_vendors()
        .iter()
        .map(|v| match v.id {
            VendorId::Imperva => imperva_here,
            VendorId::GeeTest if cohort == Cohort::Tail => 0,
            _ => v.canvas_count,
        })
        .sum();
    let unique_target = config.unique_canvas_target(cohort);
    let n_clusters = unique_target
        .saturating_sub(vendor_uniques)
        .max(1)
        .min(generic_sites.len().max(1));

    match cohort {
        Cohort::Popular => {
            // Create the shared cluster pool.
            let sizes = cluster_sizes(n_clusters, generic_sites.len().max(n_clusters));
            let weights = config.generic_category_weights();
            let mut site_iter = generic_sites.into_iter();
            for (idx, size) in sizes.into_iter().enumerate() {
                let category = {
                    let total: f64 = weights.iter().map(|(_, w)| w).sum();
                    let mut roll = rng.gen_range(0.0..total);
                    let mut chosen = GenericCategory::Unlisted;
                    for (cat, w) in weights {
                        if roll < w {
                            chosen = cat;
                            break;
                        }
                        roll -= w;
                    }
                    chosen
                };
                let cluster = GenericCluster {
                    id: idx as u32,
                    category,
                    tail_only: false,
                };
                clusters.push(cluster);
                for _ in 0..size {
                    let Some(site) = site_iter.next() else { break };
                    let mix = config.generic_serving(cohort);
                    plans[site].deployments.push(Deployment {
                        kind: ScriptKind::Generic {
                            cluster: cluster.id,
                            category,
                        },
                        serving: sample_serving(&mix, Serving::ThirdParty, rng),
                    });
                }
            }
        }
        Cohort::Tail => {
            // §4.2: 91.4% of fingerprinting tail sites share a canvas with
            // a popular site; the tail-only remainder clusters as one
            // 15-site group, one 3-site group, and singletons. The shared
            // pool is limited so the tail's unique-canvas count lands on
            // its target: shared-cluster budget = target − vendor uniques
            // − tail-only clusters.
            let tail_only_sites = config.scaled(134); // derived in DESIGN.md E3
            let tail_only_clusters =
                2 + tail_only_sites.saturating_sub(config.scaled(15) + config.scaled(3));
            let shared_budget = unique_target
                .saturating_sub(vendor_uniques + tail_only_clusters)
                .max(1);
            let shared_pool: Vec<GenericCluster> = clusters
                .iter()
                .copied()
                .filter(|c| !c.tail_only)
                .take(shared_budget)
                .collect();
            let n_tail_only = tail_only_sites.min(generic_sites.len());
            let mut generic_sites = generic_sites;
            generic_sites.shuffle(rng);
            let tail_only: Vec<usize> =
                generic_sites.split_off(generic_sites.len().saturating_sub(n_tail_only));

            // Shared assignments, weighted toward big popular clusters.
            for &site in &generic_sites {
                let cluster = weighted_cluster(&shared_pool, rng);
                let mix = config.generic_serving(cohort);
                plans[site].deployments.push(Deployment {
                    kind: ScriptKind::Generic {
                        cluster: cluster.id,
                        category: cluster.category,
                    },
                    serving: sample_serving(&mix, Serving::ThirdParty, rng),
                });
            }
            // Tail-only clusters: sizes [15, 3, 1, 1, ...] scaled.
            let mut remaining: Vec<usize> = tail_only;
            let mut group_sizes = vec![config.scaled(15), config.scaled(3)];
            while group_sizes.iter().sum::<usize>() < remaining.len() {
                group_sizes.push(1);
            }
            for size in group_sizes {
                if remaining.is_empty() {
                    break;
                }
                let id = clusters.len() as u32;
                let cluster = GenericCluster {
                    id,
                    category: GenericCategory::Unlisted,
                    tail_only: true,
                };
                clusters.push(cluster);
                for _ in 0..size {
                    let Some(site) = remaining.pop() else { break };
                    let mix = config.generic_serving(cohort);
                    plans[site].deployments.push(Deployment {
                        kind: ScriptKind::Generic {
                            cluster: id,
                            category: cluster.category,
                        },
                        serving: sample_serving(&mix, Serving::ThirdParty, rng),
                    });
                }
            }
        }
    }

    // ----- extra generic scripts (per-site canvas count distribution) ---
    // Extras land on *attributed* sites: large properties stack several
    // trackers, while long-tail generic-only sites typically embed a
    // single fingerprinting SDK. Tail extras draw from the same limited
    // pool as tail primaries so no new unique canvases appear.
    let head: Vec<GenericCluster> = match cohort {
        Cohort::Popular => clusters.iter().copied().filter(|c| !c.tail_only).collect(),
        Cohort::Tail => {
            let tail_only_sites = config.scaled(134);
            let tail_only_clusters =
                2 + tail_only_sites.saturating_sub(config.scaled(15) + config.scaled(3));
            let budget = unique_target
                .saturating_sub(vendor_uniques + tail_only_clusters)
                .max(1);
            clusters
                .iter()
                .copied()
                .filter(|c| !c.tail_only)
                .take(budget)
                .collect()
        }
    };
    if !head.is_empty() {
        let weights = config.extra_generic_weights();
        let fp_sites: Vec<usize> = fp_set
            .iter()
            .copied()
            .filter(|&i| {
                plans[i]
                    .deployments
                    .iter()
                    .any(|d| matches!(d.kind, ScriptKind::Vendor { .. }))
            })
            .collect();
        for &site in &fp_sites {
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            let mut roll = rng.gen_range(0.0..total);
            let mut extra = 0;
            for (count, w) in weights {
                if roll < *w {
                    extra = *count;
                    break;
                }
                roll -= w;
            }
            for _ in 0..extra {
                let cluster = weighted_cluster(&head, rng);
                let already = plans[site].deployments.iter().any(
                    |d| matches!(d.kind, ScriptKind::Generic { cluster: c, .. } if c == cluster.id),
                );
                if already {
                    continue;
                }
                let mix = config.generic_serving(cohort);
                plans[site].deployments.push(Deployment {
                    kind: ScriptKind::Generic {
                        cluster: cluster.id,
                        category: cluster.category,
                    },
                    serving: sample_serving(&mix, Serving::ThirdParty, rng),
                });
            }
        }
        // One canvas-heavy outlier site per cohort (paper: max 60
        // canvases on a single site).
        if cohort == Cohort::Popular && config.scale >= 0.9 {
            if let Some(&site) = fp_set.first() {
                for cluster in head.iter().take(55) {
                    let already = plans[site].deployments.iter().any(|d| {
                        matches!(d.kind, ScriptKind::Generic { cluster: c, .. } if c == cluster.id)
                    });
                    if !already {
                        plans[site].deployments.push(Deployment {
                            kind: ScriptKind::Generic {
                                cluster: cluster.id,
                                category: cluster.category,
                            },
                            serving: Serving::ThirdParty,
                        });
                    }
                }
            }
        }
    }

    // ----- seeded evasion corpus -----
    // Statically-evasive variants ride along on sites that already
    // fingerprint (so the cohort's fingerprinting-site count is
    // untouched), bundled into first-party code the way real evasive
    // deployments hide. Assignment is deterministic in the (already
    // shuffled) fingerprinting-site order.
    let evasive_target = config.scaled(if cohort == Cohort::Popular { 40 } else { 30 });
    if !fp_set.is_empty() {
        for i in 0..evasive_target {
            let site = fp_set[i % fp_set.len()];
            plans[site].deployments.push(Deployment {
                kind: ScriptKind::Evasive {
                    variant: i as u32 % crate::evasion::EVASION_VARIANT_COUNT,
                },
                serving: Serving::Bundled,
            });
        }
    }

    // ----- benign canvas users (Appendix A.2) -----
    use canvassing_vendors::benign::BenignKind;
    // Fully-excluded sites: benign canvases, no fingerprinting
    // (paper: 155 popular / 138 tail).
    let benign_only_target = config.scaled(if cohort == Cohort::Popular { 155 } else { 138 });
    let mut non_fp: Vec<usize> = up.iter().copied().filter(|&i| !in_fp[i]).collect();
    non_fp.shuffle(rng);
    for &site in non_fp.iter().take(benign_only_target) {
        let kind = match rng.gen_range(0..10) {
            0..=4 => BenignKind::WebpProbe,
            5..=7 => BenignKind::SmallBadge,
            8 => BenignKind::EditorPreview,
            _ => BenignKind::AnimationFrame,
        };
        plans[site].benign.push(kind);
        if rng.gen_bool(0.2) {
            plans[site].benign.push(BenignKind::EmojiProbe);
        }
    }
    // Benign usage on fingerprinting sites too (WebP probes reach 306
    // popular sites overall).
    for &site in &fp_set {
        if rng.gen_bool(0.105) {
            plans[site].benign.push(BenignKind::WebpProbe);
        }
        if rng.gen_bool(0.065) {
            plans[site].benign.push(BenignKind::SmallBadge);
        }
    }

    plans
}

fn weighted_cluster<R: Rng>(pool: &[GenericCluster], rng: &mut R) -> GenericCluster {
    // Weight decays with cluster id, mirroring the head-heavy size plan so
    // reuse concentrates on already-popular canvases.
    let weights: Vec<f64> = pool
        .iter()
        .map(|c| 1.0 / (5.0 + c.id as f64).powf(0.9))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    let mut chosen = None;
    for (c, w) in pool.iter().zip(weights) {
        chosen = Some(*c);
        if roll < w {
            return *c;
        }
        roll -= w;
    }
    // Floating-point shortfall walked the roll off the end: keep the
    // final candidate. `None` only if the pool itself was empty.
    chosen.unwrap_or(GenericCluster {
        id: 0,
        category: GenericCategory::Unlisted,
        tail_only: false,
    })
}

/// Plans the entire synthetic web (both cohorts).
pub fn plan_web<R: Rng>(
    config: &WebConfig,
    popular: Vec<SiteSeed>,
    tail: Vec<SiteSeed>,
    rng: &mut R,
) -> WebPlan {
    let mut clusters = Vec::new();
    let mut sites = plan_cohort(config, Cohort::Popular, popular, &mut clusters, rng);
    sites.extend(plan_cohort(config, Cohort::Tail, tail, &mut clusters, rng));
    WebPlan { sites, clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::generate_cohort;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_plan() -> WebPlan {
        let config = WebConfig::test_scale(11);
        let mut rng = StdRng::seed_from_u64(11);
        let popular = generate_cohort(&config, Cohort::Popular, &mut rng);
        let tail = generate_cohort(&config, Cohort::Tail, &mut rng);
        plan_web(&config, popular, tail, &mut rng)
    }

    fn vendor_sites(plan: &WebPlan, cohort: Cohort, id: VendorId) -> usize {
        plan.sites
            .iter()
            .filter(|p| p.seed.cohort == cohort)
            .filter(|p| {
                p.deployments
                    .iter()
                    .any(|d| matches!(d.kind, ScriptKind::Vendor { id: v, .. } if v == id))
            })
            .count()
    }

    #[test]
    fn fingerprinting_site_counts_hit_targets() {
        let config = WebConfig::test_scale(11);
        let plan = test_plan();
        for cohort in [Cohort::Popular, Cohort::Tail] {
            let fp = plan
                .sites
                .iter()
                .filter(|p| p.seed.cohort == cohort && !p.deployments.is_empty())
                .count();
            assert_eq!(fp, config.fingerprinting_sites(cohort));
        }
    }

    #[test]
    fn vendor_counts_match_scaled_table_1() {
        // Distinct-site counts may fall slightly below the slot counts
        // when the duplicate-vendor fallback reassigns a slot to a site
        // that already runs the vendor; allow a small deficit.
        let config = WebConfig::test_scale(11);
        let plan = test_plan();
        for (id, pop, tail) in VENDOR_SITE_COUNTS {
            for (cohort, count) in [(Cohort::Popular, *pop), (Cohort::Tail, *tail)] {
                let want = config.scaled(count);
                let got = vendor_sites(&plan, cohort, *id);
                assert!(
                    got <= want && got + (want / 10).max(2) >= want,
                    "{id:?} {cohort:?}: got {got}, want ~{want}"
                );
                if want > 0 {
                    assert!(got > 0, "{id:?} {cohort:?} vanished");
                }
            }
        }
    }

    #[test]
    fn mailru_only_on_ru_sites() {
        let plan = test_plan();
        for p in &plan.sites {
            let has_mailru = p.deployments.iter().any(|d| {
                matches!(
                    d.kind,
                    ScriptKind::Vendor {
                        id: VendorId::MailRu,
                        ..
                    }
                )
            });
            if has_mailru {
                assert!(p.seed.host.ends_with(".ru"), "{}", p.seed.host);
            }
        }
    }

    #[test]
    fn shopify_exactly_on_storefronts() {
        let plan = test_plan();
        for p in &plan.sites {
            let has_shopify = p.deployments.iter().any(|d| {
                matches!(
                    d.kind,
                    ScriptKind::Vendor {
                        id: VendorId::Shopify,
                        ..
                    }
                )
            });
            assert_eq!(has_shopify, p.seed.shopify, "{}", p.seed.host);
        }
    }

    #[test]
    fn down_sites_have_no_deployments() {
        let plan = test_plan();
        for p in &plan.sites {
            if p.seed.down {
                assert!(p.deployments.is_empty());
            }
        }
    }

    #[test]
    fn cluster_sizes_sum_and_floor() {
        let sizes = cluster_sizes(10, 55);
        assert_eq!(sizes.iter().sum::<usize>(), 55);
        assert!(sizes.iter().all(|&s| s >= 1));
        assert!(sizes[0] >= sizes[9], "head-heavy");
        // Degenerate case: every cluster a singleton.
        assert_eq!(cluster_sizes(5, 5), vec![1; 5]);
    }

    #[test]
    fn tail_only_clusters_do_not_appear_on_popular() {
        let plan = test_plan();
        let tail_only: std::collections::BTreeSet<u32> = plan
            .clusters
            .iter()
            .filter(|c| c.tail_only)
            .map(|c| c.id)
            .collect();
        for p in plan
            .sites
            .iter()
            .filter(|p| p.seed.cohort == Cohort::Popular)
        {
            for d in &p.deployments {
                if let ScriptKind::Generic { cluster, .. } = d.kind {
                    assert!(!tail_only.contains(&cluster));
                }
            }
        }
        assert!(!tail_only.is_empty());
    }

    #[test]
    fn akamai_and_imperva_serve_first_party() {
        let plan = test_plan();
        for p in &plan.sites {
            for d in &p.deployments {
                if matches!(
                    d.kind,
                    ScriptKind::Vendor {
                        id: VendorId::Akamai,
                        ..
                    } | ScriptKind::Vendor {
                        id: VendorId::Imperva,
                        ..
                    }
                ) {
                    assert_eq!(d.serving, Serving::FirstPartyPath);
                }
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let a = test_plan();
        let b = test_plan();
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.deployments, y.deployments, "{}", x.seed.host);
        }
    }

    #[test]
    fn evasive_deployments_ride_bundled_on_fingerprinting_sites() {
        let config = WebConfig::test_scale(11);
        let plan = test_plan();
        let (mut popular_n, mut tail_n) = (0usize, 0usize);
        for p in &plan.sites {
            for d in &p.deployments {
                let ScriptKind::Evasive { variant } = d.kind else {
                    continue;
                };
                assert!(variant < crate::evasion::EVASION_VARIANT_COUNT);
                // Bundled into first-party code, like real evasive
                // deployments hide.
                assert_eq!(d.serving, Serving::Bundled, "{}", p.seed.host);
                // Rides along: the site fingerprints even without it, so
                // cohort fingerprinting-site counts stay on target.
                assert!(
                    p.deployments
                        .iter()
                        .any(|o| !matches!(o.kind, ScriptKind::Evasive { .. })),
                    "{} is evasive-only",
                    p.seed.host
                );
                match p.seed.cohort {
                    Cohort::Popular => popular_n += 1,
                    Cohort::Tail => tail_n += 1,
                }
            }
        }
        assert_eq!(popular_n, config.scaled(40));
        assert_eq!(tail_n, config.scaled(30));
    }

    #[test]
    fn some_sites_have_benign_only_canvas_use() {
        let config = WebConfig::test_scale(11);
        let plan = test_plan();
        let benign_only = plan
            .sites
            .iter()
            .filter(|p| p.deployments.is_empty() && !p.benign.is_empty())
            .filter(|p| p.seed.cohort == Cohort::Popular)
            .count();
        assert_eq!(benign_only, config.scaled(155));
    }
}
