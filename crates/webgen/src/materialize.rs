//! Materialization: turn a [`crate::deployment::WebPlan`] into a
//! populated [`Network`] — DNS records, hosted pages, hosted scripts, and
//! the serving-strategy plumbing (first-party paths, bundling, subdomain
//! routing, CNAME cloaking, CDN fronting).

use canvassing_net::{
    Fault, Network, PageResource, Resource, ScriptRef, ScriptResource, Url, POPULAR_CDNS,
};
use canvassing_vendors::{scripts, vendor, VendorId};

use crate::config::{GenericCategory, Serving};
use crate::deployment::{Deployment, ScriptKind, SitePlan, WebPlan};

/// Stable small hash used for deterministic name generation.
fn hash(data: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serving host for a generic cluster, shaped by its blocklist category so
/// generated blocklists can target it.
pub fn generic_host(cluster: u32, category: GenericCategory) -> String {
    match category {
        GenericCategory::Ad => format!("ads{cluster}-delivery.com"),
        GenericCategory::Tracker => format!("metrics{cluster}-analytics.com"),
        GenericCategory::AllLists => format!("track{cluster}-pixel.net"),
        GenericCategory::Unlisted => format!("sdk{cluster}-web.io"),
    }
}

/// Third-party path + file for a vendor script.
fn vendor_path(id: VendorId, commercial: bool) -> &'static str {
    match id {
        VendorId::Akamai => "/akam/13/sensor.js", // only used for cloak targets
        VendorId::FingerprintJs => {
            if commercial {
                "/v3/agent.js"
            } else {
                "/v4/fp.min.js"
            }
        }
        VendorId::MailRu => "/counter/top.js",
        VendorId::FingerprintJsLegacy => "/npm/fingerprintjs2/fp2.min.js",
        VendorId::Imperva => "/init.js",
        VendorId::AwsWaf => "/challenge.js",
        VendorId::InsurAds => "/attention.js",
        VendorId::Signifyd => "/device.js",
        VendorId::PerimeterX => "/PXa1b2c3/main.min.js",
        VendorId::SiftScience => "/s.js",
        VendorId::Shopify => "/perf/shopify-perf-kit.js",
        VendorId::Adscore => "/verify.js",
        VendorId::GeeTest => "/static/js/gt.js",
    }
}

/// Canonical third-party host for a script kind.
fn canonical_host(kind: &ScriptKind) -> String {
    match kind {
        ScriptKind::Vendor { id, commercial } => match id {
            // OSS FingerprintJS loads from the project's own CDN when not
            // bundled; the paid build uses fpnpmcdn.net.
            VendorId::FingerprintJs if !commercial => "openfpcdn.io".to_string(),
            VendorId::FingerprintJsLegacy => "fp2-archive.net".to_string(),
            _ => vendor(*id)
                .serving_host
                .unwrap_or("selfhosted.invalid")
                .to_string(),
        },
        ScriptKind::Generic { cluster, category } => generic_host(*cluster, *category),
        // Evasive scripts only ever ship bundled; the host below exists
        // solely so URL derivation stays total.
        ScriptKind::Evasive { variant } => format!("ev{variant}-bundle.invalid"),
    }
}

/// The script source text for a deployment on `site_host`.
pub fn script_source_for(kind: &ScriptKind, site_host: &str) -> String {
    match kind {
        ScriptKind::Vendor { id, commercial } => {
            scripts::source(*id, &scripts::site_token(site_host), *commercial)
        }
        ScriptKind::Generic { cluster, .. } => scripts::generic_fingerprinter(*cluster as u64),
        ScriptKind::Evasive { variant } => crate::evasion::evasive_script(*variant),
    }
}

/// Provenance label (ground truth for tests and debugging only — the
/// measurement pipeline never reads labels).
pub fn label_for(kind: &ScriptKind) -> String {
    match kind {
        ScriptKind::Vendor { id, commercial } => {
            if *commercial {
                format!("vendor:{id:?}:commercial")
            } else {
                format!("vendor:{id:?}")
            }
        }
        ScriptKind::Generic { cluster, .. } => format!("generic:{cluster}"),
        ScriptKind::Evasive { variant } => crate::evasion::evasion_label(*variant),
    }
}

/// Computes the script URL a page references for a deployment, without
/// touching the network (pure function; used by tests and the
/// materializer).
pub fn script_url_for(site_host: &str, deployment: &Deployment) -> Option<Url> {
    let kind = &deployment.kind;
    match deployment.serving {
        Serving::Bundled => None,
        Serving::ThirdParty => {
            let host = canonical_host(kind);
            Some(Url::https(&host, &vendor_or_generic_path(kind)))
        }
        Serving::FirstPartyPath => match kind {
            ScriptKind::Vendor {
                id: VendorId::Akamai,
                ..
            } => Some(Url::https(
                site_host,
                &format!("/akam/13/{:x}.js", hash(site_host) & 0xffff_ffff),
            )),
            ScriptKind::Vendor {
                id: VendorId::Imperva,
                ..
            } => Some(Url::https(
                site_host,
                &format!("/{}/init.js", scripts::site_token(site_host)),
            )),
            _ => Some(Url::https(
                site_host,
                &format!("/vendor/{}.js", hash(&label_for(kind)) & 0xffff),
            )),
        },
        Serving::Subdomain => Some(Url::https(
            &format!("fp.{site_host}"),
            &format!("/sdk-{:x}.js", hash(&label_for(kind)) & 0xffff),
        )),
        Serving::CnameCloak => Some(Url::https(
            &format!("metrics.{site_host}"),
            &format!("/collect-{:x}.js", hash(&label_for(kind)) & 0xffff),
        )),
        Serving::Cdn => {
            let cdn = POPULAR_CDNS[(hash(&label_for(kind)) % POPULAR_CDNS.len() as u64) as usize];
            // Use the registrable CDN domain with a per-package subpath.
            Some(Url::https(
                cdn,
                &format!("/pkg/{:x}/fp.js", hash(&label_for(kind)) & 0xfffff),
            ))
        }
    }
}

fn vendor_or_generic_path(kind: &ScriptKind) -> String {
    match kind {
        ScriptKind::Vendor { id, commercial } => vendor_path(*id, *commercial).to_string(),
        ScriptKind::Generic { .. } => "/fp.js".to_string(),
        ScriptKind::Evasive { .. } => "/ev.js".to_string(),
    }
}

/// Materializes the plan into a network. Returns the network; the plan
/// itself (site list) remains the crawl frontier.
pub fn materialize(plan: &WebPlan) -> Network {
    let mut network = Network::new();
    for site in &plan.sites {
        materialize_site(site, &mut network);
    }
    host_demo_pages(&mut network);
    network
}

/// Hosts the public demo pages of vendors that have one (Table 3's
/// "Demo" column): a page on the vendor's demo host that loads the
/// vendor's script third-party. The attribution engine crawls these to
/// collect ground-truth canvases.
fn host_demo_pages(network: &mut Network) {
    for v in canvassing_vendors::all_vendors() {
        let Some(demo_host) = v.demo_host else {
            continue;
        };
        let kind = ScriptKind::Vendor {
            id: v.id,
            commercial: false,
        };
        let script_url = Url::https(&canonical_host(&kind), &vendor_or_generic_path(&kind));
        // The script may already be hosted by a customer deployment;
        // hosting is idempotent for identical content.
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: script_source_for(&kind, demo_host),
                label: label_for(&kind),
            }),
        );
        network.host(
            &Url::https(demo_host, "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(script_url)],
                consent_banner: false,
                bot_check: false,
            }),
        );
    }
}

fn materialize_site(site: &SitePlan, network: &mut Network) {
    let host = &site.seed.host;
    let page_url = Url::https(host, "/");
    let mut refs: Vec<ScriptRef> = Vec::new();

    for deployment in &site.deployments {
        let source = script_source_for(&deployment.kind, host);
        let label = label_for(&deployment.kind);
        match script_url_for(host, deployment) {
            None => refs.push(ScriptRef::Inline {
                source,
                label: label.clone(),
            }),
            Some(url) => {
                match deployment.serving {
                    Serving::CnameCloak => {
                        // Content lives on the vendor's canonical host;
                        // the site's subdomain aliases to it.
                        let canonical = canonical_host(&deployment.kind);
                        let canonical_url = Url::https(&canonical, &url.path);
                        network.host(
                            &canonical_url,
                            Resource::Script(ScriptResource {
                                source,
                                label: label.clone(),
                            }),
                        );
                        network.dns.insert_cname(&url.host, &canonical);
                    }
                    _ => {
                        network.host(
                            &url,
                            Resource::Script(ScriptResource {
                                source,
                                label: label.clone(),
                            }),
                        );
                    }
                }
                refs.push(ScriptRef::External(url));
            }
        }
    }

    // Benign scripts are served from the site's own assets path so their
    // script URLs are distinct from any bundled fingerprinting code.
    for (i, kind) in site.benign.iter().enumerate() {
        let url = Url::https(
            host,
            &format!("/assets/{}-{i}.js", kind.label().replace(':', "-")),
        );
        network.host(
            &url,
            Resource::Script(ScriptResource {
                source: canvassing_vendors::benign::source(*kind, hash(host) ^ i as u64),
                label: kind.label().to_string(),
            }),
        );
        refs.push(ScriptRef::External(url));
    }

    network.host(
        &page_url,
        Resource::Page(PageResource {
            scripts: refs,
            consent_banner: site.consent_banner,
            bot_check: site.bot_gate,
        }),
    );
    if site.seed.down {
        // Down sites draw deterministically from the *permanent* fault
        // inventory so the §3.1 success calibration holds regardless of
        // the harness retry policy (transient kinds would heal under
        // retries and shift the counts). A latency spike past the default
        // 30 s visit deadline counts as down for a deadline-enforcing
        // crawler, which the paper's is.
        let h = hash(host);
        let fault = match h % 4 {
            0 => Fault::Unreachable,
            1 => Fault::DnsTimeout,
            2 => Fault::LatencySpike {
                extra_ms: 45_000 + (h >> 8) % 15_000,
            },
            _ => Fault::TruncateBody,
        };
        network.faults.inject(host, fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Cohort, WebConfig};
    use crate::deployment::plan_web;
    use crate::population::generate_cohort;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (WebPlan, Network) {
        let config = WebConfig::test_scale(3);
        let mut rng = StdRng::seed_from_u64(3);
        let popular = generate_cohort(&config, Cohort::Popular, &mut rng);
        let tail = generate_cohort(&config, Cohort::Tail, &mut rng);
        let plan = plan_web(&config, popular, tail, &mut rng);
        let network = materialize(&plan);
        (plan, network)
    }

    #[test]
    fn every_site_page_is_hosted() {
        let (plan, network) = build();
        for site in &plan.sites {
            let url = Url::https(&site.seed.host, "/");
            if site.seed.down {
                let fault = network
                    .faults
                    .fault_for(&site.seed.host)
                    .unwrap_or_else(|| panic!("{} should carry a fault", site.seed.host));
                match fault {
                    // A spiked host still serves at the network layer;
                    // it fails at the browser layer via the deadline.
                    Fault::LatencySpike { extra_ms } => {
                        assert!(extra_ms > 30_000, "spike must exceed the default deadline");
                        assert!(network.fetch(&url).is_ok());
                    }
                    _ => assert!(
                        network.fetch(&url).is_err(),
                        "{} should be down",
                        site.seed.host
                    ),
                }
            } else {
                let resp = network.fetch(&url).expect("page fetch");
                assert!(matches!(resp.resource, Resource::Page(_)));
            }
        }
    }

    #[test]
    fn external_scripts_resolve() {
        let (plan, network) = build();
        let mut checked = 0;
        for site in plan.sites.iter().filter(|s| !s.seed.down) {
            let page = network.fetch(&Url::https(&site.seed.host, "/")).unwrap();
            let Resource::Page(page) = page.resource else {
                panic!()
            };
            for r in &page.scripts {
                if let ScriptRef::External(url) = r {
                    let resp = network
                        .fetch(url)
                        .unwrap_or_else(|e| panic!("script {url} failed: {e}"));
                    assert!(matches!(resp.resource, Resource::Script(_)));
                    checked += 1;
                }
            }
        }
        assert!(
            checked > 50,
            "expected plenty of external scripts, got {checked}"
        );
    }

    #[test]
    fn cname_cloaks_are_wired() {
        let (plan, network) = build();
        let mut found = 0;
        for site in &plan.sites {
            for d in &site.deployments {
                if d.serving == Serving::CnameCloak {
                    let url = script_url_for(&site.seed.host, d).unwrap();
                    let resp = network.fetch(&url).expect("cloaked fetch");
                    assert!(resp.resolution.is_cloaked(), "{url}");
                    found += 1;
                }
            }
        }
        assert!(found > 0, "plan should include some CNAME cloaking");
    }

    #[test]
    fn imperva_urls_have_wordlike_first_segment() {
        let (plan, _) = build();
        for site in &plan.sites {
            for d in &site.deployments {
                if matches!(
                    d.kind,
                    ScriptKind::Vendor {
                        id: VendorId::Imperva,
                        ..
                    }
                ) {
                    let url = script_url_for(&site.seed.host, d).unwrap();
                    let seg = url.path.trim_start_matches('/').split('/').next().unwrap();
                    assert!(seg.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
                    assert_eq!(url.host, site.seed.host, "Imperva serves first-party");
                }
            }
        }
    }

    #[test]
    fn bundled_deployments_have_no_url() {
        let (plan, _) = build();
        let mut bundled = 0;
        for site in &plan.sites {
            for d in &site.deployments {
                if d.serving == Serving::Bundled {
                    assert!(script_url_for(&site.seed.host, d).is_none());
                    bundled += 1;
                }
            }
        }
        assert!(bundled > 0);
    }

    #[test]
    fn cdn_urls_use_appendix_a5_domains() {
        let (plan, _) = build();
        for site in &plan.sites {
            for d in &site.deployments {
                if d.serving == Serving::Cdn {
                    let url = script_url_for(&site.seed.host, d).unwrap();
                    assert!(canvassing_net::is_popular_cdn(&url.host), "{url}");
                }
            }
        }
    }

    #[test]
    fn same_generic_cluster_same_third_party_url() {
        let d = Deployment {
            kind: ScriptKind::Generic {
                cluster: 5,
                category: GenericCategory::Ad,
            },
            serving: Serving::ThirdParty,
        };
        let a = script_url_for("a.com", &d).unwrap();
        let b = script_url_for("b.org", &d).unwrap();
        assert_eq!(a, b, "third-party generic URL is site-independent");
    }
}
