//! A domain-indexed filter list for high-throughput matching.
//!
//! [`FilterList::evaluate`](crate::list::FilterList::evaluate) scans every
//! rule per request — fine for the study's one-shot analyses, but a real
//! extension evaluates thousands of requests against tens of thousands of
//! rules. [`IndexedFilterList`] buckets `||domain`-anchored rules by their
//! leading registrable-domain label so a request only tests the rules
//! whose anchor can possibly match its host, falling back to a linear scan
//! for unanchored rules. The ablation bench
//! (`ablations/blocklist_index`) measures the speedup; results are
//! identical by construction (and property-tested).

use std::collections::BTreeMap;

use crate::list::{FilterList, Verdict};
use crate::matcher::{rule_matches, RequestContext};
use crate::rule::{Anchor, FilterRule, PatternToken};

/// A [`FilterList`] compiled into a host-indexed form. Matching results
/// are identical to the source list's.
#[derive(Debug, Clone)]
pub struct IndexedFilterList {
    /// `||domain`-anchored blocking rules bucketed by their first anchor
    /// label (e.g. `tracker` for `||tracker.net^`).
    anchored: BTreeMap<String, Vec<FilterRule>>,
    /// Blocking rules that cannot be host-bucketed (plain substrings,
    /// `|`-anchored, wildcard-leading).
    unanchored: Vec<FilterRule>,
    /// Exception rules (scanned only when a block rule matched; exception
    /// hit rates are too low to justify their own index here).
    exceptions: Vec<FilterRule>,
}

/// Extracts the bucket key of a domain-anchored rule: the first dot-free
/// label of its leading literal (lowercased by the parser already).
fn anchor_key(rule: &FilterRule) -> Option<String> {
    if rule.anchor != Anchor::Domain {
        return None;
    }
    match rule.tokens.first() {
        Some(PatternToken::Literal(lit)) => {
            let label: String = lit
                .chars()
                .take_while(|c| *c != '.' && *c != '/' && *c != '^')
                .collect();
            if label.is_empty() {
                None
            } else {
                Some(label)
            }
        }
        _ => None,
    }
}

impl IndexedFilterList {
    /// Compiles a parsed list into indexed form.
    pub fn build(list: &FilterList) -> IndexedFilterList {
        let mut anchored: BTreeMap<String, Vec<FilterRule>> = BTreeMap::new();
        let mut unanchored = Vec::new();
        for rule in &list.rules {
            match anchor_key(rule) {
                Some(key) => anchored.entry(key).or_default().push(rule.clone()),
                None => unanchored.push(rule.clone()),
            }
        }
        IndexedFilterList {
            anchored,
            unanchored,
            exceptions: list.exceptions.clone(),
        }
    }

    /// Number of indexed buckets (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.anchored.len()
    }

    /// Evaluates a request with the same semantics as
    /// [`FilterList::evaluate`].
    pub fn evaluate(&self, ctx: &RequestContext) -> Verdict {
        // Candidate buckets: every label of the request host can be the
        // start of a `||` match.
        let mut hit: Option<&FilterRule> = None;
        'outer: for label in ctx.url.host.split('.') {
            if let Some(bucket) = self.anchored.get(label) {
                for rule in bucket {
                    if rule_matches(rule, ctx) {
                        hit = Some(rule);
                        break 'outer;
                    }
                }
            }
        }
        if hit.is_none() {
            hit = self.unanchored.iter().find(|r| rule_matches(r, ctx));
        }
        let Some(block) = hit else {
            return Verdict::Allow;
        };
        if let Some(exc) = self.exceptions.iter().find(|r| rule_matches(r, ctx)) {
            return Verdict::Excepted {
                block: block.raw.clone(),
                exception: exc.raw.clone(),
            };
        }
        Verdict::Block(block.raw.clone())
    }

    /// Whether the request would be blocked (convenience mirror of
    /// `evaluate(..).is_block()`).
    pub fn is_blocked(&self, ctx: &RequestContext) -> bool {
        self.evaluate(ctx).is_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::{ResourceType, Url};

    const LIST: &str = "\
||tracker.net^$script
||ads.example.com^
@@||tracker.net/allowed/*$script
/fp-collect.js
|https://exact.example/app.js|
||mgid.com^$document
";

    fn both(url: &str, page: &str) -> (Verdict, Verdict) {
        let list = FilterList::parse("t", LIST);
        let indexed = IndexedFilterList::build(&list);
        let ctx = RequestContext::new(Url::parse(url).unwrap(), ResourceType::Script, false, page);
        (list.evaluate(&ctx), indexed.evaluate(&ctx))
    }

    #[test]
    fn indexed_matches_linear_on_representative_urls() {
        for url in [
            "https://tracker.net/fp.js",
            "https://cdn.tracker.net/x.js",
            "https://tracker.net/allowed/fp.js",
            "https://ads.example.com/banner.js",
            "https://clean.example/app.js",
            "https://x.example/fp-collect.js",
            "https://exact.example/app.js",
            "https://mgid.com/fp.js",
        ] {
            let (linear, indexed) = both(url, "page.example");
            // Verdicts agree on block/allow/excepted classification.
            assert_eq!(
                std::mem::discriminant(&linear),
                std::mem::discriminant(&indexed),
                "{url}: {linear:?} vs {indexed:?}"
            );
        }
    }

    #[test]
    fn buckets_are_built_per_leading_label() {
        let list = FilterList::parse("t", LIST);
        let indexed = IndexedFilterList::build(&list);
        assert_eq!(indexed.bucket_count(), 3); // tracker, ads, mgid
    }

    #[test]
    fn unanchored_rules_still_match() {
        let (linear, indexed) = both("https://anywhere.example/fp-collect.js", "p.example");
        assert!(linear.is_block());
        assert!(indexed.is_block());
    }

    #[cfg(test)]
    mod props {
        // The proptest stub swallows test bodies; imports look unused.
        #![allow(unused_imports)]
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The index is an exact semantic mirror of the linear scan
            /// for arbitrary generated rule sets and request URLs.
            #[test]
            fn index_is_equivalent_to_linear(
                hosts in proptest::collection::vec("[a-z]{3,8}\\.(com|net|io)", 1..8),
                req_host in "[a-z]{3,8}\\.(com|net|io)",
                path in "(/[a-z0-9]{1,6}){0,2}",
            ) {
                let mut text = String::new();
                for (i, h) in hosts.iter().enumerate() {
                    match i % 3 {
                        0 => text.push_str(&format!("||{h}^$script\n")),
                        1 => text.push_str(&format!("||{h}^\n")),
                        _ => text.push_str(&format!("/{}/x.js\n", &h[..3])),
                    }
                }
                let list = FilterList::parse("t", &text);
                let indexed = IndexedFilterList::build(&list);
                let url = Url::parse(&format!("https://{req_host}{path}")).unwrap();
                let ctx = RequestContext::new(
                    url,
                    ResourceType::Script,
                    false,
                    "page.example",
                );
                prop_assert_eq!(
                    list.evaluate(&ctx).is_block(),
                    indexed.evaluate(&ctx).is_block()
                );
            }
        }
    }
}
