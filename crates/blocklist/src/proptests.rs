//! Property tests for the blocklist engine: totality of the parser,
//! semantic invariants of exceptions and type options.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use canvassing_net::{ResourceType, Url};

use crate::list::FilterList;
use crate::matcher::{rule_matches, RequestContext};
use crate::rule::parse_line;

fn url_strategy() -> impl Strategy<Value = Url> {
    ("[a-z]{1,8}", "[a-z]{2,4}", "(/[a-z0-9._-]{1,8}){0,3}").prop_map(|(host, tld, path)| {
        Url::parse(&format!("https://{host}.{tld}{path}")).expect("generated URL")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The rule parser never panics on arbitrary printable lines.
    #[test]
    fn parse_line_is_total(line in "[ -~]{0,120}") {
        let _ = parse_line(&line);
    }

    /// List parsing never panics on multi-line soup, and rule counts are
    /// bounded by line counts.
    #[test]
    fn list_parse_is_total(text in "([ -~]{0,60}\\n){0,20}") {
        let list = FilterList::parse("fuzz", &text);
        prop_assert!(list.len() + list.skipped <= text.lines().count() + 1);
    }

    /// Adding an exception can only reduce blocking, never increase it.
    #[test]
    fn exceptions_never_increase_blocking(url in url_strategy()) {
        let base = format!("||{}^$script\n", url.host);
        let with_exc = format!("{base}@@||{}^$script\n", url.host);
        let plain = FilterList::parse("plain", &base);
        let excepted = FilterList::parse("exc", &with_exc);
        let ctx = RequestContext::new(url, ResourceType::Script, false, "page.example");
        let plain_blocks = plain.evaluate(&ctx).is_block();
        let exc_blocks = excepted.evaluate(&ctx).is_block();
        prop_assert!(plain_blocks, "base rule must match its own host");
        prop_assert!(!exc_blocks, "exception must defuse the block");
    }

    /// A `$document` rule never matches a script request, for any host.
    #[test]
    fn document_rules_never_block_scripts(url in url_strategy()) {
        let rule = parse_line(&format!("||{}^$document", url.host)).unwrap();
        let ctx = RequestContext::new(url, ResourceType::Script, false, "page.example");
        prop_assert!(!rule_matches(&rule, &ctx));
    }

    /// A domain-anchored rule matches the host itself and any subdomain,
    /// and never matches unrelated hosts that merely contain the name.
    #[test]
    fn domain_anchor_semantics(host in "[a-z]{3,8}", tld in "[a-z]{2,3}") {
        let rule = parse_line(&format!("||{host}.{tld}^")).unwrap();
        let hit = |u: &str| {
            let ctx = RequestContext::new(
                Url::parse(u).unwrap(),
                ResourceType::Script,
                false,
                "page.example",
            );
            rule_matches(&rule, &ctx)
        };
        let exact = hit(&format!("https://{host}.{tld}/x.js"));
        let sub = hit(&format!("https://cdn.{host}.{tld}/x.js"));
        let concat = hit(&format!("https://{host}{tld}.example/x.js"));
        let infix = hit(&format!("https://{host}.{tld}.evil.example/x.js"));
        prop_assert!(exact);
        prop_assert!(sub);
        prop_assert!(!concat);
        prop_assert!(!infix);
    }

    /// Pattern matching is case-insensitive in both rule and URL.
    #[test]
    fn matching_is_case_insensitive(path in "[a-zA-Z]{2,10}") {
        let rule = parse_line(&format!("/{}/x.js", path.to_uppercase())).unwrap();
        let url = Url::parse(&format!("https://a.example/{}/x.js", path.to_lowercase())).unwrap();
        prop_assert!(crate::matcher::pattern_matches(&rule, &url));
    }
}
