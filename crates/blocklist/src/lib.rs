//! # canvassing-blocklist
//!
//! An Adblock-Plus filter-syntax engine (EasyList/EasyPrivacy semantics)
//! plus the domain-based Disconnect list, built for the paper's blocklist
//! analyses (§5.1, §5.2, Table 4, Appendix A.6).
//!
//! Two distinct questions are asked of these lists, and the crate exposes
//! both:
//!
//! 1. **Static coverage** ([`FilterList::covers_script_url`]) — would any
//!    rule match this script URL requested as a `script` resource,
//!    ignoring page context? This is the `adblockparser` methodology of
//!    §5.1 and produces Table 4.
//! 2. **Dynamic blocking** ([`FilterList::evaluate`] with a full
//!    [`RequestContext`]) — would an ad blocker actually block the request
//!    in the page where it happens, honoring `$document`-style type
//!    options, party constraints, `domain=` scoping, and `@@` exceptions?
//!    This drives the Table 2 re-crawls, and the gap between (1) and (2)
//!    is the paper's §5.2 finding.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod index;
pub mod list;
pub mod matcher;
#[cfg(test)]
mod proptests;
pub mod rule;

pub use index::IndexedFilterList;
pub use list::{DisconnectList, FilterList, Verdict};
pub use matcher::{pattern_matches, rule_matches, RequestContext};
pub use rule::{parse_line, Anchor, FilterRule, PartyOption, PatternToken, Skipped, TypeOption};
