//! Filter lists and the Disconnect domain list.

use canvassing_net::domain::registrable_domain;
use canvassing_net::{ResourceType, Url};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::matcher::{rule_matches, RequestContext};
use crate::rule::{parse_line, FilterRule};

/// Outcome of evaluating a request against a filter list.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No rule matched.
    Allow,
    /// A blocking rule matched (carries the rule text).
    Block(String),
    /// A blocking rule matched but an exception rule overrode it.
    Excepted {
        /// The blocking rule that would have fired.
        block: String,
        /// The `@@` rule that overrode it.
        exception: String,
    },
}

impl Verdict {
    /// Whether the request would actually be blocked.
    pub fn is_block(&self) -> bool {
        matches!(self, Verdict::Block(_))
    }
}

/// A parsed ABP-syntax filter list (EasyList / EasyPrivacy shaped).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterList {
    /// List name, for reporting (e.g. `"EasyList"`).
    pub name: String,
    /// Blocking rules.
    pub rules: Vec<FilterRule>,
    /// Exception rules.
    pub exceptions: Vec<FilterRule>,
    /// Number of input lines skipped during parsing.
    pub skipped: usize,
}

impl FilterList {
    /// Parses list text (one rule per line).
    pub fn parse(name: &str, text: &str) -> FilterList {
        let mut list = FilterList {
            name: name.to_string(),
            ..FilterList::default()
        };
        for line in text.lines() {
            match parse_line(line) {
                Ok(rule) => {
                    if rule.exception {
                        list.exceptions.push(rule);
                    } else {
                        list.rules.push(rule);
                    }
                }
                Err(_) => list.skipped += 1,
            }
        }
        list
    }

    /// Total number of rules (blocking + exception).
    pub fn len(&self) -> usize {
        self.rules.len() + self.exceptions.len()
    }

    /// Whether the list has no rules.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates a request: first blocking rules, then exceptions.
    pub fn evaluate(&self, ctx: &RequestContext) -> Verdict {
        let hit = self.rules.iter().find(|r| rule_matches(r, ctx));
        let Some(block) = hit else {
            return Verdict::Allow;
        };
        if let Some(exc) = self.exceptions.iter().find(|r| rule_matches(r, ctx)) {
            return Verdict::Excepted {
                block: block.raw.clone(),
                exception: exc.raw.clone(),
            };
        }
        Verdict::Block(block.raw.clone())
    }

    /// The adblockparser-style question the paper asks in §5.1: does any
    /// rule of this list *cover* the URL when requested as `resource_type`
    /// (ignoring the dynamic page context — pass `first_party=false` and
    /// an unrelated page domain, as `adblockparser` effectively does)?
    pub fn covers_script_url(&self, url: &Url, resource_type: ResourceType) -> bool {
        let ctx = RequestContext::new(url.clone(), resource_type, false, "adblockparser.invalid");
        matches!(self.evaluate(&ctx), Verdict::Block(_))
    }
}

/// The Disconnect tracker-protection list: purely domain-based (§5.1
/// "The Disconnect list is domain-based, so we simply check if the domain
/// of the script's URL is included in the list").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DisconnectList {
    domains: BTreeSet<String>,
}

impl DisconnectList {
    /// Builds a list from domain strings.
    pub fn from_domains<I: IntoIterator<Item = S>, S: Into<String>>(domains: I) -> Self {
        DisconnectList {
            domains: domains
                .into_iter()
                .map(|d| d.into().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Parses the simple one-domain-per-line format.
    pub fn parse(text: &str) -> Self {
        Self::from_domains(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string),
        )
    }

    /// Number of listed domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Adds one domain.
    pub fn insert(&mut self, domain: &str) {
        self.domains.insert(domain.to_ascii_lowercase());
    }

    /// Whether the URL's host (or its registrable domain) is listed.
    pub fn contains_url(&self, url: &Url) -> bool {
        if self.domains.contains(&url.host) {
            return true;
        }
        match registrable_domain(&url.host) {
            Some(rd) => self.domains.contains(rd),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
! EasyList-shaped sample
[Adblock Plus 2.0]
||tracker.net^$script
||mgid.com^$document
@@||tracker.net/allowed/*$script
/fp-collect.js
example.com##.banner
";

    #[test]
    fn parse_counts() {
        let list = FilterList::parse("test", SAMPLE);
        assert_eq!(list.rules.len(), 3);
        assert_eq!(list.exceptions.len(), 1);
        assert_eq!(list.skipped, 3); // comment, header, cosmetic
    }

    #[test]
    fn evaluate_block_and_exception() {
        let list = FilterList::parse("test", SAMPLE);
        let blocked = RequestContext::new(
            Url::parse("https://tracker.net/fp.js").unwrap(),
            ResourceType::Script,
            false,
            "site.com",
        );
        assert!(list.evaluate(&blocked).is_block());

        let excepted = RequestContext::new(
            Url::parse("https://tracker.net/allowed/fp.js").unwrap(),
            ResourceType::Script,
            false,
            "site.com",
        );
        match list.evaluate(&excepted) {
            Verdict::Excepted { .. } => {}
            other => panic!("expected exception, got {other:?}"),
        }
    }

    #[test]
    fn covers_script_url_ignores_document_rules() {
        let list = FilterList::parse("test", SAMPLE);
        let mgid = Url::parse("https://mgid.com/fp.js").unwrap();
        assert!(!list.covers_script_url(&mgid, ResourceType::Script));
        let tracker = Url::parse("https://tracker.net/fp.js").unwrap();
        assert!(list.covers_script_url(&tracker, ResourceType::Script));
    }

    #[test]
    fn disconnect_matches_by_domain() {
        let d = DisconnectList::from_domains(["tracker.net", "mail.ru"]);
        assert!(d.contains_url(&Url::parse("https://tracker.net/x.js").unwrap()));
        assert!(d.contains_url(&Url::parse("https://cdn.tracker.net/x.js").unwrap()));
        assert!(d.contains_url(&Url::parse("https://privacy-cs.mail.ru/fp.js").unwrap()));
        assert!(!d.contains_url(&Url::parse("https://example.com/x.js").unwrap()));
    }

    #[test]
    fn disconnect_parse_skips_comments() {
        let d = DisconnectList::parse("# trackers\ntracker.net\n\nads.example\n");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_list_allows_everything() {
        let list = FilterList::parse("empty", "");
        let ctx = RequestContext::new(
            Url::parse("https://anything.com/x.js").unwrap(),
            ResourceType::Script,
            false,
            "site.com",
        );
        assert_eq!(list.evaluate(&ctx), Verdict::Allow);
    }
}
