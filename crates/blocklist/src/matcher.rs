//! Rule-against-request matching.

use canvassing_net::{ResourceType, Url};

use crate::rule::{Anchor, FilterRule, PartyOption, PatternToken, TypeOption};

/// The request context a rule is evaluated against.
#[derive(Debug, Clone)]
pub struct RequestContext {
    /// The resource URL being requested.
    pub url: Url,
    /// What kind of resource it is.
    pub resource_type: ResourceType,
    /// Whether the request is first-party relative to the page
    /// (same registrable domain).
    pub first_party: bool,
    /// Registrable domain of the page making the request (for `domain=`).
    pub page_domain: String,
}

impl RequestContext {
    /// Convenience constructor used throughout the pipeline.
    pub fn new(
        url: Url,
        resource_type: ResourceType,
        first_party: bool,
        page_domain: &str,
    ) -> Self {
        RequestContext {
            url,
            resource_type,
            first_party,
            page_domain: page_domain.to_ascii_lowercase(),
        }
    }
}

fn type_matches(rule: &FilterRule, ty: ResourceType) -> bool {
    let as_opt = match ty {
        ResourceType::Script => TypeOption::Script,
        ResourceType::Image => TypeOption::Image,
        ResourceType::Document => TypeOption::Document,
        ResourceType::Other => TypeOption::Other,
    };
    if rule.exclude_types.contains(&as_opt) {
        return false;
    }
    if rule.include_types.is_empty() {
        return true;
    }
    rule.include_types.contains(&as_opt)
}

fn party_matches(rule: &FilterRule, first_party: bool) -> bool {
    match rule.party {
        PartyOption::Any => true,
        PartyOption::ThirdOnly => !first_party,
        PartyOption::FirstOnly => first_party,
    }
}

fn domain_matches(rule: &FilterRule, page_domain: &str) -> bool {
    let covered = |d: &String| page_domain == d.as_str() || page_domain.ends_with(&format!(".{d}"));
    if rule.exclude_domains.iter().any(covered) {
        return false;
    }
    if rule.include_domains.is_empty() {
        return true;
    }
    rule.include_domains.iter().any(covered)
}

/// Whether `c` is an ABP "separator" character for `^`.
fn is_separator(c: char) -> bool {
    !(c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '%')
}

/// Matches the compiled tokens against `text` starting exactly at
/// byte offset `pos`. Returns the end offset on success.
fn match_tokens_at(tokens: &[PatternToken], text: &str, pos: usize, end_anchor: bool) -> bool {
    match tokens.split_first() {
        None => !end_anchor || pos == text.len(),
        Some((PatternToken::Literal(lit), rest)) => {
            if text[pos..].starts_with(lit.as_str()) {
                match_tokens_at(rest, text, pos + lit.len(), end_anchor)
            } else {
                false
            }
        }
        Some((PatternToken::Separator, rest)) => {
            // `^` matches a separator char, or — consuming nothing — the
            // end of the URL.
            if pos == text.len() {
                return match_tokens_at(rest, text, pos, end_anchor);
            }
            match text[pos..].chars().next() {
                Some(c) if is_separator(c) => {
                    match_tokens_at(rest, text, pos + c.len_utf8(), end_anchor)
                }
                _ => false,
            }
        }
        Some((PatternToken::Wildcard, rest)) => {
            if rest.is_empty() {
                return true; // `*` can always extend to the end of the URL
            }
            let mut p = pos;
            loop {
                if match_tokens_at(rest, text, p, end_anchor) {
                    return true;
                }
                match text[p..].chars().next() {
                    Some(c) => p += c.len_utf8(),
                    None => return false,
                }
            }
        }
    }
}

/// Whether the rule's pattern (ignoring options) matches the URL.
pub fn pattern_matches(rule: &FilterRule, url: &Url) -> bool {
    let full = url.to_string().to_ascii_lowercase();
    match rule.anchor {
        Anchor::Start => match_tokens_at(&rule.tokens, &full, 0, rule.end_anchor),
        Anchor::Domain => {
            // `||` anchors at the start of the host or any label boundary
            // within it.
            let host_start = full.find("://").map(|i| i + 3).unwrap_or(0);
            let host_end = full[host_start..]
                .find(['/', '?', ':'])
                .map(|i| host_start + i)
                .unwrap_or(full.len());
            let mut starts = vec![host_start];
            for (i, c) in full[host_start..host_end].char_indices() {
                if c == '.' {
                    starts.push(host_start + i + 1);
                }
            }
            starts
                .into_iter()
                .any(|s| match_tokens_at(&rule.tokens, &full, s, rule.end_anchor))
        }
        Anchor::None => {
            if rule.tokens.is_empty() {
                return true;
            }
            let mut pos = 0;
            loop {
                if match_tokens_at(&rule.tokens, &full, pos, rule.end_anchor) {
                    return true;
                }
                match full[pos..].chars().next() {
                    Some(c) => pos += c.len_utf8(),
                    None => return false,
                }
            }
        }
    }
}

/// Full rule evaluation: pattern + type + party + domain options.
pub fn rule_matches(rule: &FilterRule, ctx: &RequestContext) -> bool {
    type_matches(rule, ctx.resource_type)
        && party_matches(rule, ctx.first_party)
        && domain_matches(rule, &ctx.page_domain)
        && pattern_matches(rule, &ctx.url)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::parse_line;

    fn ctx(url: &str, ty: ResourceType, first: bool, page: &str) -> RequestContext {
        RequestContext::new(Url::parse(url).unwrap(), ty, first, page)
    }

    fn rule(s: &str) -> FilterRule {
        parse_line(s).unwrap()
    }

    #[test]
    fn substring_rule_matches_anywhere() {
        let r = rule("/fingerprint.js");
        assert!(rule_matches(
            &r,
            &ctx(
                "https://cdn.x.com/lib/fingerprint.js",
                ResourceType::Script,
                false,
                "x.com"
            )
        ));
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://cdn.x.com/lib/fp.js",
                ResourceType::Script,
                false,
                "x.com"
            )
        ));
    }

    #[test]
    fn domain_anchor_matches_host_and_subdomains() {
        let r = rule("||tracker.net^");
        for u in [
            "https://tracker.net/a.js",
            "https://cdn.tracker.net/a.js",
            "http://tracker.net/",
        ] {
            assert!(
                rule_matches(&r, &ctx(u, ResourceType::Script, false, "x.com")),
                "{u}"
            );
        }
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://nottracker.net/a.js",
                ResourceType::Script,
                false,
                "x.com"
            )
        ));
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://tracker.net.evil.com/a.js",
                ResourceType::Script,
                false,
                "x.com"
            )
        ));
    }

    #[test]
    fn document_rule_does_not_block_scripts() {
        // The Appendix A.6 failure: ||mgid.com^$document has a rule but it
        // never applies to script resources.
        let r = rule("||mgid.com^$document");
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://mgid.com/fp.js",
                ResourceType::Script,
                false,
                "news.com"
            )
        ));
        assert!(rule_matches(
            &r,
            &ctx(
                "https://mgid.com/",
                ResourceType::Document,
                false,
                "news.com"
            )
        ));
    }

    #[test]
    fn third_party_option() {
        let r = rule("||fp.example.net^$script,third-party");
        assert!(rule_matches(
            &r,
            &ctx(
                "https://fp.example.net/x.js",
                ResourceType::Script,
                false,
                "shop.com"
            )
        ));
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://fp.example.net/x.js",
                ResourceType::Script,
                true,
                "example.net"
            )
        ));
    }

    #[test]
    fn domain_option_scopes_rule() {
        let r = rule("/ads.js$domain=news.com");
        assert!(rule_matches(
            &r,
            &ctx(
                "https://cdn.net/ads.js",
                ResourceType::Script,
                false,
                "news.com"
            )
        ));
        assert!(rule_matches(
            &r,
            &ctx(
                "https://cdn.net/ads.js",
                ResourceType::Script,
                false,
                "sub.news.com"
            )
        ));
        assert!(!rule_matches(
            &r,
            &ctx(
                "https://cdn.net/ads.js",
                ResourceType::Script,
                false,
                "blog.org"
            )
        ));
    }

    #[test]
    fn separator_semantics() {
        let r = rule("||example.com^path");
        assert!(pattern_matches(
            &r,
            &Url::parse("https://example.com/path").unwrap()
        ));
        assert!(!pattern_matches(
            &r,
            &Url::parse("https://example.compath.com/x").unwrap()
        ));
        // '^' also matches end-of-URL.
        let r2 = rule("||example.com^");
        assert!(pattern_matches(
            &r2,
            &Url::parse("https://example.com/").unwrap()
        ));
    }

    #[test]
    fn wildcard_spans_segments() {
        let r = rule("||cdn.net/*/fp-*.js");
        assert!(pattern_matches(
            &r,
            &Url::parse("https://cdn.net/v2/fp-3.1.js").unwrap()
        ));
        assert!(!pattern_matches(
            &r,
            &Url::parse("https://cdn.net/fp.js").unwrap()
        ));
    }

    #[test]
    fn start_and_end_anchor() {
        let r = rule("|https://exact.com/app.js|");
        assert!(pattern_matches(
            &r,
            &Url::parse("https://exact.com/app.js").unwrap()
        ));
        assert!(!pattern_matches(
            &r,
            &Url::parse("https://exact.com/app.js?v=1").unwrap()
        ));
        assert!(!pattern_matches(
            &r,
            &Url::parse("https://pre.exact.com/app.js").unwrap()
        ));
    }

    #[test]
    fn matching_is_case_insensitive() {
        let r = rule("/FingerPrint/a.js");
        assert!(pattern_matches(
            &r,
            &Url::parse("https://x.com/fingerprint/A.JS").unwrap()
        ));
    }
}
