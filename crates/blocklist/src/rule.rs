//! Adblock-Plus filter rule parsing.
//!
//! Supports the network-filter subset of the ABP syntax that EasyList and
//! EasyPrivacy rules use and that the paper's analysis depends on:
//!
//! * plain substring patterns with `*` wildcards
//! * anchors: `|` (start/end of URL), `||` (domain anchor)
//! * the `^` separator placeholder
//! * exception rules `@@...`
//! * options after `$`: resource types (`script`, `image`, `document`,
//!   `other`, negated `~script`, …), `third-party` / `~third-party`,
//!   `first-party`, and `domain=a.com|~b.com`
//!
//! Element-hiding rules (`##`, `#@#`), comments (`!`), and cosmetic
//! options are recognized and skipped (they never block script loads).
//! The `$document` modifier is faithfully treated as a *type* option — a
//! `$document` rule does not apply to script requests, which is exactly
//! the rule-design failure the paper demonstrates with
//! `||mgid.com^$document` (Appendix A.6).

use serde::{Deserialize, Serialize};

/// Resource-type options a rule can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeOption {
    /// `$script`.
    Script,
    /// `$image`.
    Image,
    /// `$document` — applies to top-level documents only.
    Document,
    /// `$other` (and any type we don't model, e.g. `xmlhttprequest`).
    Other,
}

/// Party constraint from `$third-party` / `$~third-party` / `$first-party`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartyOption {
    /// No constraint.
    #[default]
    Any,
    /// Only third-party requests.
    ThirdOnly,
    /// Only first-party requests.
    FirstOnly,
}

/// One token of a compiled filter pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternToken {
    /// Literal text (lowercased; URL matching is case-insensitive).
    Literal(String),
    /// `*` — any run of characters.
    Wildcard,
    /// `^` — a separator character or the end of the URL.
    Separator,
}

/// Where the pattern is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Anchor {
    /// Match anywhere in the URL.
    #[default]
    None,
    /// `|pattern` — match from the start of the URL.
    Start,
    /// `||pattern` — match from a domain-label boundary of the host.
    Domain,
}

/// A parsed network filter rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterRule {
    /// Original rule text (for reporting).
    pub raw: String,
    /// Whether this is an exception (`@@`) rule.
    pub exception: bool,
    /// Anchoring mode.
    pub anchor: Anchor,
    /// Whether the pattern must also match at the end of the URL (`|`
    /// suffix).
    pub end_anchor: bool,
    /// Compiled pattern tokens.
    pub tokens: Vec<PatternToken>,
    /// Positive type options (empty = all types).
    pub include_types: Vec<TypeOption>,
    /// Negated type options.
    pub exclude_types: Vec<TypeOption>,
    /// Party constraint.
    pub party: PartyOption,
    /// `domain=` includes (page registrable domains); empty = any.
    pub include_domains: Vec<String>,
    /// `domain=` excludes.
    pub exclude_domains: Vec<String>,
}

/// Why a line was skipped instead of parsed into a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skipped {
    /// Blank line.
    Empty,
    /// `!` comment or `[Adblock...]` header.
    Comment,
    /// Element-hiding / cosmetic rule.
    Cosmetic,
    /// Unsupported syntax (e.g. regex rules `/.../`).
    Unsupported,
}

/// Parses one filter-list line.
pub fn parse_line(line: &str) -> Result<FilterRule, Skipped> {
    let line = line.trim();
    if line.is_empty() {
        return Err(Skipped::Empty);
    }
    if line.starts_with('!') || (line.starts_with('[') && line.ends_with(']')) {
        return Err(Skipped::Comment);
    }
    if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
        return Err(Skipped::Cosmetic);
    }
    let (exception, body) = match line.strip_prefix("@@") {
        Some(rest) => (true, rest),
        None => (false, line),
    };
    if body.starts_with('/') && body.ends_with('/') && body.len() > 1 {
        return Err(Skipped::Unsupported); // raw regex rules
    }

    // Split off options at the last unescaped '$'. ABP option separators
    // are simple: the last '$' followed by option-looking text.
    let (pattern_text, options_text) = match body.rfind('$') {
        Some(i) if looks_like_options(&body[i + 1..]) => (&body[..i], Some(&body[i + 1..])),
        _ => (body, None),
    };

    let mut rule = FilterRule {
        raw: line.to_string(),
        exception,
        anchor: Anchor::None,
        end_anchor: false,
        tokens: Vec::new(),
        include_types: Vec::new(),
        exclude_types: Vec::new(),
        party: PartyOption::Any,
        include_domains: Vec::new(),
        exclude_domains: Vec::new(),
    };

    let mut pat = pattern_text;
    if let Some(rest) = pat.strip_prefix("||") {
        rule.anchor = Anchor::Domain;
        pat = rest;
    } else if let Some(rest) = pat.strip_prefix('|') {
        rule.anchor = Anchor::Start;
        pat = rest;
    }
    if let Some(rest) = pat.strip_suffix('|') {
        rule.end_anchor = true;
        pat = rest;
    }
    rule.tokens = compile_pattern(pat);

    if let Some(opts) = options_text {
        for opt in opts.split(',') {
            let opt = opt.trim();
            if opt.is_empty() {
                continue;
            }
            let (neg, name) = match opt.strip_prefix('~') {
                Some(rest) => (true, rest),
                None => (false, opt),
            };
            match name.to_ascii_lowercase().as_str() {
                "script" => push_type(&mut rule, neg, TypeOption::Script),
                "image" => push_type(&mut rule, neg, TypeOption::Image),
                "document" | "doc" => push_type(&mut rule, neg, TypeOption::Document),
                "third-party" | "3p" => {
                    rule.party = if neg {
                        PartyOption::FirstOnly
                    } else {
                        PartyOption::ThirdOnly
                    }
                }
                "first-party" | "1p" => {
                    rule.party = if neg {
                        PartyOption::ThirdOnly
                    } else {
                        PartyOption::FirstOnly
                    }
                }
                other if other.starts_with("domain=") => {
                    for d in other["domain=".len()..].split('|') {
                        let d = d.trim().to_ascii_lowercase();
                        if let Some(ex) = d.strip_prefix('~') {
                            rule.exclude_domains.push(ex.to_string());
                        } else if !d.is_empty() {
                            rule.include_domains.push(d);
                        }
                    }
                }
                // Types we don't model (xmlhttprequest, subdocument, …) and
                // behavioral options (popup, generichide, …) map to Other /
                // ignored respectively. Mapping unknown *types* to Other
                // keeps "rule lists some types, none of them script" ⇒
                // "doesn't block scripts" semantics.
                "xmlhttprequest" | "xhr" | "subdocument" | "stylesheet" | "font" | "media"
                | "websocket" | "object" | "ping" | "popup" => {
                    push_type(&mut rule, neg, TypeOption::Other)
                }
                _ => {} // ignore unknown behavioral options
            }
        }
    }
    Ok(rule)
}

fn looks_like_options(s: &str) -> bool {
    !s.is_empty()
        && s.split(',').all(|o| {
            let o = o.trim().trim_start_matches('~');
            o.chars().all(|c| {
                c.is_ascii_alphanumeric()
                    || c == '-'
                    || c == '='
                    || c == '|'
                    || c == '.'
                    || c == '~'
                    || c == '_'
            }) && !o.is_empty()
        })
}

fn push_type(rule: &mut FilterRule, neg: bool, ty: TypeOption) {
    if neg {
        rule.exclude_types.push(ty);
    } else {
        rule.include_types.push(ty);
    }
}

/// Compiles a raw pattern into tokens, collapsing redundant wildcards.
fn compile_pattern(pat: &str) -> Vec<PatternToken> {
    let mut tokens = Vec::new();
    let mut literal = String::new();
    for c in pat.chars() {
        match c {
            '*' => {
                if !literal.is_empty() {
                    tokens.push(PatternToken::Literal(std::mem::take(&mut literal)));
                }
                if tokens.last() != Some(&PatternToken::Wildcard) {
                    tokens.push(PatternToken::Wildcard);
                }
            }
            '^' => {
                if !literal.is_empty() {
                    tokens.push(PatternToken::Literal(std::mem::take(&mut literal)));
                }
                tokens.push(PatternToken::Separator);
            }
            _ => literal.extend(c.to_lowercase()),
        }
    }
    if !literal.is_empty() {
        tokens.push(PatternToken::Literal(literal));
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_domain_anchor_rule() {
        let r = parse_line("||mgid.com^$document").unwrap();
        assert_eq!(r.anchor, Anchor::Domain);
        assert!(!r.exception);
        assert_eq!(r.include_types, vec![TypeOption::Document]);
        assert_eq!(
            r.tokens,
            vec![
                PatternToken::Literal("mgid.com".into()),
                PatternToken::Separator
            ]
        );
    }

    #[test]
    fn parses_exception_rule() {
        let r = parse_line("@@||example.com/assets/*$script").unwrap();
        assert!(r.exception);
        assert_eq!(r.include_types, vec![TypeOption::Script]);
    }

    #[test]
    fn parses_party_and_domain_options() {
        let r =
            parse_line("||tracker.net^$script,third-party,domain=news.com|~blog.news.com").unwrap();
        assert_eq!(r.party, PartyOption::ThirdOnly);
        assert_eq!(r.include_domains, vec!["news.com"]);
        assert_eq!(r.exclude_domains, vec!["blog.news.com"]);
    }

    #[test]
    fn negated_type_option() {
        let r = parse_line("||ads.example.com^$~script").unwrap();
        assert_eq!(r.exclude_types, vec![TypeOption::Script]);
        assert!(r.include_types.is_empty());
    }

    #[test]
    fn skips_comments_and_cosmetic() {
        assert_eq!(parse_line("! comment"), Err(Skipped::Comment));
        assert_eq!(parse_line("[Adblock Plus 2.0]"), Err(Skipped::Comment));
        assert_eq!(
            parse_line("example.com##.ad-banner"),
            Err(Skipped::Cosmetic)
        );
        assert_eq!(parse_line(""), Err(Skipped::Empty));
        assert_eq!(parse_line("/banner[0-9]+/"), Err(Skipped::Unsupported));
    }

    #[test]
    fn wildcards_collapse() {
        let r = parse_line("a**b").unwrap();
        assert_eq!(
            r.tokens,
            vec![
                PatternToken::Literal("a".into()),
                PatternToken::Wildcard,
                PatternToken::Literal("b".into()),
            ]
        );
    }

    #[test]
    fn dollar_in_pattern_without_options_is_literal() {
        // "$" not followed by option-like text stays in the pattern.
        let r = parse_line("path$!x").unwrap();
        assert!(matches!(&r.tokens[0], PatternToken::Literal(l) if l.contains('$')));
    }

    #[test]
    fn end_anchor() {
        let r = parse_line("|https://example.com/exact.js|").unwrap();
        assert_eq!(r.anchor, Anchor::Start);
        assert!(r.end_anchor);
    }

    #[test]
    fn patterns_lowercase() {
        let r = parse_line("||Example.COM/Path").unwrap();
        assert_eq!(
            r.tokens,
            vec![PatternToken::Literal("example.com/path".into())]
        );
    }
}
