//! Device rendering profiles.
//!
//! Canvas fingerprinting works because the *same* draw commands produce
//! *different* pixels on different GPU / OS / font stacks. The paper's
//! methodology depends on two facts (§3.1):
//!
//! 1. rendering is **deterministic per device** — every site crawled from
//!    one machine that runs the same script yields byte-identical canvases;
//! 2. rendering **differs across devices** — the authors validated their
//!    clustering by re-crawling on an Apple M1 laptop and observing
//!    different canvas bytes but identical cross-site grouping.
//!
//! A [`DeviceProfile`] reproduces both properties in our software
//! rasterizer: it perturbs anti-aliasing sample phases, coverage gamma,
//! and text metrics in a way that is a pure function of the profile.

use serde::{Deserialize, Serialize};

/// A deterministic description of how one machine rasterizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Stable identifier, e.g. `"intel-ubuntu-22.04"`.
    pub id: String,
    /// Human-readable description.
    pub name: String,
    /// Sub-pixel phase of the anti-aliasing sample grid, in `[0, 1)²`.
    /// Different GPUs place their sample points differently; this shifts
    /// every coverage computation and therefore every edge pixel.
    pub aa_phase: (f64, f64),
    /// Exponent applied to edge coverage before compositing, emulating the
    /// gamma-correction differences between font/AA stacks (1.0 = linear).
    pub coverage_gamma: f64,
    /// Per-mille horizontal advance jitter applied to text glyphs,
    /// hashed per (glyph, profile). Emulates hinting/kerning differences.
    pub glyph_jitter: f64,
    /// Extra blur radius (in px, 0.0–1.0) applied to glyph edges,
    /// emulating sub-pixel smoothing differences.
    pub glyph_softness: f64,
    /// Seed mixed into all per-device hash perturbations.
    pub seed: u64,
}

impl DeviceProfile {
    /// The Intel/Ubuntu 22.04 machine the paper used for its primary crawl.
    pub fn intel_ubuntu() -> Self {
        DeviceProfile {
            id: "intel-ubuntu-22.04".into(),
            name: "Intel UHD, Ubuntu 22.04.2 LTS, Chrome-like".into(),
            // (0.5, 0.5) is the neutral phase: sample points sit exactly at
            // subsample centers, so this profile is the reference renderer.
            aa_phase: (0.5, 0.5),
            coverage_gamma: 1.0,
            glyph_jitter: 0.0,
            glyph_softness: 0.0,
            seed: 0x17e1_2204,
        }
    }

    /// The Apple M1 laptop used for the paper's validation crawl (§3.1).
    pub fn apple_m1() -> Self {
        DeviceProfile {
            id: "apple-m1-macos".into(),
            name: "Apple M1, macOS, Chrome-like".into(),
            aa_phase: (0.37, 0.61),
            coverage_gamma: 1.18,
            glyph_jitter: 0.8,
            glyph_softness: 0.35,
            seed: 0x0a99_1e71,
        }
    }

    /// A third synthetic profile (useful for tests that need a tie-breaker).
    pub fn windows_nvidia() -> Self {
        DeviceProfile {
            id: "windows-nvidia".into(),
            name: "NVIDIA GTX, Windows 11, Chrome-like".into(),
            aa_phase: (0.73, 0.19),
            coverage_gamma: 0.92,
            glyph_jitter: 1.4,
            glyph_softness: 0.15,
            seed: 0x0071_7a99,
        }
    }

    /// Deterministic 64-bit hash of `data` mixed with the profile seed.
    /// Used for glyph jitter and any other per-device perturbation.
    pub fn perturb(&self, data: &[u8]) -> u64 {
        // FNV-1a with the seed folded in; stable across platforms.
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// A deterministic jitter value in `[-1, 1]` for the given key.
    pub fn jitter_unit(&self, data: &[u8]) -> f64 {
        let h = self.perturb(data);
        // Map the top 53 bits to [0,1), then to [-1,1].
        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Applies the device coverage gamma to a raw coverage value in `[0,1]`.
    pub fn shade(&self, coverage: f64) -> f64 {
        if self.coverage_gamma == 1.0 {
            coverage
        } else {
            coverage.clamp(0.0, 1.0).powf(self.coverage_gamma)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_ids() {
        let ids = [
            DeviceProfile::intel_ubuntu().id,
            DeviceProfile::apple_m1().id,
            DeviceProfile::windows_nvidia().id,
        ];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn perturb_is_deterministic_and_seed_dependent() {
        let intel = DeviceProfile::intel_ubuntu();
        let m1 = DeviceProfile::apple_m1();
        assert_eq!(intel.perturb(b"glyph:a"), intel.perturb(b"glyph:a"));
        assert_ne!(intel.perturb(b"glyph:a"), m1.perturb(b"glyph:a"));
        assert_ne!(intel.perturb(b"glyph:a"), intel.perturb(b"glyph:b"));
    }

    #[test]
    fn jitter_is_bounded() {
        let m1 = DeviceProfile::apple_m1();
        for i in 0..256u32 {
            let j = m1.jitter_unit(&i.to_le_bytes());
            assert!((-1.0..=1.0).contains(&j));
        }
    }

    #[test]
    fn shade_is_identity_for_linear_gamma() {
        let intel = DeviceProfile::intel_ubuntu();
        assert_eq!(intel.shade(0.5), 0.5);
        let m1 = DeviceProfile::apple_m1();
        assert!(m1.shade(0.5) < 0.5); // gamma > 1 darkens midtones
    }
}
