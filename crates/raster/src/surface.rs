//! The pixel backing store and compositing.
//!
//! A [`Surface`] is a straight-alpha RGBA8 buffer, matching the HTML canvas
//! backing store as observed through `getImageData`. Compositing supports
//! the `globalCompositeOperation` values fingerprinting scripts actually
//! use (`source-over`, `multiply`, `screen`, `lighter`, `destination-over`,
//! `copy`, `xor`); the remaining Porter-Duff operators are intentionally
//! omitted and documented as such.

use crate::color::Color;

/// Supported `globalCompositeOperation` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompositeOp {
    /// Default painter's-algorithm blending.
    #[default]
    SourceOver,
    /// Paint under existing content.
    DestinationOver,
    /// Channel-wise multiply (used by FingerprintJS's winding test canvas).
    Multiply,
    /// Channel-wise screen.
    Screen,
    /// Additive blending.
    Lighter,
    /// Replace destination.
    Copy,
    /// Exclusive-or of coverage.
    Xor,
}

impl CompositeOp {
    /// Parses a `globalCompositeOperation` string; unknown values return
    /// `None` and the canvas keeps its previous op, per spec.
    pub fn parse(s: &str) -> Option<CompositeOp> {
        Some(match s {
            "source-over" => CompositeOp::SourceOver,
            "destination-over" => CompositeOp::DestinationOver,
            "multiply" => CompositeOp::Multiply,
            "screen" => CompositeOp::Screen,
            "lighter" => CompositeOp::Lighter,
            "copy" => CompositeOp::Copy,
            "xor" => CompositeOp::Xor,
            _ => return None,
        })
    }

    /// Canonical string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            CompositeOp::SourceOver => "source-over",
            CompositeOp::DestinationOver => "destination-over",
            CompositeOp::Multiply => "multiply",
            CompositeOp::Screen => "screen",
            CompositeOp::Lighter => "lighter",
            CompositeOp::Copy => "copy",
            CompositeOp::Xor => "xor",
        }
    }
}

/// A straight-alpha RGBA8 raster surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    width: u32,
    height: u32,
    /// Row-major RGBA bytes, `4 * width * height` long.
    data: Vec<u8>,
}

impl Surface {
    /// Creates a fully transparent surface (the canvas initial state).
    pub fn new(width: u32, height: u32) -> Surface {
        Surface {
            width,
            height,
            data: vec![0; (width as usize) * (height as usize) * 4],
        }
    }

    /// Creates a surface reusing `buf` as the backing allocation (the
    /// [`crate::pool::SurfacePool`] fast path). The buffer is resized and
    /// zeroed, so the result is indistinguishable from [`Surface::new`].
    pub fn with_buffer(width: u32, height: u32, mut buf: Vec<u8>) -> Surface {
        let len = (width as usize) * (height as usize) * 4;
        buf.clear();
        buf.resize(len, 0);
        Surface {
            width,
            height,
            data: buf,
        }
    }

    /// Consumes the surface, returning the backing allocation for reuse.
    pub fn into_buffer(self) -> Vec<u8> {
        self.data
    }

    /// Clears every pixel to transparent black without touching the
    /// allocation.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Resizes in place, reusing the existing allocation where possible,
    /// and clears to transparent black (the canvas resize semantics).
    pub fn reset(&mut self, width: u32, height: u32) {
        let len = (width as usize) * (height as usize) * 4;
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(len, 0);
    }

    /// Surface width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Surface height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGBA bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw RGBA bytes (used by `putImageData` and noise defenses).
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads one pixel; out-of-bounds reads return transparent black,
    /// matching `getImageData` on out-of-canvas regions.
    pub fn get(&self, x: i64, y: i64) -> Color {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return Color::TRANSPARENT;
        }
        let i = ((y as usize * self.width as usize) + x as usize) * 4;
        Color::rgba(
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        )
    }

    /// Writes one pixel unconditionally (no blending); out-of-bounds writes
    /// are ignored.
    pub fn set(&mut self, x: i64, y: i64, c: Color) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let i = ((y as usize * self.width as usize) + x as usize) * 4;
        self.data[i] = c.r;
        self.data[i + 1] = c.g;
        self.data[i + 2] = c.b;
        self.data[i + 3] = c.a;
    }

    /// Clears a rectangle to transparent black (`clearRect`). Coordinates
    /// are clamped to the surface.
    pub fn clear_rect(&mut self, x: i64, y: i64, w: i64, h: i64) {
        let x0 = x.max(0);
        let y0 = y.max(0);
        let x1 = (x + w).min(self.width as i64);
        let y1 = (y + h).min(self.height as i64);
        for yy in y0..y1 {
            for xx in x0..x1 {
                self.set(xx, yy, Color::TRANSPARENT);
            }
        }
    }

    /// Blends `src` over the pixel at `(x, y)` with coverage `cov` in
    /// `[0, 1]` using the given composite operation.
    pub fn blend(&mut self, x: i64, y: i64, src: Color, cov: f64, op: CompositeOp) {
        if cov <= 0.0 {
            return;
        }
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let dst = self.get(x, y);
        let out = composite(src, dst, cov.min(1.0), op);
        self.set(x, y, out);
    }

    /// Fast path: whether every pixel is fully transparent.
    pub fn is_blank(&self) -> bool {
        self.data.iter().all(|&b| b == 0)
    }
}

/// Porter-Duff-style compositing of straight-alpha colors with fractional
/// source coverage. Works in normalized f64 then rounds; deterministic.
fn composite(src: Color, dst: Color, cov: f64, op: CompositeOp) -> Color {
    let sa = (src.a as f64 / 255.0) * cov;
    let da = dst.a as f64 / 255.0;
    let (sr, sg, sb) = (
        src.r as f64 / 255.0,
        src.g as f64 / 255.0,
        src.b as f64 / 255.0,
    );
    let (dr, dg, db) = (
        dst.r as f64 / 255.0,
        dst.g as f64 / 255.0,
        dst.b as f64 / 255.0,
    );

    // Blend stage (for separable blend modes) operates on unpremultiplied
    // color; compositing stage is source-over with the blended color,
    // following the CSS compositing spec structure.
    let blend = |s: f64, d: f64| -> f64 {
        match op {
            CompositeOp::Multiply => s * d,
            CompositeOp::Screen => s + d - s * d,
            _ => s,
        }
    };

    match op {
        CompositeOp::Copy => {
            let a = sa;
            pack(sr, sg, sb, a)
        }
        CompositeOp::Lighter => {
            let a = (sa + da).min(1.0);
            // Additive on premultiplied values.
            let r = (sr * sa + dr * da).min(1.0);
            let g = (sg * sa + dg * da).min(1.0);
            let b = (sb * sa + db * da).min(1.0);
            unpack_premul(r, g, b, a)
        }
        CompositeOp::DestinationOver => {
            let a = da + sa * (1.0 - da);
            if a <= 0.0 {
                return Color::TRANSPARENT;
            }
            let r = (dr * da + sr * sa * (1.0 - da)) / a;
            let g = (dg * da + sg * sa * (1.0 - da)) / a;
            let b = (db * da + sb * sa * (1.0 - da)) / a;
            pack(r, g, b, a)
        }
        CompositeOp::Xor => {
            let a = sa * (1.0 - da) + da * (1.0 - sa);
            if a <= 0.0 {
                return Color::TRANSPARENT;
            }
            let r = (sr * sa * (1.0 - da) + dr * da * (1.0 - sa)) / a;
            let g = (sg * sa * (1.0 - da) + dg * da * (1.0 - sa)) / a;
            let b = (sb * sa * (1.0 - da) + db * da * (1.0 - sa)) / a;
            pack(r, g, b, a)
        }
        CompositeOp::SourceOver | CompositeOp::Multiply | CompositeOp::Screen => {
            // Mix the blend-mode result with the source proportionally to
            // the destination alpha, then source-over composite.
            let br = blend(sr, dr) * da + sr * (1.0 - da);
            let bg = blend(sg, dg) * da + sg * (1.0 - da);
            let bb = blend(sb, db) * da + sb * (1.0 - da);
            let a = sa + da * (1.0 - sa);
            if a <= 0.0 {
                return Color::TRANSPARENT;
            }
            let r = (br * sa + dr * da * (1.0 - sa)) / a;
            let g = (bg * sa + dg * da * (1.0 - sa)) / a;
            let b = (bb * sa + db * da * (1.0 - sa)) / a;
            pack(r, g, b, a)
        }
    }
}

fn pack(r: f64, g: f64, b: f64, a: f64) -> Color {
    Color::rgba(
        (r.clamp(0.0, 1.0) * 255.0).round() as u8,
        (g.clamp(0.0, 1.0) * 255.0).round() as u8,
        (b.clamp(0.0, 1.0) * 255.0).round() as u8,
        (a.clamp(0.0, 1.0) * 255.0).round() as u8,
    )
}

fn unpack_premul(r: f64, g: f64, b: f64, a: f64) -> Color {
    if a <= 0.0 {
        return Color::TRANSPARENT;
    }
    pack(r / a, g / a, b / a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_surface_is_blank() {
        let s = Surface::new(4, 4);
        assert!(s.is_blank());
        assert_eq!(s.get(0, 0), Color::TRANSPARENT);
        assert_eq!(s.get(-1, 0), Color::TRANSPARENT);
        assert_eq!(s.get(4, 0), Color::TRANSPARENT);
    }

    #[test]
    fn source_over_opaque_replaces() {
        let mut s = Surface::new(2, 2);
        s.blend(0, 0, Color::rgb(10, 20, 30), 1.0, CompositeOp::SourceOver);
        assert_eq!(s.get(0, 0), Color::rgb(10, 20, 30));
    }

    #[test]
    fn source_over_half_coverage_on_white() {
        let mut s = Surface::new(1, 1);
        s.blend(0, 0, Color::WHITE, 1.0, CompositeOp::SourceOver);
        s.blend(0, 0, Color::BLACK, 0.5, CompositeOp::SourceOver);
        let c = s.get(0, 0);
        assert_eq!(c.a, 255);
        assert!((c.r as i32 - 128).abs() <= 1, "got {c:?}");
    }

    #[test]
    fn lighter_saturates() {
        let mut s = Surface::new(1, 1);
        s.blend(0, 0, Color::rgb(200, 0, 0), 1.0, CompositeOp::SourceOver);
        s.blend(0, 0, Color::rgb(200, 0, 0), 1.0, CompositeOp::Lighter);
        assert_eq!(s.get(0, 0).r, 255);
    }

    #[test]
    fn multiply_darkens() {
        let mut s = Surface::new(1, 1);
        s.blend(
            0,
            0,
            Color::rgb(128, 128, 128),
            1.0,
            CompositeOp::SourceOver,
        );
        s.blend(0, 0, Color::rgb(128, 128, 128), 1.0, CompositeOp::Multiply);
        let c = s.get(0, 0);
        assert!((c.r as i32 - 64).abs() <= 1, "got {c:?}");
    }

    #[test]
    fn copy_replaces_including_alpha() {
        let mut s = Surface::new(1, 1);
        s.blend(0, 0, Color::WHITE, 1.0, CompositeOp::SourceOver);
        s.blend(0, 0, Color::rgba(0, 0, 0, 0), 1.0, CompositeOp::Copy);
        assert_eq!(s.get(0, 0).a, 0);
    }

    #[test]
    fn xor_with_opaque_dst_erases() {
        let mut s = Surface::new(1, 1);
        s.blend(0, 0, Color::WHITE, 1.0, CompositeOp::SourceOver);
        s.blend(0, 0, Color::BLACK, 1.0, CompositeOp::Xor);
        assert_eq!(s.get(0, 0).a, 0);
    }

    #[test]
    fn clear_rect_clamps_to_bounds() {
        let mut s = Surface::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                s.set(x, y, Color::WHITE);
            }
        }
        s.clear_rect(-10, -10, 12, 12);
        assert_eq!(s.get(0, 0).a, 0);
        assert_eq!(s.get(1, 1).a, 0);
        assert_eq!(s.get(2, 2), Color::WHITE);
    }

    #[test]
    fn composite_op_parse_roundtrip() {
        for op in [
            CompositeOp::SourceOver,
            CompositeOp::DestinationOver,
            CompositeOp::Multiply,
            CompositeOp::Screen,
            CompositeOp::Lighter,
            CompositeOp::Copy,
            CompositeOp::Xor,
        ] {
            assert_eq!(CompositeOp::parse(op.as_str()), Some(op));
        }
        assert_eq!(CompositeOp::parse("source-atop"), None);
    }
}
