//! Fill and stroke paints: solid colors and gradients.

use crate::color::Color;
use crate::geom::Point;

/// A gradient color stop.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientStop {
    /// Offset along the gradient in `[0, 1]`.
    pub offset: f64,
    /// Stop color.
    pub color: Color,
}

/// A linear or radial gradient, as created by
/// `createLinearGradient` / `createRadialGradient`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradient {
    /// Geometry of the gradient.
    pub kind: GradientKind,
    /// Color stops sorted by offset (kept sorted on insertion).
    pub stops: Vec<GradientStop>,
}

/// Gradient geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum GradientKind {
    /// Linear gradient from `from` to `to`.
    Linear {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
    },
    /// Radial gradient between two circles.
    Radial {
        /// Inner circle center.
        from: Point,
        /// Inner radius.
        r0: f64,
        /// Outer circle center.
        to: Point,
        /// Outer radius.
        r1: f64,
    },
}

impl Gradient {
    /// Creates a linear gradient with no stops.
    pub fn linear(x0: f64, y0: f64, x1: f64, y1: f64) -> Gradient {
        Gradient {
            kind: GradientKind::Linear {
                from: Point::new(x0, y0),
                to: Point::new(x1, y1),
            },
            stops: Vec::new(),
        }
    }

    /// Creates a radial gradient with no stops.
    pub fn radial(x0: f64, y0: f64, r0: f64, x1: f64, y1: f64, r1: f64) -> Gradient {
        Gradient {
            kind: GradientKind::Radial {
                from: Point::new(x0, y0),
                r0,
                to: Point::new(x1, y1),
                r1,
            },
            stops: Vec::new(),
        }
    }

    /// `addColorStop`: inserts a stop keeping the list sorted by offset
    /// (stable for equal offsets, matching canvas behavior).
    pub fn add_stop(&mut self, offset: f64, color: Color) {
        let offset = offset.clamp(0.0, 1.0);
        let idx = self
            .stops
            .iter()
            .position(|s| s.offset > offset)
            .unwrap_or(self.stops.len());
        self.stops.insert(idx, GradientStop { offset, color });
    }

    /// Evaluates the gradient color at a point (device space).
    pub fn eval(&self, p: Point) -> Color {
        if self.stops.is_empty() {
            return Color::TRANSPARENT;
        }
        let t = match &self.kind {
            GradientKind::Linear { from, to } => {
                let dx = to.x - from.x;
                let dy = to.y - from.y;
                let len2 = dx * dx + dy * dy;
                if len2 <= 0.0 {
                    0.0
                } else {
                    ((p.x - from.x) * dx + (p.y - from.y) * dy) / len2
                }
            }
            GradientKind::Radial { from, r0, to, r1 } => {
                // Simplified concentric evaluation (the common case in
                // fingerprinting scripts is r0=0 with concentric circles):
                // parameter is distance from the focal center normalized
                // between the radii.
                let _ = to;
                let d = p.distance(*from);
                if (r1 - r0).abs() < 1e-9 {
                    if d < *r0 {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    (d - r0) / (r1 - r0)
                }
            }
        };
        self.color_at(t)
    }

    /// Color at normalized gradient parameter `t` (clamped padding).
    pub fn color_at(&self, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let (Some(first), Some(last)) = (self.stops.first(), self.stops.last()) else {
            return Color::TRANSPARENT;
        };
        if t <= first.offset {
            return first.color;
        }
        for w in self.stops.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if t <= b.offset {
                let span = b.offset - a.offset;
                let local = if span <= 0.0 {
                    1.0
                } else {
                    (t - a.offset) / span
                };
                return a.color.lerp(b.color, local);
            }
        }
        last.color
    }
}

/// What to paint with: a solid color or a gradient.
///
/// Canvas patterns (`createPattern`) are intentionally omitted: none of the
/// fingerprinting scripts modeled in this reproduction use them.
#[derive(Debug, Clone, PartialEq)]
pub enum Paint {
    /// Solid color fill.
    Solid(Color),
    /// Gradient fill evaluated per-pixel in device space.
    Gradient(Gradient),
}

impl Paint {
    /// Evaluates the paint at a device-space point.
    pub fn eval(&self, p: Point) -> Color {
        match self {
            Paint::Solid(c) => *c,
            Paint::Gradient(g) => g.eval(p),
        }
    }

    /// Fast path for solid paints.
    pub fn as_solid(&self) -> Option<Color> {
        match self {
            Paint::Solid(c) => Some(*c),
            Paint::Gradient(_) => None,
        }
    }
}

impl Default for Paint {
    fn default() -> Self {
        Paint::Solid(Color::BLACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_stay_sorted() {
        let mut g = Gradient::linear(0.0, 0.0, 1.0, 0.0);
        g.add_stop(0.8, Color::BLACK);
        g.add_stop(0.2, Color::WHITE);
        g.add_stop(0.5, Color::rgb(1, 2, 3));
        let offsets: Vec<f64> = g.stops.iter().map(|s| s.offset).collect();
        assert_eq!(offsets, vec![0.2, 0.5, 0.8]);
    }

    #[test]
    fn linear_gradient_interpolates() {
        let mut g = Gradient::linear(0.0, 0.0, 10.0, 0.0);
        g.add_stop(0.0, Color::BLACK);
        g.add_stop(1.0, Color::WHITE);
        assert_eq!(g.eval(Point::new(0.0, 5.0)), Color::BLACK);
        assert_eq!(g.eval(Point::new(10.0, -3.0)), Color::WHITE);
        let mid = g.eval(Point::new(5.0, 0.0));
        assert!((mid.r as i32 - 128).abs() <= 1);
    }

    #[test]
    fn gradient_clamps_outside_range() {
        let mut g = Gradient::linear(0.0, 0.0, 10.0, 0.0);
        g.add_stop(0.0, Color::BLACK);
        g.add_stop(1.0, Color::WHITE);
        assert_eq!(g.eval(Point::new(-5.0, 0.0)), Color::BLACK);
        assert_eq!(g.eval(Point::new(50.0, 0.0)), Color::WHITE);
    }

    #[test]
    fn radial_gradient_by_distance() {
        let mut g = Gradient::radial(0.0, 0.0, 0.0, 0.0, 0.0, 10.0);
        g.add_stop(0.0, Color::WHITE);
        g.add_stop(1.0, Color::BLACK);
        assert_eq!(g.eval(Point::new(0.0, 0.0)), Color::WHITE);
        assert_eq!(g.eval(Point::new(10.0, 0.0)), Color::BLACK);
        let mid = g.eval(Point::new(0.0, 5.0));
        assert!((mid.r as i32 - 128).abs() <= 1);
    }

    #[test]
    fn empty_gradient_is_transparent() {
        let g = Gradient::linear(0.0, 0.0, 1.0, 1.0);
        assert_eq!(g.eval(Point::new(0.5, 0.5)), Color::TRANSPARENT);
    }

    #[test]
    fn degenerate_linear_gradient_uses_first_stop() {
        let mut g = Gradient::linear(3.0, 3.0, 3.0, 3.0);
        g.add_stop(0.0, Color::rgb(9, 9, 9));
        g.add_stop(1.0, Color::WHITE);
        assert_eq!(g.eval(Point::new(100.0, 100.0)), Color::rgb(9, 9, 9));
    }
}
