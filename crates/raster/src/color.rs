//! Colors and CSS `<color>` parsing.
//!
//! The parser supports the subset of CSS color syntax that real-world
//! fingerprinting scripts use: hex colors (`#rgb`, `#rgba`, `#rrggbb`,
//! `#rrggbbaa`), `rgb()` / `rgba()` with integer or percentage channels,
//! `hsl()` / `hsla()`, and the CSS Level 1 named colors plus the handful of
//! extended names that appear in fingerprinting scripts in the wild
//! (e.g. FingerprintJS fills with `"orange"` over `"#069"`).

/// An 8-bit-per-channel straight-alpha RGBA color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel, 0..=255.
    pub r: u8,
    /// Green channel, 0..=255.
    pub g: u8,
    /// Blue channel, 0..=255.
    pub b: u8,
    /// Alpha channel, 0 = transparent, 255 = opaque.
    pub a: u8,
}

impl Color {
    /// Opaque black, the Canvas default fill style.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Opaque white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Fully transparent black, the canvas backing-store initial value.
    pub const TRANSPARENT: Color = Color::rgba(0, 0, 0, 0);

    /// An opaque color from RGB channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b, a: 255 }
    }

    /// A color from RGBA channels (straight alpha).
    pub const fn rgba(r: u8, g: u8, b: u8, a: u8) -> Color {
        Color { r, g, b, a }
    }

    /// Returns the color with its alpha scaled by `alpha` in `[0, 1]`
    /// (used for `globalAlpha`).
    pub fn with_alpha_scaled(self, alpha: f64) -> Color {
        let a = (self.a as f64 * alpha.clamp(0.0, 1.0)).round() as u8;
        Color { a, ..self }
    }

    /// Component-wise linear interpolation toward `other` (used by
    /// gradient stops). `t` is clamped to `[0, 1]`.
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
        Color {
            r: mix(self.r, other.r),
            g: mix(self.g, other.g),
            b: mix(self.b, other.b),
            a: mix(self.a, other.a),
        }
    }
}

/// Error produced when a CSS color string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorParseError {
    /// The offending input, for diagnostics.
    pub input: String,
}

impl std::fmt::Display for ColorParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid CSS color: {:?}", self.input)
    }
}

impl std::error::Error for ColorParseError {}

/// Named colors used by canvas fingerprinting scripts in the wild, plus the
/// CSS Level 1 basic palette. Kept sorted for binary search.
const NAMED: &[(&str, Color)] = &[
    ("aqua", Color::rgb(0, 255, 255)),
    ("black", Color::BLACK),
    ("blue", Color::rgb(0, 0, 255)),
    ("coral", Color::rgb(255, 127, 80)),
    ("crimson", Color::rgb(220, 20, 60)),
    ("fuchsia", Color::rgb(255, 0, 255)),
    ("gold", Color::rgb(255, 215, 0)),
    ("gray", Color::rgb(128, 128, 128)),
    ("green", Color::rgb(0, 128, 0)),
    ("grey", Color::rgb(128, 128, 128)),
    ("lime", Color::rgb(0, 255, 0)),
    ("maroon", Color::rgb(128, 0, 0)),
    ("navy", Color::rgb(0, 0, 128)),
    ("olive", Color::rgb(128, 128, 0)),
    ("orange", Color::rgb(255, 165, 0)),
    ("pink", Color::rgb(255, 192, 203)),
    ("purple", Color::rgb(128, 0, 128)),
    ("red", Color::rgb(255, 0, 0)),
    ("silver", Color::rgb(192, 192, 192)),
    ("teal", Color::rgb(0, 128, 128)),
    ("tomato", Color::rgb(255, 99, 71)),
    ("transparent", Color::TRANSPARENT),
    ("white", Color::WHITE),
    ("yellow", Color::rgb(255, 255, 0)),
];

/// Parses a CSS color string. Whitespace around the value is ignored and
/// matching is ASCII case-insensitive, per CSS.
pub fn parse_css_color(input: &str) -> Result<Color, ColorParseError> {
    let s = input.trim();
    let err = || ColorParseError {
        input: input.to_string(),
    };
    if let Some(hex) = s.strip_prefix('#') {
        return parse_hex(hex).ok_or_else(err);
    }
    let lower = s.to_ascii_lowercase();
    if let Ok(idx) = NAMED.binary_search_by(|(name, _)| name.cmp(&&lower[..])) {
        return Ok(NAMED[idx].1);
    }
    if let Some(body) = func_body(&lower, "rgba").or_else(|| func_body(&lower, "rgb")) {
        return parse_rgb_body(body).ok_or_else(err);
    }
    if let Some(body) = func_body(&lower, "hsla").or_else(|| func_body(&lower, "hsl")) {
        return parse_hsl_body(body).ok_or_else(err);
    }
    Err(err())
}

fn func_body<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let rest = s.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn parse_hex(hex: &str) -> Option<Color> {
    let v: Vec<u8> = hex
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    match v.len() {
        3 => Some(Color::rgb(v[0] * 17, v[1] * 17, v[2] * 17)),
        4 => Some(Color::rgba(v[0] * 17, v[1] * 17, v[2] * 17, v[3] * 17)),
        6 => Some(Color::rgb(
            v[0] * 16 + v[1],
            v[2] * 16 + v[3],
            v[4] * 16 + v[5],
        )),
        8 => Some(Color::rgba(
            v[0] * 16 + v[1],
            v[2] * 16 + v[3],
            v[4] * 16 + v[5],
            v[6] * 16 + v[7],
        )),
        _ => None,
    }
}

fn parse_channel(s: &str) -> Option<u8> {
    let s = s.trim();
    if let Some(pct) = s.strip_suffix('%') {
        let v: f64 = pct.trim().parse().ok()?;
        return Some((v.clamp(0.0, 100.0) * 255.0 / 100.0).round() as u8);
    }
    let v: f64 = s.parse().ok()?;
    Some(v.clamp(0.0, 255.0).round() as u8)
}

fn parse_alpha(s: &str) -> Option<u8> {
    let s = s.trim();
    if let Some(pct) = s.strip_suffix('%') {
        let v: f64 = pct.trim().parse().ok()?;
        return Some((v.clamp(0.0, 100.0) * 255.0 / 100.0).round() as u8);
    }
    let v: f64 = s.parse().ok()?;
    Some((v.clamp(0.0, 1.0) * 255.0).round() as u8)
}

fn parse_rgb_body(body: &str) -> Option<Color> {
    let parts: Vec<&str> = body.split(',').collect();
    match parts.len() {
        3 => Some(Color::rgb(
            parse_channel(parts[0])?,
            parse_channel(parts[1])?,
            parse_channel(parts[2])?,
        )),
        4 => Some(Color::rgba(
            parse_channel(parts[0])?,
            parse_channel(parts[1])?,
            parse_channel(parts[2])?,
            parse_alpha(parts[3])?,
        )),
        _ => None,
    }
}

fn parse_hsl_body(body: &str) -> Option<Color> {
    let parts: Vec<&str> = body.split(',').collect();
    if parts.len() != 3 && parts.len() != 4 {
        return None;
    }
    let h: f64 = parts[0].trim().trim_end_matches("deg").parse().ok()?;
    let s: f64 = parts[1].trim().strip_suffix('%')?.parse().ok()?;
    let l: f64 = parts[2].trim().strip_suffix('%')?.parse().ok()?;
    let a = if parts.len() == 4 {
        parse_alpha(parts[3])?
    } else {
        255
    };
    let (r, g, b) = hsl_to_rgb(h, s / 100.0, l / 100.0);
    Some(Color::rgba(r, g, b, a))
}

fn hsl_to_rgb(h: f64, s: f64, l: f64) -> (u8, u8, u8) {
    let h = h.rem_euclid(360.0) / 360.0;
    let s = s.clamp(0.0, 1.0);
    let l = l.clamp(0.0, 1.0);
    if s == 0.0 {
        let v = (l * 255.0).round() as u8;
        return (v, v, v);
    }
    let q = if l < 0.5 {
        l * (1.0 + s)
    } else {
        l + s - l * s
    };
    let p = 2.0 * l - q;
    let hue = |mut t: f64| -> f64 {
        if t < 0.0 {
            t += 1.0;
        }
        if t > 1.0 {
            t -= 1.0;
        }
        if t < 1.0 / 6.0 {
            p + (q - p) * 6.0 * t
        } else if t < 0.5 {
            q
        } else if t < 2.0 / 3.0 {
            p + (q - p) * (2.0 / 3.0 - t) * 6.0
        } else {
            p
        }
    };
    (
        (hue(h + 1.0 / 3.0) * 255.0).round() as u8,
        (hue(h) * 255.0).round() as u8,
        (hue(h - 1.0 / 3.0) * 255.0).round() as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for w in NAMED.windows(2) {
            assert!(w[0].0 < w[1].0, "{} >= {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn parses_short_hex() {
        assert_eq!(parse_css_color("#069").unwrap(), Color::rgb(0, 0x66, 0x99));
        assert_eq!(parse_css_color("#f00").unwrap(), Color::rgb(255, 0, 0));
    }

    #[test]
    fn parses_long_hex_with_alpha() {
        assert_eq!(
            parse_css_color("#11223344").unwrap(),
            Color::rgba(0x11, 0x22, 0x33, 0x44)
        );
    }

    #[test]
    fn parses_named_colors_case_insensitively() {
        assert_eq!(parse_css_color("Orange").unwrap(), Color::rgb(255, 165, 0));
        assert_eq!(
            parse_css_color("  tomato ").unwrap(),
            Color::rgb(255, 99, 71)
        );
        assert_eq!(parse_css_color("transparent").unwrap().a, 0);
    }

    #[test]
    fn parses_rgb_functions() {
        assert_eq!(
            parse_css_color("rgb(102, 204, 0)").unwrap(),
            Color::rgb(102, 204, 0)
        );
        assert_eq!(
            parse_css_color("rgba(255, 0, 255, 0.5)").unwrap(),
            Color::rgba(255, 0, 255, 128)
        );
        assert_eq!(
            parse_css_color("rgb(100%, 0%, 50%)").unwrap(),
            Color::rgb(255, 0, 128)
        );
    }

    #[test]
    fn parses_hsl() {
        assert_eq!(
            parse_css_color("hsl(0, 100%, 50%)").unwrap(),
            Color::rgb(255, 0, 0)
        );
        assert_eq!(
            parse_css_color("hsl(120, 100%, 50%)").unwrap(),
            Color::rgb(0, 255, 0)
        );
        let c = parse_css_color("hsla(240, 100%, 50%, 0.25)").unwrap();
        assert_eq!((c.b, c.a), (255, 64));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "#12", "#12345", "rgb(1,2)", "hsl(0,0,0)", "blurple"] {
            assert!(parse_css_color(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(200, 100, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Color::rgb(100, 50, 25));
    }

    #[test]
    fn alpha_scaling_clamps() {
        let c = Color::rgba(10, 20, 30, 200);
        assert_eq!(c.with_alpha_scaled(0.5).a, 100);
        assert_eq!(c.with_alpha_scaled(2.0).a, 200);
        assert_eq!(c.with_alpha_scaled(-1.0).a, 0);
    }
}
