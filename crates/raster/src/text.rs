//! Text layout and glyph rasterization.
//!
//! Glyphs come from an embedded 5×7 bitmap face. Each lit cell is turned
//! into a rectangle polygon in em space; the polygons are scaled to the
//! font size, sheared for italics, thickened for bold weights, jittered
//! per-device, transformed by the canvas CTM, and rasterized through the
//! same anti-aliased fill pipeline as every other shape. Because the
//! device profile perturbs both advance widths and edge coverage, two
//! devices render the same `fillText` measurably differently — the canvas
//! fingerprinting signal.
//!
//! Characters outside the embedded face (notably emoji such as U+1F603 😃,
//! used by FingerprintJS) are drawn procedurally; unknown characters fall
//! back to a deterministic hash-derived glyph so every code point renders
//! *something* stable.

use crate::device::DeviceProfile;
use crate::geom::{Point, Transform};
use crate::path::Polygon;

/// Font style parsed from a CSS font shorthand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FontStyle {
    /// Upright.
    #[default]
    Normal,
    /// Sheared ~12°.
    Italic,
}

/// `textBaseline` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextBaseline {
    /// Baseline at the alphabetic line (canvas default).
    #[default]
    Alphabetic,
    /// Baseline at the em-box top.
    Top,
    /// Baseline at the em-box middle.
    Middle,
    /// Baseline at the em-box bottom.
    Bottom,
}

impl TextBaseline {
    /// Parses the canvas `textBaseline` string.
    pub fn parse(s: &str) -> Option<TextBaseline> {
        match s {
            "alphabetic" => Some(TextBaseline::Alphabetic),
            "top" | "hanging" => Some(TextBaseline::Top),
            "middle" => Some(TextBaseline::Middle),
            "bottom" | "ideographic" => Some(TextBaseline::Bottom),
            _ => None,
        }
    }
}

/// A parsed CSS font shorthand (the subset canvas scripts use).
#[derive(Debug, Clone, PartialEq)]
pub struct FontSpec {
    /// normal / italic.
    pub style: FontStyle,
    /// CSS weight 100..=900; 400 = normal, ≥600 renders bold.
    pub weight: u16,
    /// Size in CSS pixels.
    pub size_px: f64,
    /// First family name, unquoted, lowercased.
    pub family: String,
}

impl Default for FontSpec {
    fn default() -> Self {
        // The canvas default font is "10px sans-serif".
        FontSpec {
            style: FontStyle::Normal,
            weight: 400,
            size_px: 10.0,
            family: "sans-serif".into(),
        }
    }
}

/// Parses a CSS font shorthand like `italic 700 14px "Arial"` or
/// `11pt no-real-font-123`. Returns `None` when no size token is present
/// (the canvas then keeps its previous font, per spec).
pub fn parse_font(input: &str) -> Option<FontSpec> {
    let mut spec = FontSpec::default();
    let mut size_seen = false;
    let mut family_parts: Vec<String> = Vec::new();
    for token in input.split_whitespace() {
        if size_seen {
            family_parts.push(token.to_string());
            continue;
        }
        let lower = token.to_ascii_lowercase();
        match lower.as_str() {
            "normal" => {}
            "italic" | "oblique" => spec.style = FontStyle::Italic,
            "bold" => spec.weight = 700,
            "bolder" => spec.weight = 800,
            "lighter" => spec.weight = 300,
            _ => {
                if let Some(size) = parse_size(&lower) {
                    spec.size_px = size;
                    size_seen = true;
                } else if let Ok(w) = lower.parse::<u16>() {
                    if (100..=900).contains(&w) && w % 100 == 0 {
                        spec.weight = w;
                    }
                }
                // Unrecognized pre-size tokens are ignored, like browsers do.
            }
        }
    }
    if !size_seen {
        return None;
    }
    if !family_parts.is_empty() {
        // Only the first family matters for our rendering model; keep the
        // full comma-separated head up to the first comma.
        let joined = family_parts.join(" ");
        let first = joined
            .split(',')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches(['"', '\''])
            .trim()
            .to_string();
        if !first.is_empty() {
            spec.family = first.to_ascii_lowercase();
        }
    }
    Some(spec)
}

fn parse_size(token: &str) -> Option<f64> {
    // Strip a trailing comma (size is never comma-separated, but be lenient).
    let token = token.trim_end_matches(',');
    if let Some(v) = token.strip_suffix("px") {
        return v.parse().ok();
    }
    if let Some(v) = token.strip_suffix("pt") {
        let pt: f64 = v.parse().ok()?;
        return Some(pt * 4.0 / 3.0);
    }
    if let Some(v) = token.strip_suffix("em") {
        let em: f64 = v.parse().ok()?;
        return Some(em * 16.0);
    }
    None
}

/// Glyph cell geometry: 5 columns × 7 rows above/at baseline, descenders
/// reach 2 rows below. The em box is `EM_ROWS` rows tall.
const GLYPH_COLS: usize = 5;
const GLYPH_ROWS: usize = 7;
/// Rows in the em box (7 body + 2 descender).
const EM_ROWS: f64 = 9.0;
/// Advance in cells (5 columns + 1 spacing).
const ADVANCE_COLS: f64 = 6.0;

/// A 5×7 glyph: row bitmaps (bit 4 = leftmost pixel) plus a descender
/// offset in rows.
#[derive(Clone, Copy)]
struct Glyph {
    rows: [u8; GLYPH_ROWS],
    desc: u8,
}

const fn g(rows: [u8; 7]) -> Glyph {
    Glyph { rows, desc: 0 }
}

const fn gd(rows: [u8; 7], desc: u8) -> Glyph {
    Glyph { rows, desc }
}

/// Embedded face for printable ASCII (0x20..=0x7E), hand-authored in the
/// classic 5×7 dot-matrix style.
#[rustfmt::skip]
fn ascii_glyph(c: char) -> Option<Glyph> {
    Some(match c {
        ' ' => g([0, 0, 0, 0, 0, 0, 0]),
        '!' => g([0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0, 0b00100]),
        '"' => g([0b01010, 0b01010, 0b01010, 0, 0, 0, 0]),
        '#' => g([0b01010, 0b01010, 0b11111, 0b01010, 0b11111, 0b01010, 0b01010]),
        '$' => g([0b00100, 0b01111, 0b10100, 0b01110, 0b00101, 0b11110, 0b00100]),
        '%' => g([0b11000, 0b11001, 0b00010, 0b00100, 0b01000, 0b10011, 0b00011]),
        '&' => g([0b01100, 0b10010, 0b10100, 0b01000, 0b10101, 0b10010, 0b01101]),
        '\'' => g([0b00100, 0b00100, 0b01000, 0, 0, 0, 0]),
        '(' => g([0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010]),
        ')' => g([0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000]),
        '*' => g([0, 0b00100, 0b10101, 0b01110, 0b10101, 0b00100, 0]),
        '+' => g([0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0]),
        ',' => gd([0, 0, 0, 0, 0, 0b00100, 0b01000], 1),
        '-' => g([0, 0, 0, 0b11111, 0, 0, 0]),
        '.' => g([0, 0, 0, 0, 0, 0b01100, 0b01100]),
        '/' => g([0, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0]),
        '0' => g([0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110]),
        '1' => g([0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110]),
        '2' => g([0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111]),
        '3' => g([0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110]),
        '4' => g([0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010]),
        '5' => g([0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110]),
        '6' => g([0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110]),
        '7' => g([0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000]),
        '8' => g([0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110]),
        '9' => g([0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100]),
        ':' => g([0, 0b01100, 0b01100, 0, 0b01100, 0b01100, 0]),
        ';' => gd([0, 0b01100, 0b01100, 0, 0b01100, 0b00100, 0b01000], 1),
        '<' => g([0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010]),
        '=' => g([0, 0, 0b11111, 0, 0b11111, 0, 0]),
        '>' => g([0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000]),
        '?' => g([0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100]),
        '@' => g([0b01110, 0b10001, 0b00001, 0b01101, 0b10101, 0b10101, 0b01110]),
        'A' => g([0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001]),
        'B' => g([0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110]),
        'C' => g([0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110]),
        'D' => g([0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100]),
        'E' => g([0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111]),
        'F' => g([0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000]),
        'G' => g([0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111]),
        'H' => g([0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001]),
        'I' => g([0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110]),
        'J' => g([0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100]),
        'K' => g([0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001]),
        'L' => g([0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111]),
        'M' => g([0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001]),
        'N' => g([0b10001, 0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001]),
        'O' => g([0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110]),
        'P' => g([0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000]),
        'Q' => g([0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101]),
        'R' => g([0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001]),
        'S' => g([0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110]),
        'T' => g([0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100]),
        'U' => g([0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110]),
        'V' => g([0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100]),
        'W' => g([0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010]),
        'X' => g([0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001]),
        'Y' => g([0b10001, 0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100]),
        'Z' => g([0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111]),
        '[' => g([0b01110, 0b01000, 0b01000, 0b01000, 0b01000, 0b01000, 0b01110]),
        '\\' => g([0, 0b10000, 0b01000, 0b00100, 0b00010, 0b00001, 0]),
        ']' => g([0b01110, 0b00010, 0b00010, 0b00010, 0b00010, 0b00010, 0b01110]),
        '^' => g([0b00100, 0b01010, 0b10001, 0, 0, 0, 0]),
        '_' => g([0, 0, 0, 0, 0, 0, 0b11111]),
        '`' => g([0b01000, 0b00100, 0b00010, 0, 0, 0, 0]),
        'a' => g([0, 0, 0b01110, 0b00001, 0b01111, 0b10001, 0b01111]),
        'b' => g([0b10000, 0b10000, 0b10110, 0b11001, 0b10001, 0b10001, 0b11110]),
        'c' => g([0, 0, 0b01110, 0b10000, 0b10000, 0b10001, 0b01110]),
        'd' => g([0b00001, 0b00001, 0b01101, 0b10011, 0b10001, 0b10001, 0b01111]),
        'e' => g([0, 0, 0b01110, 0b10001, 0b11111, 0b10000, 0b01110]),
        'f' => g([0b00110, 0b01001, 0b01000, 0b11100, 0b01000, 0b01000, 0b01000]),
        'g' => gd([0, 0b01111, 0b10001, 0b10001, 0b01111, 0b00001, 0b01110], 2),
        'h' => g([0b10000, 0b10000, 0b10110, 0b11001, 0b10001, 0b10001, 0b10001]),
        'i' => g([0b00100, 0, 0b01100, 0b00100, 0b00100, 0b00100, 0b01110]),
        'j' => gd([0b00010, 0, 0b00110, 0b00010, 0b00010, 0b10010, 0b01100], 2),
        'k' => g([0b10000, 0b10000, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010]),
        'l' => g([0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110]),
        'm' => g([0, 0, 0b11010, 0b10101, 0b10101, 0b10101, 0b10101]),
        'n' => g([0, 0, 0b10110, 0b11001, 0b10001, 0b10001, 0b10001]),
        'o' => g([0, 0, 0b01110, 0b10001, 0b10001, 0b10001, 0b01110]),
        'p' => gd([0, 0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000], 2),
        'q' => gd([0, 0b01111, 0b10001, 0b10001, 0b01111, 0b00001, 0b00001], 2),
        'r' => g([0, 0, 0b10110, 0b11001, 0b10000, 0b10000, 0b10000]),
        's' => g([0, 0, 0b01111, 0b10000, 0b01110, 0b00001, 0b11110]),
        't' => g([0b01000, 0b01000, 0b11100, 0b01000, 0b01000, 0b01001, 0b00110]),
        'u' => g([0, 0, 0b10001, 0b10001, 0b10001, 0b10011, 0b01101]),
        'v' => g([0, 0, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100]),
        'w' => g([0, 0, 0b10001, 0b10001, 0b10101, 0b10101, 0b01010]),
        'x' => g([0, 0, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001]),
        'y' => gd([0, 0b10001, 0b10001, 0b10001, 0b01111, 0b00001, 0b01110], 2),
        'z' => g([0, 0, 0b11111, 0b00010, 0b00100, 0b01000, 0b11111]),
        '{' => g([0b00010, 0b00100, 0b00100, 0b01000, 0b00100, 0b00100, 0b00010]),
        '|' => g([0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100]),
        '}' => g([0b01000, 0b00100, 0b00100, 0b00010, 0b00100, 0b00100, 0b01000]),
        '~' => g([0, 0, 0b01000, 0b10101, 0b00010, 0, 0]),
        _ => return None,
    })
}

/// A deterministic fallback glyph for characters outside the embedded face.
/// The pattern is a pure function of the code point, so "unknown" text still
/// renders stably (like a real font's notdef/boxed glyph, but distinct per
/// character so different strings produce different canvases).
fn fallback_glyph(c: char) -> Glyph {
    let cp = c as u32;
    let mut h: u64 = 0x9e3779b97f4a7c15 ^ (cp as u64);
    let mut rows = [0u8; GLYPH_ROWS];
    // Box outline with hash-derived interior.
    rows[0] = 0b11111;
    rows[GLYPH_ROWS - 1] = 0b11111;
    for row in rows.iter_mut().take(GLYPH_ROWS - 1).skip(1) {
        h ^= h >> 13;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        *row = 0b10001 | ((h as u8) & 0b01110);
    }
    g(rows)
}

/// A glyph placed in user space, carrying its polygons (em-space already
/// scaled to the font size and positioned at the pen).
#[derive(Debug, Clone)]
pub struct PlacedGlyph {
    /// The character this glyph renders.
    pub ch: char,
    /// Filled polygons in user space.
    pub polygons: Vec<Polygon>,
    /// Pen advance consumed by this glyph, user-space units.
    pub advance: f64,
}

/// Lays out `text` starting at user-space position `(x, y)` (the pen is at
/// the `baseline`). Returns placed glyphs whose polygons are ready to be
/// transformed by the CTM and rasterized.
pub fn layout_text(
    text: &str,
    x: f64,
    y: f64,
    spec: &FontSpec,
    baseline: TextBaseline,
    device: &DeviceProfile,
) -> Vec<PlacedGlyph> {
    let scale = spec.size_px / EM_ROWS;
    // Baseline adjustment: pen y is where the alphabetic baseline sits.
    let baseline_rows = match baseline {
        TextBaseline::Alphabetic => GLYPH_ROWS as f64,
        TextBaseline::Top => 0.0,
        TextBaseline::Middle => EM_ROWS / 2.0,
        TextBaseline::Bottom => EM_ROWS,
    };
    let top_y = y - baseline_rows * scale;
    let italic_shear = match spec.style {
        FontStyle::Normal => 0.0,
        FontStyle::Italic => 0.21,
    };
    let bold_extra = if spec.weight >= 600 { 0.25 } else { 0.0 };

    let mut pen_x = x;
    let mut out = Vec::new();
    for ch in text.chars() {
        let (polys, advance_cells) = glyph_polygons(ch, spec, device);
        let mut placed = Vec::with_capacity(polys.len());
        // Per-glyph deterministic jitter (device + family dependent).
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(spec.family.as_bytes());
        key.push(b':');
        key.extend_from_slice(&(ch as u32).to_le_bytes());
        let adv_jit = device.jitter_unit(&key) * device.glyph_jitter * 0.01;
        key.push(b'v');
        let v_jit = device.jitter_unit(&key) * device.glyph_jitter * 0.006;

        for poly in polys {
            let pts = poly
                .points
                .iter()
                .map(|p| {
                    // p is in cell units (x in columns, y in rows, 0 = top).
                    let gy = top_y + (p.y + v_jit * EM_ROWS) * scale;
                    let shear = italic_shear * (GLYPH_ROWS as f64 - p.y) * scale;
                    let gx = pen_x + (p.x + bold_extra * 0.0) * scale + shear;
                    Point::new(gx, gy)
                })
                .collect();
            placed.push(Polygon {
                points: pts,
                closed: poly.closed,
            });
        }
        // Bold: duplicate polygons shifted right by a fraction of a cell.
        if bold_extra > 0.0 {
            let dup: Vec<Polygon> = placed
                .iter()
                .map(|poly| Polygon {
                    points: poly
                        .points
                        .iter()
                        .map(|p| Point::new(p.x + bold_extra * scale, p.y))
                        .collect(),
                    closed: poly.closed,
                })
                .collect();
            placed.extend(dup);
        }
        let advance = (advance_cells + adv_jit * ADVANCE_COLS) * scale;
        out.push(PlacedGlyph {
            ch,
            polygons: placed,
            advance,
        });
        pen_x += advance;
    }
    out
}

/// Measures text width in user-space units (the `measureText().width`
/// value), including device jitter — on real machines `measureText` is
/// itself a fingerprinting surface.
pub fn measure_text(text: &str, spec: &FontSpec, device: &DeviceProfile) -> f64 {
    layout_text(text, 0.0, 0.0, spec, TextBaseline::Alphabetic, device)
        .iter()
        .map(|g| g.advance)
        .sum()
}

/// Produces the filled polygons for one character in glyph cell space
/// (x: columns, y: rows from the glyph-box top). Returns the polygons and
/// the advance in cells.
fn glyph_polygons(ch: char, spec: &FontSpec, device: &DeviceProfile) -> (Vec<Polygon>, f64) {
    if let Some(polys) = emoji_polygons(ch) {
        return (polys, EM_ROWS); // emoji are square, advance = em
    }
    let glyph = ascii_glyph(ch).unwrap_or_else(|| fallback_glyph(ch));
    let _ = device;
    let _ = spec;
    let desc = glyph.desc as f64;
    let mut polys = Vec::new();
    // Merge horizontal runs per row into single rects to keep polygon
    // counts low.
    for (row, &bits) in glyph.rows.iter().enumerate() {
        let ry = row as f64 + desc;
        let mut col = 0usize;
        while col < GLYPH_COLS {
            let lit = bits & (1 << (GLYPH_COLS - 1 - col)) != 0;
            if !lit {
                col += 1;
                continue;
            }
            let start = col;
            while col < GLYPH_COLS && bits & (1 << (GLYPH_COLS - 1 - col)) != 0 {
                col += 1;
            }
            polys.push(rect_poly(start as f64, ry, (col - start) as f64, 1.0));
        }
    }
    (polys, ADVANCE_COLS)
}

/// Procedural emoji glyphs. Only the faces used by the fingerprinting
/// scripts we model are implemented; others use the fallback glyph.
fn emoji_polygons(ch: char) -> Option<Vec<Polygon>> {
    match ch {
        // U+1F603 smiling face with open mouth — the FingerprintJS emoji.
        '\u{1F603}' => {
            // Face disk (CCW) centered in the 9x9 em box; eyes and mouth
            // as CW holes (nonzero winding subtracts them).
            Some(vec![
                disk_poly(4.5, 4.0, 3.8, false),
                rect_poly_cw(2.8, 2.4, 1.0, 1.4),
                rect_poly_cw(5.2, 2.4, 1.0, 1.4),
                disk_poly(4.5, 5.2, 1.7, true),
            ])
        }
        // U+1F600 grinning face — used by some emoji-probe scripts.
        '\u{1F600}' => Some(vec![
            disk_poly(4.5, 4.0, 3.8, false),
            rect_poly_cw(2.6, 2.6, 1.2, 1.0),
            rect_poly_cw(5.2, 2.6, 1.2, 1.0),
            rect_poly_cw(2.8, 5.0, 3.4, 1.2),
        ]),
        _ => None,
    }
}

fn rect_poly(x: f64, y: f64, w: f64, h: f64) -> Polygon {
    Polygon {
        points: vec![
            Point::new(x, y),
            Point::new(x + w, y),
            Point::new(x + w, y + h),
            Point::new(x, y + h),
        ],
        closed: true,
    }
}

fn rect_poly_cw(x: f64, y: f64, w: f64, h: f64) -> Polygon {
    Polygon {
        points: vec![
            Point::new(x, y),
            Point::new(x, y + h),
            Point::new(x + w, y + h),
            Point::new(x + w, y),
        ],
        closed: true,
    }
}

fn disk_poly(cx: f64, cy: f64, r: f64, clockwise: bool) -> Polygon {
    const N: usize = 16;
    let mut pts = Vec::with_capacity(N);
    for i in 0..N {
        let ang = std::f64::consts::TAU * i as f64 / N as f64;
        let (s, c) = ang.sin_cos();
        pts.push(Point::new(cx + r * c, cy + r * s));
    }
    if clockwise {
        pts.reverse();
    }
    Polygon {
        points: pts,
        closed: true,
    }
}

/// Transforms placed glyph polygons by the CTM (helper for the canvas).
pub fn transform_glyphs(glyphs: &[PlacedGlyph], ctm: &Transform) -> Vec<Polygon> {
    let mut out = Vec::new();
    for glyph in glyphs {
        for poly in &glyph.polygons {
            out.push(Polygon {
                points: poly.points.iter().map(|p| ctm.apply(*p)).collect(),
                closed: poly.closed,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intel() -> DeviceProfile {
        DeviceProfile::intel_ubuntu()
    }

    #[test]
    fn parses_fingerprintjs_font() {
        // FingerprintJS uses `11pt "Times New Roman"` and `11pt no-real-font-123`.
        let spec = parse_font("11pt no-real-font-123").unwrap();
        assert!((spec.size_px - 11.0 * 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(spec.family, "no-real-font-123");
        let spec = parse_font("italic 700 14px \"Arial\", sans-serif").unwrap();
        assert_eq!(spec.style, FontStyle::Italic);
        assert_eq!(spec.weight, 700);
        assert_eq!(spec.size_px, 14.0);
        assert_eq!(spec.family, "arial");
    }

    #[test]
    fn font_without_size_is_rejected() {
        assert!(parse_font("Arial").is_none());
        assert!(parse_font("").is_none());
    }

    #[test]
    fn bold_keyword_sets_weight() {
        let spec = parse_font("bold 16px mono").unwrap();
        assert_eq!(spec.weight, 700);
    }

    #[test]
    fn all_printable_ascii_have_glyphs() {
        for b in 0x20u8..=0x7e {
            assert!(
                ascii_glyph(b as char).is_some(),
                "missing glyph {:?}",
                b as char
            );
        }
    }

    #[test]
    fn fallback_glyph_is_deterministic_and_distinct() {
        let a1 = fallback_glyph('é').rows;
        let a2 = fallback_glyph('é').rows;
        let b = fallback_glyph('ü').rows;
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn layout_advances_pen() {
        let spec = FontSpec::default();
        let glyphs = layout_text("ab", 0.0, 10.0, &spec, TextBaseline::Alphabetic, &intel());
        assert_eq!(glyphs.len(), 2);
        assert!(glyphs[0].advance > 0.0);
    }

    #[test]
    fn measure_text_scales_with_size() {
        let mut spec = FontSpec::default();
        let w10 = measure_text("Cwm fjordbank", &spec, &intel());
        spec.size_px = 20.0;
        let w20 = measure_text("Cwm fjordbank", &spec, &intel());
        assert!((w20 / w10 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn measure_differs_across_devices_with_jitter() {
        let spec = FontSpec {
            family: "arial".into(),
            ..FontSpec::default()
        };
        let intel = measure_text("mmmmmmmm", &spec, &DeviceProfile::intel_ubuntu());
        let m1 = measure_text("mmmmmmmm", &spec, &DeviceProfile::apple_m1());
        // Intel profile has zero jitter; M1 doesn't.
        assert_ne!(intel, m1);
    }

    #[test]
    fn emoji_has_polygons() {
        let (polys, adv) = glyph_polygons('\u{1F603}', &FontSpec::default(), &intel());
        assert!(polys.len() >= 4);
        assert_eq!(adv, EM_ROWS);
    }

    #[test]
    fn italic_shears_glyphs() {
        let normal = FontSpec::default();
        let italic = FontSpec {
            style: FontStyle::Italic,
            ..FontSpec::default()
        };
        let gn = layout_text("l", 0.0, 10.0, &normal, TextBaseline::Alphabetic, &intel());
        let gi = layout_text("l", 0.0, 10.0, &italic, TextBaseline::Alphabetic, &intel());
        let max_x = |gs: &[PlacedGlyph]| {
            gs[0]
                .polygons
                .iter()
                .flat_map(|p| p.points.iter())
                .map(|p| p.x)
                .fold(f64::MIN, f64::max)
        };
        assert!(max_x(&gi) > max_x(&gn), "italic should lean right");
    }

    #[test]
    fn baseline_modes_shift_vertically() {
        let spec = FontSpec::default();
        let top = layout_text("A", 0.0, 50.0, &spec, TextBaseline::Top, &intel());
        let alpha = layout_text("A", 0.0, 50.0, &spec, TextBaseline::Alphabetic, &intel());
        let min_y = |gs: &[PlacedGlyph]| {
            gs[0]
                .polygons
                .iter()
                .flat_map(|p| p.points.iter())
                .map(|p| p.y)
                .fold(f64::MAX, f64::min)
        };
        assert!(min_y(&top) > min_y(&alpha) - 1e9); // sanity
        assert!(min_y(&alpha) < min_y(&top) + spec.size_px);
        assert!(min_y(&top) >= 50.0 - 1e-9);
    }

    #[test]
    fn text_baseline_parse() {
        assert_eq!(TextBaseline::parse("top"), Some(TextBaseline::Top));
        assert_eq!(
            TextBaseline::parse("alphabetic"),
            Some(TextBaseline::Alphabetic)
        );
        assert_eq!(TextBaseline::parse("weird"), None);
    }
}
