//! Planar geometry primitives used by the rasterizer.
//!
//! All math is `f64` and fully deterministic: the same inputs produce the
//! same outputs on every platform we target (we avoid `sin`/`cos` table
//! differences by relying only on libm-backed `f64` intrinsics, which are
//! IEEE-754 correctly rounded for the operations we use).

/// A point (or vector) in canvas user space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate, increasing to the right.
    pub x: f64,
    /// Vertical coordinate, increasing downward (canvas convention).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Linear interpolation between `self` and `other` at parameter `t`.
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned rectangle, used for canvas clipping and dirty regions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width; may be zero but never negative in a normalized rect.
    pub w: f64,
    /// Height; may be zero but never negative in a normalized rect.
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle; negative sizes are normalized so `w`/`h` end up
    /// non-negative, matching Canvas `fillRect` semantics.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        let (x, w) = if w < 0.0 { (x + w, -w) } else { (x, w) };
        let (y, h) = if h < 0.0 { (y + h, -h) } else { (y, h) };
        Rect { x, y, w, h }
    }

    /// Right edge.
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    /// Whether the rectangle contains the point (left/top inclusive,
    /// right/bottom exclusive, pixel-grid convention).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// Intersection of two rectangles, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        if r > x && b > y {
            Some(Rect::new(x, y, r - x, b - y))
        } else {
            None
        }
    }
}

/// A 2-D affine transform in the canvas convention:
///
/// ```text
/// | a c e |   | x |
/// | b d f | * | y |
/// | 0 0 1 |   | 1 |
/// ```
///
/// matching the argument order of `CanvasRenderingContext2D.transform`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform {
    /// Horizontal scale.
    pub a: f64,
    /// Vertical shear.
    pub b: f64,
    /// Horizontal shear.
    pub c: f64,
    /// Vertical scale.
    pub d: f64,
    /// Horizontal translation.
    pub e: f64,
    /// Vertical translation.
    pub f: f64,
}

impl Default for Transform {
    fn default() -> Self {
        Transform::identity()
    }
}

impl Transform {
    /// The identity transform.
    pub const fn identity() -> Self {
        Transform {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: 1.0,
            e: 0.0,
            f: 0.0,
        }
    }

    /// A pure translation.
    pub const fn translate(tx: f64, ty: f64) -> Self {
        Transform {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: 1.0,
            e: tx,
            f: ty,
        }
    }

    /// A pure (possibly anisotropic) scale.
    pub const fn scale(sx: f64, sy: f64) -> Self {
        Transform {
            a: sx,
            b: 0.0,
            c: 0.0,
            d: sy,
            e: 0.0,
            f: 0.0,
        }
    }

    /// A rotation by `theta` radians (clockwise in canvas space).
    pub fn rotate(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Transform {
            a: c,
            b: s,
            c: -s,
            d: c,
            e: 0.0,
            f: 0.0,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point) -> Point {
        Point::new(
            self.a * p.x + self.c * p.y + self.e,
            self.b * p.x + self.d * p.y + self.f,
        )
    }

    /// Composes `self * other` (i.e. `other` is applied first).
    pub fn then(&self, other: &Transform) -> Transform {
        Transform {
            a: self.a * other.a + self.c * other.b,
            b: self.b * other.a + self.d * other.b,
            c: self.a * other.c + self.c * other.d,
            d: self.b * other.c + self.d * other.d,
            e: self.a * other.e + self.c * other.f + self.e,
            f: self.b * other.e + self.d * other.f + self.f,
        }
    }

    /// Determinant of the linear part; zero means the transform is singular.
    pub fn det(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Inverse transform, or `None` when singular.
    pub fn invert(&self) -> Option<Transform> {
        let det = self.det();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Transform {
            a: self.d * inv,
            b: -self.b * inv,
            c: -self.c * inv,
            d: self.a * inv,
            e: (self.c * self.f - self.d * self.e) * inv,
            f: (self.b * self.e - self.a * self.f) * inv,
        })
    }

    /// Whether the transform is exactly the identity.
    pub fn is_identity(&self) -> bool {
        *self == Transform::identity()
    }

    /// An upper bound on the scale factor applied to any unit vector,
    /// used to pick flattening tolerances for curves.
    pub fn max_scale(&self) -> f64 {
        let sx = (self.a * self.a + self.b * self.b).sqrt();
        let sy = (self.c * self.c + self.d * self.d).sqrt();
        sx.max(sy).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_negative_sizes() {
        let r = Rect::new(10.0, 10.0, -4.0, -6.0);
        assert_eq!(r, Rect::new(6.0, 4.0, 4.0, 6.0));
        assert!(r.w >= 0.0 && r.h >= 0.0);
    }

    #[test]
    fn rect_contains_edges() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(2.0, 0.0)));
        assert!(!r.contains(Point::new(0.0, 2.0)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 10.0, 10.0);
        assert_eq!(a.intersect(&b), Some(Rect::new(5.0, 5.0, 5.0, 5.0)));
        let c = Rect::new(20.0, 20.0, 1.0, 1.0);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn transform_identity_roundtrip() {
        let t = Transform::identity();
        let p = Point::new(3.5, -2.25);
        assert_eq!(t.apply(p), p);
        assert!(t.is_identity());
    }

    #[test]
    fn transform_translate_then_scale() {
        let t = Transform::scale(2.0, 3.0).then(&Transform::translate(1.0, 1.0));
        // translate applied first: (0,0) -> (1,1) -> (2,3)
        assert_eq!(t.apply(Point::new(0.0, 0.0)), Point::new(2.0, 3.0));
    }

    #[test]
    fn transform_inverse_roundtrips() {
        let t = Transform::rotate(0.7)
            .then(&Transform::scale(2.0, 0.5))
            .then(&Transform::translate(5.0, -3.0));
        let inv = t.invert().expect("invertible");
        let p = Point::new(13.0, 42.0);
        let q = inv.apply(t.apply(p));
        assert!((q.x - p.x).abs() < 1e-9 && (q.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn singular_transform_has_no_inverse() {
        let t = Transform::scale(0.0, 1.0);
        assert!(t.invert().is_none());
    }

    #[test]
    fn point_lerp_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }
}
