//! The Canvas 2D drawing context: a software implementation of the
//! `CanvasRenderingContext2D` state machine over a [`Surface`].
//!
//! This type implements the drawing semantics; the DOM-facing object in
//! `canvassing-dom` wraps it with call instrumentation. Everything here is
//! deterministic given the same [`DeviceProfile`].
//!
//! Intentional omissions (documented per the project's guide idiom):
//! shadows, `clip()`, `createPattern`, dash patterns, and `filter` are not
//! implemented — none of the fingerprinting or benign scripts modeled in
//! this reproduction use them. Unknown values assigned to state properties
//! are ignored, matching the HTML spec.

use crate::color::{parse_css_color, Color};
use crate::device::DeviceProfile;
use crate::fill::{rasterize, rasterize_union, FillRule, Mask};
use crate::geom::{Point, Transform};
use crate::lossy::{encode_jpeg, encode_webp};
use crate::paint::{Gradient, Paint};
use crate::path::Path;
use crate::png;
use crate::stroke::{stroke_polygons, LineCap};
use crate::surface::{CompositeOp, Surface};
use crate::text::{
    layout_text, measure_text, parse_font, transform_glyphs, FontSpec, TextBaseline,
};

/// Image MIME types supported by `toDataURL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageFormat {
    /// Lossless PNG (the default and the only fingerprintable format).
    Png,
    /// Lossy JPEG stand-in.
    Jpeg,
    /// Lossy WebP stand-in.
    Webp,
}

impl ImageFormat {
    /// Resolves a MIME string the way `toDataURL` does: unknown types fall
    /// back to PNG.
    pub fn from_mime(mime: &str) -> ImageFormat {
        match mime.trim().to_ascii_lowercase().as_str() {
            "image/jpeg" | "image/jpg" => ImageFormat::Jpeg,
            "image/webp" => ImageFormat::Webp,
            _ => ImageFormat::Png,
        }
    }

    /// The canonical MIME type string.
    pub fn mime(&self) -> &'static str {
        match self {
            ImageFormat::Png => "image/png",
            ImageFormat::Jpeg => "image/jpeg",
            ImageFormat::Webp => "image/webp",
        }
    }

    /// Whether the format is lossy (relevant to the paper's heuristics).
    pub fn is_lossy(&self) -> bool {
        !matches!(self, ImageFormat::Png)
    }
}

/// Mutable drawing state saved/restored by `save()`/`restore()`.
#[derive(Debug, Clone)]
struct DrawState {
    ctm: Transform,
    fill: Paint,
    stroke: Paint,
    global_alpha: f64,
    op: CompositeOp,
    font: FontSpec,
    baseline: TextBaseline,
    line_width: f64,
    line_cap: LineCap,
}

impl Default for DrawState {
    fn default() -> Self {
        DrawState {
            ctm: Transform::identity(),
            fill: Paint::Solid(Color::BLACK),
            stroke: Paint::Solid(Color::BLACK),
            global_alpha: 1.0,
            op: CompositeOp::SourceOver,
            font: FontSpec::default(),
            baseline: TextBaseline::Alphabetic,
            line_width: 1.0,
            line_cap: LineCap::Butt,
        }
    }
}

/// A software `CanvasRenderingContext2D`.
#[derive(Debug, Clone)]
pub struct Canvas2D {
    surface: Surface,
    device: DeviceProfile,
    state: DrawState,
    stack: Vec<DrawState>,
    path: Path,
}

impl Canvas2D {
    /// Creates a context over a transparent surface of the given size.
    pub fn new(width: u32, height: u32, device: DeviceProfile) -> Canvas2D {
        Canvas2D {
            surface: Surface::new(width, height),
            device,
            state: DrawState::default(),
            stack: Vec::new(),
            path: Path::new(),
        }
    }

    /// Backing surface width.
    pub fn width(&self) -> u32 {
        self.surface.width()
    }

    /// Backing surface height.
    pub fn height(&self) -> u32 {
        self.surface.height()
    }

    /// The device profile in effect.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Read access to the backing surface.
    pub fn surface(&self) -> &Surface {
        &self.surface
    }

    /// Mutable access to the backing surface (used by noise defenses).
    pub fn surface_mut(&mut self) -> &mut Surface {
        &mut self.surface
    }

    /// Creates a context over a recycled pixel buffer (see
    /// [`crate::pool::SurfacePool`]); behaviorally identical to
    /// [`Canvas2D::new`].
    pub fn with_buffer(width: u32, height: u32, device: DeviceProfile, buf: Vec<u8>) -> Canvas2D {
        Canvas2D {
            surface: Surface::with_buffer(width, height, buf),
            device,
            state: DrawState::default(),
            stack: Vec::new(),
            path: Path::new(),
        }
    }

    /// Consumes the context, returning the backing pixel allocation for
    /// recycling.
    pub fn into_buffer(self) -> Vec<u8> {
        self.surface.into_buffer()
    }

    /// Resizes the canvas, which (per spec) resets all state and clears
    /// the backing store. The pixel allocation is reused in place — every
    /// fingerprinting script sets `width` and `height` on a fresh canvas,
    /// so this path used to cost two reallocations per canvas per visit.
    pub fn resize(&mut self, width: u32, height: u32) {
        self.surface.reset(width, height);
        self.state = DrawState::default();
        self.stack.clear();
        self.path = Path::new();
    }

    // ----- state -----

    /// `save()`: pushes the current state.
    pub fn save(&mut self) {
        self.stack.push(self.state.clone());
    }

    /// `restore()`: pops the state stack (no-op when empty, per spec).
    pub fn restore(&mut self) {
        if let Some(prev) = self.stack.pop() {
            self.state = prev;
        }
    }

    /// `translate(x, y)`.
    pub fn translate(&mut self, x: f64, y: f64) {
        self.state.ctm = self.state.ctm.then(&Transform::translate(x, y));
    }

    /// `scale(x, y)`.
    pub fn scale(&mut self, x: f64, y: f64) {
        self.state.ctm = self.state.ctm.then(&Transform::scale(x, y));
    }

    /// `rotate(theta)`.
    pub fn rotate(&mut self, theta: f64) {
        self.state.ctm = self.state.ctm.then(&Transform::rotate(theta));
    }

    /// `transform(a, b, c, d, e, f)` — multiplies the CTM.
    pub fn transform(&mut self, a: f64, b: f64, c: f64, d: f64, e: f64, f: f64) {
        self.state.ctm = self.state.ctm.then(&Transform { a, b, c, d, e, f });
    }

    /// `setTransform(...)` — replaces the CTM.
    pub fn set_transform(&mut self, a: f64, b: f64, c: f64, d: f64, e: f64, f: f64) {
        self.state.ctm = Transform { a, b, c, d, e, f };
    }

    /// `resetTransform()`.
    pub fn reset_transform(&mut self) {
        self.state.ctm = Transform::identity();
    }

    /// Assigns `fillStyle` from a CSS color string; invalid values are
    /// ignored (spec behavior).
    pub fn set_fill_style(&mut self, style: &str) {
        if let Ok(c) = parse_css_color(style) {
            self.state.fill = Paint::Solid(c);
        }
    }

    /// Assigns `fillStyle` from a gradient object.
    pub fn set_fill_gradient(&mut self, gradient: Gradient) {
        self.state.fill = Paint::Gradient(gradient);
    }

    /// Assigns `strokeStyle` from a CSS color string.
    pub fn set_stroke_style(&mut self, style: &str) {
        if let Ok(c) = parse_css_color(style) {
            self.state.stroke = Paint::Solid(c);
        }
    }

    /// Assigns `strokeStyle` from a gradient object.
    pub fn set_stroke_gradient(&mut self, gradient: Gradient) {
        self.state.stroke = Paint::Gradient(gradient);
    }

    /// Assigns `globalAlpha`; out-of-range values are ignored per spec.
    pub fn set_global_alpha(&mut self, alpha: f64) {
        if (0.0..=1.0).contains(&alpha) {
            self.state.global_alpha = alpha;
        }
    }

    /// Current `globalAlpha`.
    pub fn global_alpha(&self) -> f64 {
        self.state.global_alpha
    }

    /// Assigns `globalCompositeOperation`; unknown strings are ignored.
    pub fn set_composite_op(&mut self, op: &str) {
        if let Some(parsed) = CompositeOp::parse(op) {
            self.state.op = parsed;
        }
    }

    /// Current `globalCompositeOperation` string.
    pub fn composite_op(&self) -> &'static str {
        self.state.op.as_str()
    }

    /// Assigns `font` from a CSS shorthand; invalid values are ignored.
    pub fn set_font(&mut self, font: &str) {
        if let Some(spec) = parse_font(font) {
            self.state.font = spec;
        }
    }

    /// Current font spec.
    pub fn font(&self) -> &FontSpec {
        &self.state.font
    }

    /// Assigns `textBaseline`; unknown strings are ignored.
    pub fn set_text_baseline(&mut self, baseline: &str) {
        if let Some(b) = TextBaseline::parse(baseline) {
            self.state.baseline = b;
        }
    }

    /// Assigns `lineWidth`; non-positive or non-finite values are ignored.
    pub fn set_line_width(&mut self, width: f64) {
        if width.is_finite() && width > 0.0 {
            self.state.line_width = width;
        }
    }

    /// Assigns `lineCap`; unknown strings are ignored.
    pub fn set_line_cap(&mut self, cap: &str) {
        if let Some(c) = LineCap::parse(cap) {
            self.state.line_cap = c;
        }
    }

    // ----- path API -----

    /// `beginPath()`.
    pub fn begin_path(&mut self) {
        self.path = Path::new();
    }

    /// `closePath()`.
    pub fn close_path(&mut self) {
        self.path.close();
    }

    /// `moveTo`.
    pub fn move_to(&mut self, x: f64, y: f64) {
        self.path.move_to(x, y);
    }

    /// `lineTo`.
    pub fn line_to(&mut self, x: f64, y: f64) {
        self.path.line_to(x, y);
    }

    /// `quadraticCurveTo`.
    pub fn quadratic_curve_to(&mut self, cx: f64, cy: f64, x: f64, y: f64) {
        self.path.quad_to(cx, cy, x, y);
    }

    /// `bezierCurveTo`.
    pub fn bezier_curve_to(&mut self, c1x: f64, c1y: f64, c2x: f64, c2y: f64, x: f64, y: f64) {
        self.path.cubic_to(c1x, c1y, c2x, c2y, x, y);
    }

    /// `arc`.
    pub fn arc(&mut self, x: f64, y: f64, r: f64, start: f64, end: f64, ccw: bool) {
        self.path.arc(x, y, r, start, end, ccw);
    }

    /// `ellipse`.
    #[allow(clippy::too_many_arguments)]
    pub fn ellipse(
        &mut self,
        x: f64,
        y: f64,
        rx: f64,
        ry: f64,
        rotation: f64,
        start: f64,
        end: f64,
        ccw: bool,
    ) {
        self.path.ellipse(x, y, rx, ry, rotation, start, end, ccw);
    }

    /// `rect`.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        self.path.rect(x, y, w, h);
    }

    /// `fill(rule)` — fills the current path.
    pub fn fill(&mut self, rule: FillRule) {
        let polys = self.path.flatten(&self.state.ctm);
        let mask = rasterize(&polys, rule, self.width(), self.height(), &self.device);
        self.composite_mask(&mask, &self.state.fill.clone());
    }

    /// `stroke()` — strokes the current path.
    pub fn stroke(&mut self) {
        let polys = self.path.flatten(&self.state.ctm);
        // Scale line width by the CTM's scale (approximation: uniform max
        // scale; non-uniform stroke transforms are out of scope).
        let width = self.state.line_width * self.state.ctm.max_scale();
        let groups = stroke_polygons(&polys, width, self.state.line_cap);
        let mask = rasterize_union(&groups, self.width(), self.height(), &self.device);
        self.composite_mask(&mask, &self.state.stroke.clone());
    }

    // ----- rect shortcuts -----

    /// `fillRect`.
    pub fn fill_rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        let mut p = Path::new();
        p.rect(x, y, w, h);
        let polys = p.flatten(&self.state.ctm);
        let mask = rasterize(
            &polys,
            FillRule::NonZero,
            self.width(),
            self.height(),
            &self.device,
        );
        self.composite_mask(&mask, &self.state.fill.clone());
    }

    /// `strokeRect`.
    pub fn stroke_rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        let mut p = Path::new();
        p.rect(x, y, w, h);
        let polys = p.flatten(&self.state.ctm);
        let width = self.state.line_width * self.state.ctm.max_scale();
        let groups = stroke_polygons(&polys, width, self.state.line_cap);
        let mask = rasterize_union(&groups, self.width(), self.height(), &self.device);
        self.composite_mask(&mask, &self.state.stroke.clone());
    }

    /// `clearRect` — erases to transparent black (honors the CTM).
    pub fn clear_rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        if self.state.ctm.is_identity() {
            self.surface.clear_rect(
                x.floor() as i64,
                y.floor() as i64,
                w.ceil() as i64,
                h.ceil() as i64,
            );
            return;
        }
        let mut p = Path::new();
        p.rect(x, y, w, h);
        let polys = p.flatten(&self.state.ctm);
        let mask = rasterize(
            &polys,
            FillRule::NonZero,
            self.width(),
            self.height(),
            &self.device,
        );
        // Erase: dst.a *= (1 - coverage).
        for py in mask.y0..mask.y0 + mask.h as i64 {
            for px in mask.x0..mask.x0 + mask.w as i64 {
                let cov = mask.coverage(px, py);
                if cov > 0.0 {
                    let mut c = self.surface.get(px, py);
                    c.a = (c.a as f64 * (1.0 - cov)).round() as u8;
                    self.surface.set(px, py, c);
                }
            }
        }
    }

    // ----- text -----

    /// `fillText`.
    pub fn fill_text(&mut self, text: &str, x: f64, y: f64) {
        let glyphs = layout_text(
            text,
            x,
            y,
            &self.state.font,
            self.state.baseline,
            &self.device,
        );
        let polys = transform_glyphs(&glyphs, &self.state.ctm);
        let mut mask = rasterize(
            &polys,
            FillRule::NonZero,
            self.width(),
            self.height(),
            &self.device,
        );
        self.soften_glyph_mask(&mut mask);
        self.composite_mask(&mask, &self.state.fill.clone());
    }

    /// `strokeText` — approximated as a thin-stroked fill of the glyph
    /// outlines.
    pub fn stroke_text(&mut self, text: &str, x: f64, y: f64) {
        let glyphs = layout_text(
            text,
            x,
            y,
            &self.state.font,
            self.state.baseline,
            &self.device,
        );
        let polys = transform_glyphs(&glyphs, &self.state.ctm);
        let width = self.state.line_width.min(2.0);
        let groups = stroke_polygons(&polys, width, self.state.line_cap);
        let mut mask = rasterize_union(&groups, self.width(), self.height(), &self.device);
        self.soften_glyph_mask(&mut mask);
        self.composite_mask(&mask, &self.state.stroke.clone());
    }

    /// `measureText().width`.
    pub fn measure_text(&self, text: &str) -> f64 {
        measure_text(text, &self.state.font, &self.device) * self.state.ctm.max_scale()
            / self.state.ctm.max_scale() // width is reported in user units
    }

    /// Applies the device's glyph softness (sub-pixel smoothing emulation)
    /// as a tiny separable box blur over the glyph coverage mask.
    fn soften_glyph_mask(&self, mask: &mut Mask) {
        let s = self.device.glyph_softness;
        if s <= 0.0 || mask.w == 0 {
            return;
        }
        let k = s.clamp(0.0, 1.0) * 0.25;
        let w = mask.w;
        let h = mask.h;
        let src = mask.cov.clone();
        for y in 0..h {
            for x in 0..w {
                let at = |xx: isize, yy: isize| -> f32 {
                    if xx < 0 || yy < 0 || xx >= w as isize || yy >= h as isize {
                        0.0
                    } else {
                        src[yy as usize * w + xx as usize]
                    }
                };
                let center = at(x as isize, y as isize);
                let neighbors = at(x as isize - 1, y as isize)
                    + at(x as isize + 1, y as isize)
                    + at(x as isize, y as isize - 1)
                    + at(x as isize, y as isize + 1);
                mask.cov[y * w + x] =
                    (center * (1.0 - k as f32) + neighbors * (k as f32 / 4.0)).min(1.0);
            }
        }
    }

    // ----- images & pixels -----

    /// `drawImage(image, dx, dy, dw, dh)` with nearest-neighbor sampling.
    /// Pass the source surface (e.g. another canvas's backing store).
    pub fn draw_image(&mut self, src: &Surface, dx: f64, dy: f64, dw: f64, dh: f64) {
        if src.width() == 0 || src.height() == 0 || dw <= 0.0 || dh <= 0.0 {
            return;
        }
        let x0 = dx.floor() as i64;
        let y0 = dy.floor() as i64;
        let x1 = (dx + dw).ceil() as i64;
        let y1 = (dy + dh).ceil() as i64;
        for py in y0..y1 {
            for px in x0..x1 {
                // Map device pixel center back through the CTM into the
                // destination rect, then into source coordinates.
                let user = match self.state.ctm.invert() {
                    Some(inv) => inv.apply(Point::new(px as f64 + 0.5, py as f64 + 0.5)),
                    None => return,
                };
                if user.x < dx || user.x >= dx + dw || user.y < dy || user.y >= dy + dh {
                    continue;
                }
                let sx = ((user.x - dx) / dw * src.width() as f64).floor() as i64;
                let sy = ((user.y - dy) / dh * src.height() as f64).floor() as i64;
                let c = src
                    .get(
                        sx.min(src.width() as i64 - 1),
                        sy.min(src.height() as i64 - 1),
                    )
                    .with_alpha_scaled(self.state.global_alpha);
                let dev = self.state.ctm.apply(user);
                self.surface.blend(
                    dev.x.floor() as i64,
                    dev.y.floor() as i64,
                    c,
                    1.0,
                    self.state.op,
                );
            }
        }
    }

    /// `getImageData(x, y, w, h)` — returns straight-alpha RGBA bytes;
    /// out-of-bounds pixels are transparent black.
    pub fn get_image_data(&self, x: i64, y: i64, w: u32, h: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity((w as usize) * (h as usize) * 4);
        for py in y..y + h as i64 {
            for px in x..x + w as i64 {
                let c = self.surface.get(px, py);
                out.extend_from_slice(&[c.r, c.g, c.b, c.a]);
            }
        }
        out
    }

    /// `putImageData` — writes raw RGBA bytes without blending.
    pub fn put_image_data(&mut self, data: &[u8], x: i64, y: i64, w: u32, h: u32) {
        let mut i = 0;
        for py in y..y + h as i64 {
            for px in x..x + w as i64 {
                if i + 3 < data.len() {
                    self.surface.set(
                        px,
                        py,
                        Color::rgba(data[i], data[i + 1], data[i + 2], data[i + 3]),
                    );
                }
                i += 4;
            }
        }
    }

    /// Encodes the surface in the given format (the `toDataURL` backend).
    pub fn encode(&self, format: ImageFormat, quality: f64) -> Vec<u8> {
        match format {
            ImageFormat::Png => png::encode(&self.surface),
            ImageFormat::Jpeg => encode_jpeg(&self.surface, quality),
            ImageFormat::Webp => encode_webp(&self.surface, quality),
        }
    }

    /// `toDataURL(mime, quality)` — returns the full data-URL string.
    pub fn to_data_url(&self, mime: &str, quality: Option<f64>) -> String {
        let format = ImageFormat::from_mime(mime);
        let q = quality.unwrap_or(0.92).clamp(0.0, 1.0);
        let bytes = self.encode(format, q);
        format!(
            "data:{};base64,{}",
            format.mime(),
            crate::base64::encode(&bytes)
        )
    }

    /// Composites a coverage mask with a paint, honoring `globalAlpha`,
    /// `globalCompositeOperation`, and the device coverage gamma.
    fn composite_mask(&mut self, mask: &Mask, paint: &Paint) {
        if mask.w == 0 || mask.h == 0 {
            return;
        }
        let solid = paint.as_solid();
        for row in 0..mask.h as i64 {
            let py = mask.y0 + row;
            for col in 0..mask.w as i64 {
                let px = mask.x0 + col;
                let raw = mask.coverage(px, py);
                if raw <= 0.0 {
                    continue;
                }
                let cov = self.device.shade(raw);
                let color = match solid {
                    Some(c) => c,
                    None => paint.eval(Point::new(px as f64 + 0.5, py as f64 + 0.5)),
                };
                self.surface.blend(
                    px,
                    py,
                    color.with_alpha_scaled(self.state.global_alpha),
                    cov,
                    self.state.op,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas(w: u32, h: u32) -> Canvas2D {
        Canvas2D::new(w, h, DeviceProfile::intel_ubuntu())
    }

    #[test]
    fn fill_rect_paints_solid_color() {
        let mut c = canvas(10, 10);
        c.set_fill_style("#f60");
        c.fill_rect(2.0, 2.0, 4.0, 4.0);
        assert_eq!(c.surface().get(3, 3), Color::rgb(255, 0x66, 0));
        assert_eq!(c.surface().get(8, 8).a, 0);
    }

    #[test]
    fn invalid_fill_style_is_ignored() {
        let mut c = canvas(4, 4);
        c.set_fill_style("#123456");
        c.set_fill_style("not-a-color");
        c.fill_rect(0.0, 0.0, 4.0, 4.0);
        assert_eq!(c.surface().get(1, 1), Color::rgb(0x12, 0x34, 0x56));
    }

    #[test]
    fn save_restore_roundtrips_state() {
        let mut c = canvas(4, 4);
        c.set_fill_style("#ff0000");
        c.save();
        c.set_fill_style("#00ff00");
        c.set_global_alpha(0.5);
        c.restore();
        assert_eq!(c.global_alpha(), 1.0);
        c.fill_rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(c.surface().get(0, 0), Color::rgb(255, 0, 0));
    }

    #[test]
    fn restore_on_empty_stack_is_noop() {
        let mut c = canvas(2, 2);
        c.restore(); // must not panic
        c.fill_rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(c.surface().get(0, 0), Color::BLACK);
    }

    #[test]
    fn translate_moves_drawing() {
        let mut c = canvas(10, 10);
        c.translate(3.0, 3.0);
        c.fill_rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(c.surface().get(0, 0).a, 0);
        assert_eq!(c.surface().get(4, 4), Color::BLACK);
    }

    #[test]
    fn to_data_url_defaults_to_png() {
        let c = canvas(4, 4);
        let url = c.to_data_url("image/nonsense", None);
        assert!(url.starts_with("data:image/png;base64,"));
    }

    #[test]
    fn to_data_url_jpeg_is_lossy_tagged() {
        let c = canvas(4, 4);
        let url = c.to_data_url("image/jpeg", Some(0.5));
        assert!(url.starts_with("data:image/jpeg;base64,"));
    }

    #[test]
    fn data_url_roundtrips_through_png_decoder() {
        let mut c = canvas(6, 6);
        c.set_fill_style("tomato");
        c.fill_rect(1.0, 1.0, 3.0, 3.0);
        let url = c.to_data_url("image/png", None);
        let b64 = url.strip_prefix("data:image/png;base64,").unwrap();
        let bytes = crate::base64::decode(b64).unwrap();
        let surface = png::decode(&bytes).unwrap();
        assert_eq!(surface.get(2, 2), Color::rgb(255, 99, 71));
    }

    #[test]
    fn identical_commands_identical_bytes() {
        let draw = || {
            let mut c = canvas(60, 20);
            c.set_fill_style("#069");
            c.set_font("11pt arial");
            c.fill_text("Cwm fjordbank", 2.0, 15.0);
            c.to_data_url("image/png", None)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn devices_render_text_differently() {
        let draw = |device: DeviceProfile| {
            let mut c = Canvas2D::new(120, 30, device);
            c.set_font("16px arial");
            c.set_fill_style("#069");
            c.fill_text("Cwm fjordbank glyphs vext quiz", 2.0, 22.0);
            c.to_data_url("image/png", None)
        };
        assert_ne!(
            draw(DeviceProfile::intel_ubuntu()),
            draw(DeviceProfile::apple_m1())
        );
    }

    #[test]
    fn fill_text_paints_pixels() {
        let mut c = canvas(60, 20);
        c.set_font("14px arial");
        c.fill_text("AB", 2.0, 16.0);
        assert!(!c.surface().is_blank());
    }

    #[test]
    fn clear_rect_erases() {
        let mut c = canvas(8, 8);
        c.fill_rect(0.0, 0.0, 8.0, 8.0);
        c.clear_rect(2.0, 2.0, 2.0, 2.0);
        assert_eq!(c.surface().get(3, 3).a, 0);
        assert_eq!(c.surface().get(0, 0).a, 255);
    }

    #[test]
    fn clear_rect_respects_transform() {
        let mut c = canvas(8, 8);
        c.fill_rect(0.0, 0.0, 8.0, 8.0);
        c.translate(4.0, 4.0);
        c.clear_rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(c.surface().get(5, 5).a, 0);
        assert_eq!(c.surface().get(1, 1).a, 255);
    }

    #[test]
    fn arc_fill_draws_disk() {
        let mut c = canvas(20, 20);
        c.begin_path();
        c.arc(10.0, 10.0, 6.0, 0.0, std::f64::consts::TAU, false);
        c.set_fill_style("blue");
        c.fill(FillRule::NonZero);
        assert_eq!(c.surface().get(10, 10), Color::rgb(0, 0, 255));
        assert_eq!(c.surface().get(1, 1).a, 0);
    }

    #[test]
    fn evenodd_winding_produces_hole() {
        // The FingerprintJS winding test: two nested rects, evenodd fill.
        let mut c = canvas(20, 20);
        c.begin_path();
        c.rect(2.0, 2.0, 16.0, 16.0);
        c.rect(6.0, 6.0, 8.0, 8.0);
        c.set_fill_style("#f9c");
        c.fill(FillRule::EvenOdd);
        assert_eq!(c.surface().get(3, 3).a, 255);
        assert_eq!(c.surface().get(10, 10).a, 0, "evenodd hole");
    }

    #[test]
    fn gradient_fill_varies_across_pixels() {
        let mut c = canvas(16, 4);
        let mut gradient = Gradient::linear(0.0, 0.0, 16.0, 0.0);
        gradient.add_stop(0.0, Color::BLACK);
        gradient.add_stop(1.0, Color::WHITE);
        c.set_fill_gradient(gradient);
        c.fill_rect(0.0, 0.0, 16.0, 4.0);
        let left = c.surface().get(0, 1).r;
        let right = c.surface().get(15, 1).r;
        assert!(right > left + 100, "gradient should ramp: {left} {right}");
    }

    #[test]
    fn get_put_image_data_roundtrip() {
        let mut c = canvas(6, 6);
        c.set_fill_style("purple");
        c.fill_rect(0.0, 0.0, 6.0, 6.0);
        let data = c.get_image_data(0, 0, 6, 6);
        let mut c2 = canvas(6, 6);
        c2.put_image_data(&data, 0, 0, 6, 6);
        assert_eq!(c.surface().data(), c2.surface().data());
    }

    #[test]
    fn draw_image_copies_scaled() {
        let mut src = canvas(2, 2);
        src.set_fill_style("red");
        src.fill_rect(0.0, 0.0, 2.0, 2.0);
        let mut dst = canvas(8, 8);
        let surface = src.surface().clone();
        dst.draw_image(&surface, 2.0, 2.0, 4.0, 4.0);
        assert_eq!(dst.surface().get(3, 3), Color::rgb(255, 0, 0));
        assert_eq!(dst.surface().get(7, 7).a, 0);
    }

    #[test]
    fn resize_clears_canvas_and_state() {
        let mut c = canvas(8, 8);
        c.set_fill_style("red");
        c.fill_rect(0.0, 0.0, 8.0, 8.0);
        c.resize(8, 8);
        assert!(c.surface().is_blank());
        c.fill_rect(0.0, 0.0, 1.0, 1.0);
        assert_eq!(c.surface().get(0, 0), Color::BLACK, "fill style reset");
    }

    #[test]
    fn global_alpha_blends() {
        let mut c = canvas(2, 2);
        c.set_fill_style("white");
        c.fill_rect(0.0, 0.0, 2.0, 2.0);
        c.set_global_alpha(0.5);
        c.set_fill_style("black");
        c.fill_rect(0.0, 0.0, 2.0, 2.0);
        let v = c.surface().get(0, 0).r;
        assert!((v as i32 - 128).abs() <= 1, "got {v}");
    }

    #[test]
    fn composite_multiply_via_op_string() {
        let mut c = canvas(2, 2);
        c.set_fill_style("rgb(128,128,128)");
        c.fill_rect(0.0, 0.0, 2.0, 2.0);
        c.set_composite_op("multiply");
        assert_eq!(c.composite_op(), "multiply");
        c.fill_rect(0.0, 0.0, 2.0, 2.0);
        assert!(c.surface().get(0, 0).r < 70);
    }

    #[test]
    fn unknown_composite_op_is_ignored() {
        let mut c = canvas(2, 2);
        c.set_composite_op("color-dodge");
        assert_eq!(c.composite_op(), "source-over");
    }
}
