//! Minimal PNG encoder (and the checksums it needs), from scratch.
//!
//! The encoder emits a spec-valid PNG: IHDR + IDAT + IEND, 8-bit RGBA,
//! filter type 0 on every row, wrapped in a zlib stream that uses *stored*
//! (uncompressed) DEFLATE blocks. Stored blocks keep the implementation
//! small and the output byte-exact and deterministic — which is what canvas
//! clustering relies on. A matching decoder for our own output is provided
//! for tests and for `drawImage` of data URLs.

use crate::surface::Surface;

/// CRC-32 (ISO 3309) over `data`, as used by PNG chunks.
pub fn crc32(data: &[u8]) -> u32 {
    // Bitwise implementation; fast enough for our canvas sizes and free of
    // lookup-table initialization order concerns.
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Adler-32 checksum, as used by zlib streams.
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Wraps raw bytes in a zlib stream of stored DEFLATE blocks.
pub fn zlib_store(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 65535 * 5 + 16);
    out.push(0x78); // CMF: deflate, 32k window
    out.push(0x01); // FLG: no preset dict, fastest (checksum-valid pair)
    let mut chunks = data.chunks(65535).peekable();
    if data.is_empty() {
        // A single final empty stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1 } else { 0 };
        out.push(bfinal); // BTYPE=00 stored
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Inflates a zlib stream consisting of stored blocks only (the format
/// `zlib_store` produces). Returns `None` for anything else.
pub fn zlib_unstore(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 6 {
        return None;
    }
    let mut pos = 2; // skip CMF/FLG
    let mut out = Vec::new();
    loop {
        let header = *data.get(pos)?;
        pos += 1;
        if header & 0b110 != 0 {
            return None; // not a stored block
        }
        let len = u16::from_le_bytes([*data.get(pos)?, *data.get(pos + 1)?]) as usize;
        let nlen = u16::from_le_bytes([*data.get(pos + 2)?, *data.get(pos + 3)?]);
        if !(len as u16) != nlen {
            return None;
        }
        pos += 4;
        out.extend_from_slice(data.get(pos..pos + len)?);
        pos += len;
        if header & 1 == 1 {
            break;
        }
    }
    let sum = u32::from_be_bytes([
        *data.get(pos)?,
        *data.get(pos + 1)?,
        *data.get(pos + 2)?,
        *data.get(pos + 3)?,
    ]);
    if sum != adler32(&out) {
        return None;
    }
    Some(out)
}

fn chunk(out: &mut Vec<u8>, tag: &[u8; 4], body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(tag);
    out.extend_from_slice(body);
    let mut crc_input = Vec::with_capacity(4 + body.len());
    crc_input.extend_from_slice(tag);
    crc_input.extend_from_slice(body);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// PNG magic bytes.
pub const PNG_SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a];

/// Encodes a surface as an RGBA8 PNG.
pub fn encode(surface: &Surface) -> Vec<u8> {
    let w = surface.width();
    let h = surface.height();
    let mut out = Vec::with_capacity((w as usize * h as usize) * 4 + 1024);
    out.extend_from_slice(&PNG_SIGNATURE);

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&w.to_be_bytes());
    ihdr.extend_from_slice(&h.to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(6); // color type RGBA
    ihdr.push(0); // compression
    ihdr.push(0); // filter method
    ihdr.push(0); // no interlace
    chunk(&mut out, b"IHDR", &ihdr);

    // Raw scanlines with filter byte 0.
    let stride = w as usize * 4;
    let mut raw = Vec::with_capacity((stride + 1) * h as usize);
    for row in 0..h as usize {
        raw.push(0);
        raw.extend_from_slice(&surface.data()[row * stride..(row + 1) * stride]);
    }
    chunk(&mut out, b"IDAT", &zlib_store(&raw));
    chunk(&mut out, b"IEND", &[]);
    out
}

/// Decodes a PNG produced by [`encode`] (RGBA8, filter 0, stored-block
/// zlib). Used by tests and by `drawImage` of our own data URLs. Returns
/// `None` for foreign PNGs.
pub fn decode(data: &[u8]) -> Option<Surface> {
    if data.len() < 8 || data[..8] != PNG_SIGNATURE {
        return None;
    }
    let mut pos = 8;
    let mut width = 0u32;
    let mut height = 0u32;
    let mut idat = Vec::new();
    while pos + 8 <= data.len() {
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().ok()?) as usize;
        let tag = &data[pos + 4..pos + 8];
        let body = data.get(pos + 8..pos + 8 + len)?;
        match tag {
            b"IHDR" => {
                if body.len() != 13 || body[8] != 8 || body[9] != 6 {
                    return None;
                }
                width = u32::from_be_bytes(body[0..4].try_into().ok()?);
                height = u32::from_be_bytes(body[4..8].try_into().ok()?);
            }
            b"IDAT" => idat.extend_from_slice(body),
            b"IEND" => break,
            _ => {}
        }
        pos += 8 + len + 4; // skip CRC
    }
    let raw = zlib_unstore(&idat)?;
    let stride = width as usize * 4;
    if raw.len() != (stride + 1) * height as usize {
        return None;
    }
    let mut surface = Surface::new(width, height);
    for row in 0..height as usize {
        let line = &raw[row * (stride + 1)..(row + 1) * (stride + 1)];
        if line[0] != 0 {
            return None; // only filter 0 supported
        }
        surface.data_mut()[row * stride..(row + 1) * stride].copy_from_slice(&line[1..]);
    }
    Some(surface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b"IEND"), 0xae426082);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11e60398);
    }

    #[test]
    fn zlib_roundtrip() {
        for data in [&b""[..], b"hello", &vec![7u8; 200_000][..]] {
            let z = zlib_store(data);
            assert_eq!(zlib_unstore(&z).unwrap(), data);
        }
    }

    #[test]
    fn zlib_detects_corruption() {
        let mut z = zlib_store(b"hello world");
        let n = z.len();
        z[n - 1] ^= 0xff; // corrupt adler
        assert!(zlib_unstore(&z).is_none());
    }

    #[test]
    fn png_roundtrip() {
        let mut s = Surface::new(5, 3);
        s.set(0, 0, Color::rgb(1, 2, 3));
        s.set(4, 2, Color::rgba(200, 100, 50, 25));
        let png = encode(&s);
        assert_eq!(&png[..8], &PNG_SIGNATURE);
        let back = decode(&png).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn png_is_deterministic() {
        let mut s = Surface::new(16, 16);
        s.set(3, 3, Color::WHITE);
        assert_eq!(encode(&s), encode(&s));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"not a png").is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn zero_sized_surface_encodes() {
        let s = Surface::new(0, 0);
        let png = encode(&s);
        assert_eq!(decode(&png).unwrap().width(), 0);
    }

    #[cfg(test)]
    mod props {
        // The proptest stub swallows test bodies; imports look unused.
        #![allow(unused_imports)]
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn zlib_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
                prop_assert_eq!(zlib_unstore(&zlib_store(&data)).unwrap(), data);
            }

            #[test]
            fn png_roundtrips_random_pixels(
                w in 1u32..12, h in 1u32..12,
                seed in any::<u64>(),
            ) {
                let mut s = Surface::new(w, h);
                let mut x = seed | 1;
                let data = s.data_mut();
                for b in data.iter_mut() {
                    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                    *b = x as u8;
                }
                let back = decode(&encode(&s)).unwrap();
                prop_assert_eq!(back, s);
            }
        }
    }
}
