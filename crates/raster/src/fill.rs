//! Scanline rasterization with anti-aliased coverage masks.
//!
//! Filling works in two stages: the path is flattened to polygons
//! ([`crate::path::Path::flatten`]), then [`rasterize`] converts the
//! polygons into a [`Mask`] of per-pixel coverage in `[0, 1]`. Coverage is
//! computed on `SUBSAMPLES` sample rows per pixel row with analytic
//! horizontal coverage, which gives smooth edges without randomness. The
//! device profile shifts the sample phases, which is precisely how two
//! machines rasterizing the same geometry end up with different edge
//! pixels — the effect canvas fingerprinting exploits.

use crate::device::DeviceProfile;
use crate::path::Polygon;

/// Number of sample rows per pixel row.
const SUBSAMPLES: usize = 4;

/// Path fill rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillRule {
    /// Non-zero winding (canvas default).
    #[default]
    NonZero,
    /// Even-odd parity (`fill("evenodd")`), used by FingerprintJS's
    /// winding-rule test canvas.
    EvenOdd,
}

impl FillRule {
    /// Parses the canvas fill-rule string.
    pub fn parse(s: &str) -> Option<FillRule> {
        match s {
            "nonzero" => Some(FillRule::NonZero),
            "evenodd" => Some(FillRule::EvenOdd),
            _ => None,
        }
    }
}

/// A rectangular per-pixel coverage buffer positioned on the surface.
#[derive(Debug, Clone)]
pub struct Mask {
    /// Left edge in device pixels.
    pub x0: i64,
    /// Top edge in device pixels.
    pub y0: i64,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
    /// Row-major coverage values in `[0, 1]`.
    pub cov: Vec<f32>,
}

impl Mask {
    /// An empty mask covering nothing.
    pub fn empty() -> Mask {
        Mask {
            x0: 0,
            y0: 0,
            w: 0,
            h: 0,
            cov: Vec::new(),
        }
    }

    /// Coverage at device pixel `(x, y)`; zero outside the mask.
    pub fn coverage(&self, x: i64, y: i64) -> f64 {
        if x < self.x0 || y < self.y0 {
            return 0.0;
        }
        let (dx, dy) = ((x - self.x0) as usize, (y - self.y0) as usize);
        if dx >= self.w || dy >= self.h {
            return 0.0;
        }
        self.cov[dy * self.w + dx] as f64
    }

    /// Accumulates `other` into `self` taking the per-pixel maximum
    /// (coverage union, used when stroking to avoid double-blending at
    /// segment overlaps). Both masks must share the same placement.
    pub fn union_max(&mut self, other: &Mask) {
        assert_eq!(
            (self.x0, self.y0, self.w, self.h),
            (other.x0, other.y0, other.w, other.h)
        );
        for (a, b) in self.cov.iter_mut().zip(other.cov.iter()) {
            *a = a.max(*b);
        }
    }

    /// Total coverage, useful in tests.
    pub fn total(&self) -> f64 {
        self.cov.iter().map(|&c| c as f64).sum()
    }
}

/// An edge prepared for scanline intersection.
struct Edge {
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    /// +1 when the original direction was downward (y increasing).
    dir: i32,
}

fn collect_edges(polys: &[Polygon]) -> Vec<Edge> {
    let mut edges = Vec::new();
    for poly in polys {
        let pts = &poly.points;
        if pts.len() < 2 {
            continue;
        }
        let n = pts.len();
        // `fill` implicitly closes every subpath.
        for i in 0..n {
            let a = pts[i];
            let b = pts[(i + 1) % n];
            if i + 1 == n && a == pts[0] {
                break; // already explicitly closed
            }
            if (a.y - b.y).abs() < 1e-12 {
                continue; // horizontal edges never cross a scanline
            }
            if a.y < b.y {
                edges.push(Edge {
                    x0: a.x,
                    y0: a.y,
                    x1: b.x,
                    y1: b.y,
                    dir: 1,
                });
            } else {
                edges.push(Edge {
                    x0: b.x,
                    y0: b.y,
                    x1: a.x,
                    y1: a.y,
                    dir: -1,
                });
            }
        }
    }
    edges
}

/// Rasterizes polygons into a coverage mask clipped to
/// `clip_w` × `clip_h` device pixels.
pub fn rasterize(
    polys: &[Polygon],
    rule: FillRule,
    clip_w: u32,
    clip_h: u32,
    device: &DeviceProfile,
) -> Mask {
    let mut bounds: Option<(f64, f64, f64, f64)> = None;
    for p in polys {
        if let Some(b) = p.bounds() {
            bounds = Some(match bounds {
                None => b,
                Some(acc) => (
                    acc.0.min(b.0),
                    acc.1.min(b.1),
                    acc.2.max(b.2),
                    acc.3.max(b.3),
                ),
            });
        }
    }
    let Some((bx0, by0, bx1, by1)) = bounds else {
        return Mask::empty();
    };
    let x0 = (bx0.floor() as i64 - 1).max(0);
    let y0 = (by0.floor() as i64 - 1).max(0);
    let x1 = (bx1.ceil() as i64 + 1).min(clip_w as i64);
    let y1 = (by1.ceil() as i64 + 1).min(clip_h as i64);
    if x1 <= x0 || y1 <= y0 {
        return Mask::empty();
    }
    let w = (x1 - x0) as usize;
    let h = (y1 - y0) as usize;
    let mut mask = Mask {
        x0,
        y0,
        w,
        h,
        cov: vec![0.0; w * h],
    };

    let edges = collect_edges(polys);
    if edges.is_empty() {
        return mask;
    }
    // Device-dependent sub-pixel phases: shift sample rows and interval
    // endpoints by a fraction of a sample cell.
    let phase_y = (device.aa_phase.1 - 0.5) * 0.5 / SUBSAMPLES as f64;
    let phase_x = (device.aa_phase.0 - 0.5) * 0.125;
    let weight = 1.0 / SUBSAMPLES as f64;

    let mut crossings: Vec<(f64, i32)> = Vec::with_capacity(16);
    for row in 0..h {
        let py = (y0 + row as i64) as f64;
        for s in 0..SUBSAMPLES {
            let sy = py + (s as f64 + 0.5) / SUBSAMPLES as f64 + phase_y;
            crossings.clear();
            for e in &edges {
                if sy >= e.y0 && sy < e.y1 {
                    let t = (sy - e.y0) / (e.y1 - e.y0);
                    let x = e.x0 + (e.x1 - e.x0) * t + phase_x;
                    crossings.push((x, e.dir));
                }
            }
            if crossings.is_empty() {
                continue;
            }
            crossings.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Build inside intervals per fill rule.
            let mut winding = 0i32;
            let mut parity = false;
            let mut span_start: Option<f64> = None;
            for &(x, dir) in &crossings {
                let was_inside = match rule {
                    FillRule::NonZero => winding != 0,
                    FillRule::EvenOdd => parity,
                };
                winding += dir;
                parity = !parity;
                let now_inside = match rule {
                    FillRule::NonZero => winding != 0,
                    FillRule::EvenOdd => parity,
                };
                match (was_inside, now_inside) {
                    (false, true) => span_start = Some(x),
                    (true, false) => {
                        if let Some(sx) = span_start.take() {
                            accumulate_span(&mut mask, row, sx, x, weight);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    mask
}

/// Adds horizontal coverage for the inside interval `[xa, xb)` on mask row
/// `row`, weighted by the subsample weight.
fn accumulate_span(mask: &mut Mask, row: usize, xa: f64, xb: f64, weight: f64) {
    if xb <= xa {
        return;
    }
    let x_lo = xa.max(mask.x0 as f64);
    let x_hi = xb.min((mask.x0 + mask.w as i64) as f64);
    if x_hi <= x_lo {
        return;
    }
    let first = (x_lo.floor() as i64 - mask.x0) as usize;
    let last = ((x_hi - 1e-9).floor() as i64 - mask.x0).min(mask.w as i64 - 1) as usize;
    let base = row * mask.w;
    for px in first..=last {
        let pl = (mask.x0 + px as i64) as f64;
        let pr = pl + 1.0;
        let overlap = (x_hi.min(pr) - x_lo.max(pl)).max(0.0);
        mask.cov[base + px] = (mask.cov[base + px] as f64 + overlap * weight).min(1.0) as f32;
    }
}

/// Rasterizes several polygon groups independently and unions their
/// coverage with per-pixel max. Used for strokes, where overlapping
/// segment quads must not blend twice.
pub fn rasterize_union(
    groups: &[Vec<Polygon>],
    clip_w: u32,
    clip_h: u32,
    device: &DeviceProfile,
) -> Mask {
    // Compute the union placement first so all masks align.
    let mut bounds: Option<(f64, f64, f64, f64)> = None;
    for g in groups {
        for p in g {
            if let Some(b) = p.bounds() {
                bounds = Some(match bounds {
                    None => b,
                    Some(acc) => (
                        acc.0.min(b.0),
                        acc.1.min(b.1),
                        acc.2.max(b.2),
                        acc.3.max(b.3),
                    ),
                });
            }
        }
    }
    let Some((bx0, by0, bx1, by1)) = bounds else {
        return Mask::empty();
    };
    let x0 = (bx0.floor() as i64 - 1).max(0);
    let y0 = (by0.floor() as i64 - 1).max(0);
    let x1 = (bx1.ceil() as i64 + 1).min(clip_w as i64);
    let y1 = (by1.ceil() as i64 + 1).min(clip_h as i64);
    if x1 <= x0 || y1 <= y0 {
        return Mask::empty();
    }
    let w = (x1 - x0) as usize;
    let h = (y1 - y0) as usize;
    let mut acc = Mask {
        x0,
        y0,
        w,
        h,
        cov: vec![0.0; w * h],
    };
    for g in groups {
        let m = rasterize(g, FillRule::NonZero, clip_w, clip_h, device);
        if m.w == 0 {
            continue;
        }
        // Re-place `m` into `acc` coordinates.
        for row in 0..m.h {
            let ay = m.y0 + row as i64 - acc.y0;
            if ay < 0 || ay as usize >= acc.h {
                continue;
            }
            for col in 0..m.w {
                let ax = m.x0 + col as i64 - acc.x0;
                if ax < 0 || ax as usize >= acc.w {
                    continue;
                }
                let idx = ay as usize * acc.w + ax as usize;
                acc.cov[idx] = acc.cov[idx].max(m.cov[row * m.w + col]);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, Transform};
    use crate::path::Path;

    fn device() -> DeviceProfile {
        DeviceProfile::intel_ubuntu()
    }

    fn rect_polys(x: f64, y: f64, w: f64, h: f64) -> Vec<Polygon> {
        let mut p = Path::new();
        p.rect(x, y, w, h);
        p.flatten(&Transform::identity())
    }

    #[test]
    fn pixel_aligned_rect_has_full_coverage() {
        let m = rasterize(
            &rect_polys(2.0, 2.0, 4.0, 3.0),
            FillRule::NonZero,
            20,
            20,
            &device(),
        );
        assert!((m.coverage(3, 3) - 1.0).abs() < 1e-6);
        assert_eq!(m.coverage(1, 1), 0.0);
        assert_eq!(m.coverage(6, 3), 0.0);
        // Total area = 12 px.
        assert!((m.total() - 12.0).abs() < 0.01, "total={}", m.total());
    }

    #[test]
    fn half_pixel_rect_has_half_coverage() {
        let m = rasterize(
            &rect_polys(0.0, 0.0, 1.0, 0.5),
            FillRule::NonZero,
            4,
            4,
            &device(),
        );
        let c = m.coverage(0, 0);
        assert!((c - 0.5).abs() < 0.13, "coverage {c}");
    }

    #[test]
    fn nonzero_vs_evenodd_differ_on_overlap() {
        // Two overlapping same-direction squares: nonzero fills both,
        // evenodd leaves a hole in the intersection.
        let mut p = Path::new();
        p.rect(0.0, 0.0, 6.0, 6.0);
        p.rect(2.0, 2.0, 6.0, 6.0);
        let polys = p.flatten(&Transform::identity());
        let nz = rasterize(&polys, FillRule::NonZero, 16, 16, &device());
        let eo = rasterize(&polys, FillRule::EvenOdd, 16, 16, &device());
        assert!(nz.coverage(3, 3) > 0.9);
        assert!(eo.coverage(3, 3) < 0.1, "evenodd hole expected");
        assert!(eo.coverage(1, 1) > 0.9);
    }

    #[test]
    fn clip_truncates_mask() {
        let m = rasterize(
            &rect_polys(-5.0, -5.0, 100.0, 100.0),
            FillRule::NonZero,
            8,
            8,
            &device(),
        );
        assert_eq!((m.x0, m.y0), (0, 0));
        assert!(m.w <= 8 && m.h <= 8);
        assert!((m.coverage(7, 7) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn device_phase_changes_edge_pixels() {
        // A rect with a fractional edge: coverage on the boundary pixel
        // must differ between devices.
        let polys = rect_polys(1.3, 1.3, 3.4, 3.4);
        let a = rasterize(
            &polys,
            FillRule::NonZero,
            10,
            10,
            &DeviceProfile::intel_ubuntu(),
        );
        let b = rasterize(
            &polys,
            FillRule::NonZero,
            10,
            10,
            &DeviceProfile::apple_m1(),
        );
        let edge_a = a.coverage(1, 2);
        let edge_b = b.coverage(1, 2);
        assert!(
            (edge_a - edge_b).abs() > 1e-4,
            "expected device-dependent AA: {edge_a} vs {edge_b}"
        );
    }

    #[test]
    fn rasterize_is_deterministic() {
        let mut p = Path::new();
        p.move_to(0.5, 0.5);
        p.line_to(9.3, 2.7);
        p.line_to(4.1, 8.8);
        p.close();
        let polys = p.flatten(&Transform::identity());
        let a = rasterize(&polys, FillRule::NonZero, 12, 12, &device());
        let b = rasterize(&polys, FillRule::NonZero, 12, 12, &device());
        assert_eq!(a.cov, b.cov);
    }

    #[test]
    fn union_respects_overlap() {
        let g1 = rect_polys(0.0, 0.0, 4.0, 4.0);
        let g2 = rect_polys(2.0, 2.0, 4.0, 4.0);
        let m = rasterize_union(&[g1, g2], 10, 10, &device());
        // Overlap pixel still has coverage exactly 1 (max, not sum).
        assert!((m.coverage(3, 3) - 1.0).abs() < 1e-6);
        assert!((m.coverage(0, 0) - 1.0).abs() < 1e-6);
        assert!((m.coverage(5, 5) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn open_polyline_is_implicitly_closed_for_fill() {
        let tri = vec![Polygon {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(8.0, 0.0),
                Point::new(0.0, 8.0),
            ],
            closed: false,
        }];
        let m = rasterize(&tri, FillRule::NonZero, 10, 10, &device());
        assert!(m.coverage(1, 1) > 0.9);
    }

    #[test]
    fn empty_input_yields_empty_mask() {
        let m = rasterize(&[], FillRule::NonZero, 10, 10, &device());
        assert_eq!(m.w, 0);
        assert_eq!(m.coverage(0, 0), 0.0);
    }
}
