//! Standard (RFC 4648) base64 encoding and decoding.
//!
//! `toDataURL` returns `data:<mime>;base64,<payload>`; we implement the
//! codec from scratch so the crate has no image/encoding dependencies.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with `=` padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 63] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Decodes standard base64 (padding required for trailing groups, matching
/// what `encode` produces; whitespace is not accepted). Returns `None` on
/// any invalid input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (!last && pad > 0) {
            return None;
        }
        // Padding may only be trailing within the final group.
        if pad >= 1 && chunk[3] != b'=' {
            return None;
        }
        if pad == 2 && chunk[2] != b'=' {
            return None;
        }
        let v0 = val(chunk[0])?;
        let v1 = val(chunk[1])?;
        let v2 = if pad >= 2 { 0 } else { val(chunk[2])? };
        let v3 = if pad >= 1 { 0 } else { val(chunk[3])? };
        let n = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_test_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_roundtrip() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd", &[0u8, 255, 128, 7]] {
            assert_eq!(decode(&encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode("Zg=").is_none()); // bad length
        assert!(decode("Z!==").is_none()); // bad char
        assert!(decode("====").is_none()); // too much padding
        assert!(decode("Zg==Zg==").is_none()); // padding mid-stream
        assert!(decode("Zm9vZg==").is_some()); // multiple groups fine
    }

    #[cfg(test)]
    mod props {
        // The proptest stub swallows test bodies; imports look unused.
        #![allow(unused_imports)]
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
            }

            #[test]
            fn output_length_is_padded_multiple_of_four(data in proptest::collection::vec(any::<u8>(), 0..128)) {
                prop_assert_eq!(encode(&data).len() % 4, 0);
            }
        }
    }
}
