//! Stroke geometry generation.
//!
//! Strokes are rendered by expanding each flattened segment into a quad of
//! `lineWidth` thickness, adding cap/join disks, and rasterizing the pieces
//! with coverage-union so overlaps do not double-blend. Joins are always
//! round (miter joins are approximated by round ones — a documented
//! simplification; the scripts we model do not set `lineJoin`).

use crate::geom::Point;
use crate::path::Polygon;

/// `lineCap` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineCap {
    /// Flat edge at the endpoint (canvas default).
    #[default]
    Butt,
    /// Semicircular cap.
    Round,
    /// Square cap extending half the line width.
    Square,
}

impl LineCap {
    /// Parses the canvas `lineCap` string.
    pub fn parse(s: &str) -> Option<LineCap> {
        match s {
            "butt" => Some(LineCap::Butt),
            "round" => Some(LineCap::Round),
            "square" => Some(LineCap::Square),
            _ => None,
        }
    }
}

/// Number of vertices used to approximate cap/join disks. Chosen odd-ish
/// and fixed so stroke geometry is deterministic.
const DISK_SEGMENTS: usize = 12;

/// Expands flattened polylines into independently rasterizable polygon
/// groups forming the stroke outline.
pub fn stroke_polygons(polys: &[Polygon], width: f64, cap: LineCap) -> Vec<Vec<Polygon>> {
    let hw = (width / 2.0).max(0.01);
    let mut groups: Vec<Vec<Polygon>> = Vec::new();
    for poly in polys {
        let pts = &poly.points;
        if pts.len() < 2 {
            // Degenerate subpath: round/square caps still paint a dot.
            if let (Some(p), true) = (pts.first(), cap != LineCap::Butt) {
                groups.push(vec![disk(*p, hw)]);
            }
            continue;
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if let Some(quad) = segment_quad(a, b, hw) {
                groups.push(vec![quad]);
            }
        }
        // Round joins at interior vertices (and the wrap vertex if closed).
        let interior: Box<dyn Iterator<Item = usize>> = if poly.closed {
            Box::new(0..pts.len())
        } else {
            Box::new(1..pts.len() - 1)
        };
        for i in interior {
            groups.push(vec![disk(pts[i], hw)]);
        }
        if !poly.closed {
            match cap {
                LineCap::Butt => {}
                LineCap::Round => {
                    groups.push(vec![disk(pts[0], hw)]);
                    if let Some(&last) = pts.last() {
                        groups.push(vec![disk(last, hw)]);
                    }
                }
                LineCap::Square => {
                    if let Some(q) = square_cap(pts[1], pts[0], hw) {
                        groups.push(vec![q]);
                    }
                    if let Some(q) = square_cap(pts[pts.len() - 2], pts[pts.len() - 1], hw) {
                        groups.push(vec![q]);
                    }
                }
            }
        }
    }
    groups
}

/// A rectangle of half-width `hw` around segment `a -> b`, or `None` for a
/// zero-length segment.
fn segment_quad(a: Point, b: Point, hw: f64) -> Option<Polygon> {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt();
    if len < 1e-12 {
        return None;
    }
    let nx = -dy / len * hw;
    let ny = dx / len * hw;
    Some(Polygon {
        points: vec![
            Point::new(a.x + nx, a.y + ny),
            Point::new(b.x + nx, b.y + ny),
            Point::new(b.x - nx, b.y - ny),
            Point::new(a.x - nx, a.y - ny),
        ],
        closed: true,
    })
}

/// A square cap extending beyond endpoint `end` away from `from`.
fn square_cap(from: Point, end: Point, hw: f64) -> Option<Polygon> {
    let dx = end.x - from.x;
    let dy = end.y - from.y;
    let len = (dx * dx + dy * dy).sqrt();
    if len < 1e-12 {
        return None;
    }
    let ux = dx / len;
    let uy = dy / len;
    let ext = Point::new(end.x + ux * hw, end.y + uy * hw);
    segment_quad(end, ext, hw)
}

/// A regular polygon approximating a disk of radius `r` at `c`.
fn disk(c: Point, r: f64) -> Polygon {
    let mut points = Vec::with_capacity(DISK_SEGMENTS);
    for i in 0..DISK_SEGMENTS {
        let ang = std::f64::consts::TAU * i as f64 / DISK_SEGMENTS as f64;
        let (s, co) = ang.sin_cos();
        points.push(Point::new(c.x + r * co, c.y + r * s));
    }
    Polygon {
        points,
        closed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::fill::rasterize_union;
    use crate::geom::Transform;
    use crate::path::Path;

    fn flatten(p: &Path) -> Vec<Polygon> {
        p.flatten(&Transform::identity())
    }

    #[test]
    fn horizontal_line_stroke_covers_band() {
        let mut p = Path::new();
        p.move_to(2.0, 5.0);
        p.line_to(10.0, 5.0);
        let groups = stroke_polygons(&flatten(&p), 2.0, LineCap::Butt);
        let m = rasterize_union(&groups, 16, 16, &DeviceProfile::intel_ubuntu());
        // Band is rows y=4..6 between x=2..10.
        assert!(m.coverage(5, 4) > 0.9);
        assert!(m.coverage(5, 5) > 0.9);
        assert!(m.coverage(5, 2) < 0.1);
        assert!(m.coverage(0, 5) < 0.1, "butt cap must not extend left");
    }

    #[test]
    fn square_cap_extends() {
        let mut p = Path::new();
        p.move_to(4.0, 5.0);
        p.line_to(10.0, 5.0);
        let butt = stroke_polygons(&flatten(&p), 2.0, LineCap::Butt);
        let square = stroke_polygons(&flatten(&p), 2.0, LineCap::Square);
        let mb = rasterize_union(&butt, 16, 16, &DeviceProfile::intel_ubuntu());
        let ms = rasterize_union(&square, 16, 16, &DeviceProfile::intel_ubuntu());
        assert!(ms.coverage(3, 5) > 0.5, "square cap should cover x=3");
        assert!(mb.coverage(3, 5) < 0.2);
    }

    #[test]
    fn round_cap_paints_dot_for_degenerate_path() {
        let poly = Polygon {
            points: vec![Point::new(5.0, 5.0)],
            closed: false,
        };
        let groups = stroke_polygons(&[poly], 4.0, LineCap::Round);
        assert_eq!(groups.len(), 1);
        let m = rasterize_union(&groups, 10, 10, &DeviceProfile::intel_ubuntu());
        assert!(m.coverage(5, 5) > 0.9);
    }

    #[test]
    fn overlapping_segments_do_not_double_cover() {
        let mut p = Path::new();
        p.move_to(2.0, 2.0);
        p.line_to(10.0, 2.0);
        p.line_to(2.0, 2.1); // folds back over itself
        let groups = stroke_polygons(&flatten(&p), 2.0, LineCap::Butt);
        let m = rasterize_union(&groups, 16, 16, &DeviceProfile::intel_ubuntu());
        assert!(m.coverage(5, 2) <= 1.0 + 1e-6);
    }

    #[test]
    fn zero_length_segments_are_skipped() {
        assert!(segment_quad(Point::new(1.0, 1.0), Point::new(1.0, 1.0), 1.0).is_none());
    }

    #[test]
    fn line_cap_parse() {
        assert_eq!(LineCap::parse("round"), Some(LineCap::Round));
        assert_eq!(LineCap::parse("bevel"), None);
    }
}
