//! Path construction and flattening.
//!
//! A [`Path`] records the verbs issued through the Canvas path API
//! (`moveTo`, `lineTo`, `quadraticCurveTo`, `bezierCurveTo`, `arc`,
//! `ellipse`, `rect`, `closePath`). Before rasterization the path is
//! *flattened* into polygons: curves are subdivided into line segments at a
//! fixed, deterministic tolerance so that identical scripts always produce
//! identical geometry.

use crate::geom::{Point, Transform};

/// One path verb, in canvas user-space coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum PathVerb {
    /// Begin a new subpath at the point.
    MoveTo(Point),
    /// Straight segment to the point.
    LineTo(Point),
    /// Quadratic Bézier via one control point.
    QuadTo(Point, Point),
    /// Cubic Bézier via two control points.
    CubicTo(Point, Point, Point),
    /// Circular/elliptical arc: center, radii, rotation, start/end angle,
    /// and direction flag (`true` = counter-clockwise).
    Arc {
        /// Center of the ellipse.
        center: Point,
        /// Horizontal radius.
        rx: f64,
        /// Vertical radius.
        ry: f64,
        /// Rotation of the ellipse's x-axis, radians.
        rotation: f64,
        /// Start angle, radians.
        start: f64,
        /// End angle, radians.
        end: f64,
        /// Sweep counter-clockwise when true.
        ccw: bool,
    },
    /// Close the current subpath back to its starting point.
    Close,
}

/// A recorded sequence of path verbs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Path {
    verbs: Vec<PathVerb>,
    /// Current pen position (used by `arcTo`-style helpers and flattening).
    cursor: Option<Point>,
    /// Start of the current subpath.
    subpath_start: Option<Point>,
}

impl Path {
    /// An empty path.
    pub fn new() -> Self {
        Path::default()
    }

    /// Whether no verbs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.verbs.is_empty()
    }

    /// The recorded verbs.
    pub fn verbs(&self) -> &[PathVerb] {
        &self.verbs
    }

    /// `moveTo`: starts a new subpath.
    pub fn move_to(&mut self, x: f64, y: f64) {
        let p = Point::new(x, y);
        self.verbs.push(PathVerb::MoveTo(p));
        self.cursor = Some(p);
        self.subpath_start = Some(p);
    }

    /// `lineTo`. If there is no current point this behaves like `moveTo`,
    /// matching the HTML spec's "ensure there is a subpath" step.
    pub fn line_to(&mut self, x: f64, y: f64) {
        if self.cursor.is_none() {
            self.move_to(x, y);
            return;
        }
        let p = Point::new(x, y);
        self.verbs.push(PathVerb::LineTo(p));
        self.cursor = Some(p);
    }

    /// `quadraticCurveTo`.
    pub fn quad_to(&mut self, cx: f64, cy: f64, x: f64, y: f64) {
        if self.cursor.is_none() {
            self.move_to(cx, cy);
        }
        let p = Point::new(x, y);
        self.verbs.push(PathVerb::QuadTo(Point::new(cx, cy), p));
        self.cursor = Some(p);
    }

    /// `bezierCurveTo`.
    pub fn cubic_to(&mut self, c1x: f64, c1y: f64, c2x: f64, c2y: f64, x: f64, y: f64) {
        if self.cursor.is_none() {
            self.move_to(c1x, c1y);
        }
        let p = Point::new(x, y);
        self.verbs.push(PathVerb::CubicTo(
            Point::new(c1x, c1y),
            Point::new(c2x, c2y),
            p,
        ));
        self.cursor = Some(p);
    }

    /// `arc` — a circular arc. `ccw` selects the counter-clockwise sweep.
    pub fn arc(&mut self, x: f64, y: f64, r: f64, start: f64, end: f64, ccw: bool) {
        self.ellipse(x, y, r, r, 0.0, start, end, ccw);
    }

    /// `ellipse` — an elliptical arc with axis rotation.
    #[allow(clippy::too_many_arguments)]
    pub fn ellipse(
        &mut self,
        x: f64,
        y: f64,
        rx: f64,
        ry: f64,
        rotation: f64,
        start: f64,
        end: f64,
        ccw: bool,
    ) {
        let center = Point::new(x, y);
        let first = ellipse_point(center, rx.abs(), ry.abs(), rotation, start);
        // Canvas spec: a straight line connects the current point to the
        // start of the arc.
        if self.cursor.is_some() {
            self.verbs.push(PathVerb::LineTo(first));
        } else {
            self.verbs.push(PathVerb::MoveTo(first));
            self.subpath_start = Some(first);
        }
        self.verbs.push(PathVerb::Arc {
            center,
            rx: rx.abs(),
            ry: ry.abs(),
            rotation,
            start,
            end,
            ccw,
        });
        self.cursor = Some(ellipse_point(center, rx.abs(), ry.abs(), rotation, end));
    }

    /// `rect` — adds an axis-aligned rectangle as a closed subpath.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        self.move_to(x, y);
        self.line_to(x + w, y);
        self.line_to(x + w, y + h);
        self.line_to(x, y + h);
        self.close();
    }

    /// `closePath`.
    pub fn close(&mut self) {
        self.verbs.push(PathVerb::Close);
        self.cursor = self.subpath_start;
    }

    /// Flattens the path into polygons (one polyline per subpath), applying
    /// `transform` to every generated point. The flattening tolerance is
    /// fixed at 0.1 device pixels scaled by the transform so output geometry
    /// is deterministic.
    pub fn flatten(&self, transform: &Transform) -> Vec<Polygon> {
        let tol_steps = |approx_len: f64| -> usize {
            // One segment per ~2 device pixels, clamped to a deterministic
            // range: enough for smooth curves without unbounded work.
            ((approx_len * transform.max_scale() / 2.0).ceil() as usize).clamp(4, 128)
        };
        let mut polys: Vec<Polygon> = Vec::new();
        let mut cur: Vec<Point> = Vec::new();
        let mut start: Option<Point> = None;
        let flush = |cur: &mut Vec<Point>, closed: bool, polys: &mut Vec<Polygon>| {
            if cur.len() >= 2 {
                polys.push(Polygon {
                    points: std::mem::take(cur),
                    closed,
                });
            } else {
                cur.clear();
            }
        };
        for verb in &self.verbs {
            match verb {
                PathVerb::MoveTo(p) => {
                    flush(&mut cur, false, &mut polys);
                    let tp = transform.apply(*p);
                    cur.push(tp);
                    start = Some(tp);
                }
                PathVerb::LineTo(p) => {
                    let tp = transform.apply(*p);
                    if cur.is_empty() {
                        start = Some(tp);
                    }
                    cur.push(tp);
                }
                PathVerb::QuadTo(c, p) => {
                    let from = *cur.last().unwrap_or(&transform.apply(*c));
                    let c_t = transform.apply(*c);
                    let p_t = transform.apply(*p);
                    let approx = from.distance(c_t) + c_t.distance(p_t);
                    let n = tol_steps(approx / transform.max_scale());
                    for i in 1..=n {
                        let t = i as f64 / n as f64;
                        let a = from.lerp(c_t, t);
                        let b = c_t.lerp(p_t, t);
                        cur.push(a.lerp(b, t));
                    }
                }
                PathVerb::CubicTo(c1, c2, p) => {
                    let from = *cur.last().unwrap_or(&transform.apply(*c1));
                    let c1t = transform.apply(*c1);
                    let c2t = transform.apply(*c2);
                    let pt = transform.apply(*p);
                    let approx = from.distance(c1t) + c1t.distance(c2t) + c2t.distance(pt);
                    let n = tol_steps(approx / transform.max_scale());
                    for i in 1..=n {
                        let t = i as f64 / n as f64;
                        let ab = from.lerp(c1t, t);
                        let bc = c1t.lerp(c2t, t);
                        let cd = c2t.lerp(pt, t);
                        let abc = ab.lerp(bc, t);
                        let bcd = bc.lerp(cd, t);
                        cur.push(abc.lerp(bcd, t));
                    }
                }
                PathVerb::Arc {
                    center,
                    rx,
                    ry,
                    rotation,
                    start: a0,
                    end: a1,
                    ccw,
                } => {
                    let sweep = arc_sweep(*a0, *a1, *ccw);
                    let approx = sweep.abs() * rx.max(*ry);
                    let n = tol_steps(approx);
                    for i in 1..=n {
                        let t = i as f64 / n as f64;
                        let ang = a0 + sweep * t;
                        let p = ellipse_point(*center, *rx, *ry, *rotation, ang);
                        let tp = transform.apply(p);
                        if cur.is_empty() {
                            start = Some(tp);
                        }
                        cur.push(tp);
                    }
                }
                PathVerb::Close => {
                    if let Some(s) = start {
                        if cur.last() != Some(&s) {
                            cur.push(s);
                        }
                    }
                    flush(&mut cur, true, &mut polys);
                    if let Some(s) = start {
                        cur.push(s);
                    }
                }
            }
        }
        flush(&mut cur, false, &mut polys);
        polys
    }
}

/// A flattened subpath: a polyline, possibly closed.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    /// Vertices in device space.
    pub points: Vec<Point>,
    /// Whether the subpath was explicitly closed.
    pub closed: bool,
}

impl Polygon {
    /// Bounding box as `(min_x, min_y, max_x, max_y)`, or `None` if empty.
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let first = self.points.first()?;
        let mut b = (first.x, first.y, first.x, first.y);
        for p in &self.points {
            b.0 = b.0.min(p.x);
            b.1 = b.1.min(p.y);
            b.2 = b.2.max(p.x);
            b.3 = b.3.max(p.y);
        }
        Some(b)
    }
}

/// Point on a rotated ellipse at parameter angle `ang`.
fn ellipse_point(center: Point, rx: f64, ry: f64, rotation: f64, ang: f64) -> Point {
    let (sa, ca) = ang.sin_cos();
    let (sr, cr) = rotation.sin_cos();
    let x = rx * ca;
    let y = ry * sa;
    Point::new(center.x + x * cr - y * sr, center.y + x * sr + y * cr)
}

/// Signed sweep from `start` to `end` following the Canvas `arc` rules:
/// sweeps of 2π or more draw the full ellipse.
fn arc_sweep(start: f64, end: f64, ccw: bool) -> f64 {
    const TAU: f64 = std::f64::consts::TAU;
    let raw = end - start;
    if !ccw {
        if raw >= TAU {
            TAU
        } else {
            raw.rem_euclid(TAU)
        }
    } else if -raw >= TAU {
        -TAU
    } else {
        -((-raw).rem_euclid(TAU))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident() -> Transform {
        Transform::identity()
    }

    #[test]
    fn empty_path_flattens_to_nothing() {
        assert!(Path::new().flatten(&ident()).is_empty());
    }

    #[test]
    fn rect_is_one_closed_polygon() {
        let mut p = Path::new();
        p.rect(1.0, 2.0, 3.0, 4.0);
        let polys = p.flatten(&ident());
        assert_eq!(polys.len(), 1);
        assert!(polys[0].closed);
        assert_eq!(polys[0].points.first(), polys[0].points.last());
        assert_eq!(polys[0].bounds(), Some((1.0, 2.0, 4.0, 6.0)));
    }

    #[test]
    fn line_without_move_starts_subpath() {
        let mut p = Path::new();
        p.line_to(5.0, 5.0);
        p.line_to(6.0, 6.0);
        let polys = p.flatten(&ident());
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].points.len(), 2);
    }

    #[test]
    fn full_circle_arc_is_closed_loop() {
        let mut p = Path::new();
        p.arc(10.0, 10.0, 5.0, 0.0, std::f64::consts::TAU, false);
        let polys = p.flatten(&ident());
        assert_eq!(polys.len(), 1);
        let pts = &polys[0].points;
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(first.distance(*last) < 1e-6, "arc should wrap around");
        // All points lie on the circle.
        for pt in pts {
            let d = pt.distance(Point::new(10.0, 10.0));
            assert!((d - 5.0).abs() < 0.05, "point off circle: {d}");
        }
    }

    #[test]
    fn ccw_arc_sweeps_negative() {
        assert!(arc_sweep(0.0, std::f64::consts::PI, true) < 0.0);
        assert!(arc_sweep(0.0, std::f64::consts::PI, false) > 0.0);
        assert_eq!(arc_sweep(0.0, 10.0, false), std::f64::consts::TAU);
    }

    #[test]
    fn quad_curve_hits_endpoints() {
        let mut p = Path::new();
        p.move_to(0.0, 0.0);
        p.quad_to(5.0, 10.0, 10.0, 0.0);
        let polys = p.flatten(&ident());
        let pts = &polys[0].points;
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        let last = pts.last().unwrap();
        assert!(last.distance(Point::new(10.0, 0.0)) < 1e-9);
        // Curve apex is at y = 5 (midpoint of quadratic with control y=10).
        let apex = pts.iter().map(|p| p.y).fold(0.0f64, f64::max);
        assert!((apex - 5.0).abs() < 0.2);
    }

    #[test]
    fn cubic_curve_is_deterministic() {
        let build = || {
            let mut p = Path::new();
            p.move_to(0.0, 0.0);
            p.cubic_to(0.0, 10.0, 10.0, 10.0, 10.0, 0.0);
            p.flatten(&ident())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn transform_applies_to_flattened_points() {
        let mut p = Path::new();
        p.move_to(1.0, 1.0);
        p.line_to(2.0, 2.0);
        let polys = p.flatten(&Transform::scale(2.0, 2.0));
        assert_eq!(polys[0].points[0], Point::new(2.0, 2.0));
        assert_eq!(polys[0].points[1], Point::new(4.0, 4.0));
    }

    #[test]
    fn arc_connects_from_current_point() {
        let mut p = Path::new();
        p.move_to(0.0, 0.0);
        p.arc(10.0, 0.0, 2.0, 0.0, 1.0, false);
        let polys = p.flatten(&ident());
        // Single polyline: line from (0,0) to arc start (12,0), then the arc.
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].points[0], Point::new(0.0, 0.0));
        assert!(polys[0].points[1].distance(Point::new(12.0, 0.0)) < 1e-9);
    }
}
