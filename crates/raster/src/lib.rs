//! # canvassing-raster
//!
//! A deterministic, from-scratch software implementation of the HTML
//! Canvas 2D rendering pipeline, built as the rendering substrate for the
//! *Canvassing the Fingerprinters* (IMC 2025) reproduction.
//!
//! Canvas fingerprinting exploits the fact that the same sequence of
//! Canvas API calls renders to different pixels on different machines,
//! while being perfectly deterministic on any one machine. This crate
//! reproduces both halves of that contract in software:
//!
//! * every drawing operation is a pure function of its inputs and the
//!   active [`device::DeviceProfile`], so a crawl machine renders each
//!   test canvas to byte-identical output every time;
//! * device profiles perturb anti-aliasing sample phases, coverage gamma,
//!   and text metrics, so distinct profiles (the paper's Intel Ubuntu
//!   machine vs. Apple M1 laptop) produce distinct pixels for the same
//!   script.
//!
//! The crate provides:
//!
//! * [`canvas::Canvas2D`] — the `CanvasRenderingContext2D` state machine
//!   (paths, fills, strokes, text, gradients, compositing, image data);
//! * [`png`] — a spec-valid PNG encoder (stored-block zlib, CRC-32,
//!   Adler-32) plus a decoder for its own output;
//! * [`lossy`] — deterministic lossy JPEG/WebP stand-ins (the paper's
//!   heuristics exclude lossy extractions);
//! * [`base64`] — RFC 4648 codec for `toDataURL`;
//! * [`text`] — an embedded 5×7 face, CSS font shorthand parsing, layout
//!   with per-device metric jitter, and procedural emoji;
//! * [`device`] — rendering profiles for the paper's crawl machines.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod base64;
pub mod canvas;
pub mod color;
pub mod device;
pub mod fill;
pub mod geom;
pub mod lossy;
pub mod paint;
pub mod path;
pub mod png;
pub mod pool;
#[cfg(test)]
mod proptests;
pub mod stroke;
pub mod surface;
pub mod text;

pub use canvas::{Canvas2D, ImageFormat};
pub use color::Color;
pub use device::DeviceProfile;
pub use paint::{Gradient, Paint};
pub use pool::SurfacePool;
pub use surface::Surface;

/// A stable 64-bit content hash (FNV-1a) used to cluster identical
/// canvases without storing full data URLs.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }
}
