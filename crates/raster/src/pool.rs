//! Recycling pool for canvas pixel buffers.
//!
//! Every visited page that runs a fingerprinting script allocates at least
//! one canvas backing store (typically 240×60 to 300×150 RGBA — tens of
//! kilobytes), uses it for a few milliseconds, and drops it. Across a
//! full-scale crawl that is hundreds of thousands of short-lived
//! allocations with identical size classes. A [`SurfacePool`] lets a crawl
//! worker hand the raw `Vec<u8>` back after each visit and reuse it for
//! the next site's canvases.
//!
//! Pooling is purely an allocator optimization: recycled buffers are
//! zeroed on reuse ([`Surface::with_buffer`]), so rendered pixels — and
//! therefore every fingerprint hash downstream — are byte-identical with
//! or without the pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::surface::Surface;

/// Maximum buffers retained per pool. Visits use a handful of canvases at
/// a time; anything beyond this is genuinely surplus.
const POOL_CAP: usize = 32;

/// A small LIFO pool of canvas pixel buffers. Cheap to share behind an
/// `Arc`; normally owned per crawl worker so there is no contention.
#[derive(Debug, Default)]
pub struct SurfacePool {
    buffers: Mutex<Vec<Vec<u8>>>,
    reused: AtomicU64,
    allocated: AtomicU64,
}

impl SurfacePool {
    /// Creates an empty pool.
    pub fn new() -> SurfacePool {
        SurfacePool::default()
    }

    /// Takes a buffer from the pool (or a fresh allocation) and builds a
    /// zeroed surface of the requested size over it.
    pub fn take_surface(&self, width: u32, height: u32) -> Surface {
        match self.take_buffer() {
            Some(buf) => Surface::with_buffer(width, height, buf),
            None => Surface::new(width, height),
        }
    }

    /// Pops a raw recycled buffer, if any.
    pub fn take_buffer(&self) -> Option<Vec<u8>> {
        let buf = self
            .buffers
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .pop();
        match buf {
            Some(b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a buffer to the pool for reuse. Buffers beyond the cap are
    /// dropped.
    pub fn recycle_buffer(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut buffers = self
            .buffers
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if buffers.len() < POOL_CAP {
            buffers.push(buf);
        }
    }

    /// Returns a surface's backing allocation to the pool.
    pub fn recycle_surface(&self, surface: Surface) {
        self.recycle_buffer(surface.into_buffer());
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.buffers
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .len()
    }

    /// Whether the pool currently holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(reused, freshly allocated)` take counts since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.reused.load(Ordering::Relaxed),
            self.allocated.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    #[test]
    fn recycled_surface_is_zeroed() {
        let pool = SurfacePool::new();
        let mut s = pool.take_surface(4, 4);
        s.set(1, 1, Color::WHITE);
        pool.recycle_surface(s);
        assert_eq!(pool.len(), 1);
        let s2 = pool.take_surface(4, 4);
        assert!(s2.is_blank(), "recycled buffer must come back zeroed");
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn reuse_across_sizes() {
        let pool = SurfacePool::new();
        let s = pool.take_surface(8, 8);
        pool.recycle_surface(s);
        let s2 = pool.take_surface(2, 2);
        assert_eq!(s2.width(), 2);
        assert_eq!(s2.data().len(), 2 * 2 * 4);
        assert!(s2.is_blank());
        let (reused, allocated) = pool.stats();
        assert_eq!((reused, allocated), (1, 1));
    }

    #[test]
    fn cap_bounds_retention() {
        let pool = SurfacePool::new();
        for _ in 0..POOL_CAP + 10 {
            pool.recycle_buffer(vec![0; 16]);
        }
        assert_eq!(pool.len(), POOL_CAP);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = SurfacePool::new();
        pool.recycle_buffer(Vec::new());
        assert!(pool.is_empty());
    }
}
