//! Lossy image format stand-ins (JPEG and WebP).
//!
//! The paper's detection heuristics *exclude* canvases extracted in lossy
//! formats, because compression destroys the sub-pixel differences
//! fingerprinting needs (§3.2). What matters for the reproduction is that
//! (a) `toDataURL("image/jpeg")` / `("image/webp")` return a deterministic
//! byte stream tagged with the right MIME type, and (b) the encoding is
//! genuinely lossy — two nearby-but-different surfaces can map to the same
//! bytes. We implement that contract with a simple quantize-and-downsample
//! codec wrapped in format-appropriate magic bytes; we do not implement
//! real DCT entropy coding, which no part of the study depends on.

use crate::surface::Surface;

/// Quantization applied per channel (higher quality keeps more bits).
fn quant_shift(quality: f64) -> u32 {
    // quality 1.0 -> keep 6 bits, 0.0 -> keep 3 bits.
    let q = quality.clamp(0.0, 1.0);
    (5.0 - q * 3.0).round() as u32
}

/// Encodes the surface in our JPEG stand-in format. The output begins with
/// the real JPEG SOI/JFIF marker bytes so content sniffers classify it
/// correctly.
pub fn encode_jpeg(surface: &Surface, quality: f64) -> Vec<u8> {
    let mut out = vec![0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10];
    out.extend_from_slice(b"JFIF\0");
    encode_lossy_body(surface, quality, &mut out);
    out.extend_from_slice(&[0xFF, 0xD9]); // EOI
    out
}

/// Encodes the surface in our WebP stand-in format, with a RIFF/WEBP
/// container header.
pub fn encode_webp(surface: &Surface, quality: f64) -> Vec<u8> {
    let mut body = Vec::new();
    encode_lossy_body(surface, quality, &mut body);
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&((body.len() + 4) as u32).to_le_bytes());
    out.extend_from_slice(b"WEBP");
    out.extend_from_slice(&body);
    out
}

/// Shared lossy body: dimensions, then 2×2-downsampled, quantized RGB
/// (alpha is composited onto white first, like real JPEG encoding).
fn encode_lossy_body(surface: &Surface, quality: f64, out: &mut Vec<u8>) {
    let shift = quant_shift(quality);
    let w = surface.width();
    let h = surface.height();
    out.extend_from_slice(&w.to_be_bytes());
    out.extend_from_slice(&h.to_be_bytes());
    out.push(shift as u8);
    let mut y = 0;
    while y < h.max(1) {
        let mut x = 0;
        while x < w.max(1) {
            // Average a 2x2 block, compositing onto white.
            let mut acc = [0u32; 3];
            let mut n = 0u32;
            for dy in 0..2i64 {
                for dx in 0..2i64 {
                    let px = x as i64 + dx;
                    let py = y as i64 + dy;
                    if px < w as i64 && py < h as i64 {
                        let c = surface.get(px, py);
                        let a = c.a as u32;
                        acc[0] += (c.r as u32 * a + 255 * (255 - a)) / 255;
                        acc[1] += (c.g as u32 * a + 255 * (255 - a)) / 255;
                        acc[2] += (c.b as u32 * a + 255 * (255 - a)) / 255;
                        n += 1;
                    }
                }
            }
            for ch in acc {
                let avg = ch.checked_div(n).unwrap_or(0) as u8;
                out.push((avg >> shift) << shift);
            }
            x += 2;
        }
        y += 2;
        if w == 0 || h == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    #[test]
    fn jpeg_has_jfif_magic() {
        let s = Surface::new(4, 4);
        let j = encode_jpeg(&s, 0.92);
        assert_eq!(&j[..2], &[0xFF, 0xD8]);
        assert_eq!(&j[6..10], b"JFIF");
        assert_eq!(&j[j.len() - 2..], &[0xFF, 0xD9]);
    }

    #[test]
    fn webp_has_riff_magic() {
        let s = Surface::new(4, 4);
        let w = encode_webp(&s, 0.8);
        assert_eq!(&w[..4], b"RIFF");
        assert_eq!(&w[8..12], b"WEBP");
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut s = Surface::new(8, 8);
        s.set(1, 1, Color::rgb(123, 45, 67));
        assert_eq!(encode_jpeg(&s, 0.5), encode_jpeg(&s, 0.5));
        assert_eq!(encode_webp(&s, 0.5), encode_webp(&s, 0.5));
    }

    #[test]
    fn encoding_is_lossy() {
        // Two surfaces differing by one LSB collapse to identical bytes —
        // the property that makes lossy formats useless for fingerprinting.
        let mut a = Surface::new(8, 8);
        let mut b = Surface::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                a.set(x, y, Color::rgb(100, 100, 100));
                b.set(x, y, Color::rgb(101, 100, 100));
            }
        }
        assert_ne!(a.data(), b.data());
        assert_eq!(encode_jpeg(&a, 0.9), encode_jpeg(&b, 0.9));
    }

    #[test]
    fn quality_changes_output() {
        let mut s = Surface::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                s.set(x, y, Color::rgb((x * 30) as u8, (y * 30) as u8, 77));
            }
        }
        assert_ne!(encode_jpeg(&s, 1.0), encode_jpeg(&s, 0.0));
    }

    #[test]
    fn zero_sized_surface_does_not_panic() {
        let s = Surface::new(0, 0);
        let _ = encode_jpeg(&s, 0.5);
        let _ = encode_webp(&s, 0.5);
    }
}
