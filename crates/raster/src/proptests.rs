//! Cross-module property tests for the rasterizer: determinism, coverage
//! bounds, and encoder safety under randomized drawing programs.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use crate::canvas::Canvas2D;
use crate::device::DeviceProfile;
use crate::fill::{rasterize, FillRule};
use crate::geom::Transform;
use crate::path::Path;

/// A randomized drawing op, interpreted against a canvas.
#[derive(Debug, Clone)]
enum Op {
    FillRect(f64, f64, f64, f64),
    StrokeRect(f64, f64, f64, f64),
    ClearRect(f64, f64, f64, f64),
    Arc(f64, f64, f64),
    Text(String, f64, f64),
    SetFill(u8, u8, u8),
    SetAlpha(f64),
    Translate(f64, f64),
    Rotate(f64),
    Save,
    Restore,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let coord = -20.0..120.0f64;
    let size = 0.0..80.0f64;
    prop_oneof![
        (coord.clone(), coord.clone(), size.clone(), size.clone())
            .prop_map(|(x, y, w, h)| Op::FillRect(x, y, w, h)),
        (coord.clone(), coord.clone(), size.clone(), size.clone())
            .prop_map(|(x, y, w, h)| Op::StrokeRect(x, y, w, h)),
        (coord.clone(), coord.clone(), size.clone(), size.clone())
            .prop_map(|(x, y, w, h)| Op::ClearRect(x, y, w, h)),
        (coord.clone(), coord.clone(), 0.5..40.0f64).prop_map(|(x, y, r)| Op::Arc(x, y, r)),
        ("[ -~]{0,12}", coord.clone(), coord.clone()).prop_map(|(s, x, y)| Op::Text(s, x, y)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Op::SetFill(r, g, b)),
        (0.0..1.0f64).prop_map(Op::SetAlpha),
        (coord.clone(), coord.clone()).prop_map(|(x, y)| Op::Translate(x, y)),
        (-3.2..3.2f64).prop_map(Op::Rotate),
        Just(Op::Save),
        Just(Op::Restore),
    ]
}

fn run_ops(ops: &[Op], device: DeviceProfile) -> Canvas2D {
    let mut c = Canvas2D::new(100, 60, device);
    for op in ops {
        match op {
            Op::FillRect(x, y, w, h) => c.fill_rect(*x, *y, *w, *h),
            Op::StrokeRect(x, y, w, h) => c.stroke_rect(*x, *y, *w, *h),
            Op::ClearRect(x, y, w, h) => c.clear_rect(*x, *y, *w, *h),
            Op::Arc(x, y, r) => {
                c.begin_path();
                c.arc(*x, *y, *r, 0.0, std::f64::consts::TAU, false);
                c.fill(FillRule::NonZero);
            }
            Op::Text(s, x, y) => c.fill_text(s, *x, *y),
            Op::SetFill(r, g, b) => c.set_fill_style(&format!("rgb({r},{g},{b})")),
            Op::SetAlpha(a) => c.set_global_alpha(*a),
            Op::Translate(x, y) => c.translate(*x, *y),
            Op::Rotate(t) => c.rotate(*t),
            Op::Save => c.save(),
            Op::Restore => c.restore(),
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any drawing program is deterministic: running it twice produces
    /// byte-identical data URLs — the invariant the whole study rests on.
    #[test]
    fn random_programs_are_deterministic(ops in proptest::collection::vec(op_strategy(), 0..24)) {
        let a = run_ops(&ops, DeviceProfile::intel_ubuntu()).to_data_url("image/png", None);
        let b = run_ops(&ops, DeviceProfile::intel_ubuntu()).to_data_url("image/png", None);
        prop_assert_eq!(a, b);
    }

    /// Every program encodes to a decodable PNG with the right dimensions.
    #[test]
    fn random_programs_encode_valid_png(ops in proptest::collection::vec(op_strategy(), 0..16)) {
        let c = run_ops(&ops, DeviceProfile::apple_m1());
        let bytes = c.encode(crate::canvas::ImageFormat::Png, 0.92);
        let decoded = crate::png::decode(&bytes).expect("own PNG decodes");
        prop_assert_eq!(decoded.width(), 100);
        prop_assert_eq!(decoded.height(), 60);
    }

    /// Coverage masks stay within [0, 1] for arbitrary triangles on every
    /// device profile.
    #[test]
    fn coverage_is_bounded(
        pts in proptest::collection::vec((-30.0..130.0f64, -30.0..90.0f64), 3..7),
    ) {
        let mut path = Path::new();
        path.move_to(pts[0].0, pts[0].1);
        for (x, y) in &pts[1..] {
            path.line_to(*x, *y);
        }
        path.close();
        let polys = path.flatten(&Transform::identity());
        for device in [
            DeviceProfile::intel_ubuntu(),
            DeviceProfile::apple_m1(),
            DeviceProfile::windows_nvidia(),
        ] {
            let mask = rasterize(&polys, FillRule::NonZero, 100, 60, &device);
            for &cov in &mask.cov {
                prop_assert!((0.0..=1.0 + 1e-6).contains(&(cov as f64)), "coverage {cov}");
            }
        }
    }

    /// CSS color parsing never panics on arbitrary short strings.
    #[test]
    fn color_parse_total(s in "[ -~]{0,24}") {
        let _ = crate::color::parse_css_color(&s);
    }

    /// Font parsing never panics and, when it succeeds, yields a positive
    /// pixel size.
    #[test]
    fn font_parse_total(s in "[ -~]{0,32}") {
        if let Some(spec) = crate::text::parse_font(&s) {
            prop_assert!(spec.size_px.is_finite());
        }
    }

    /// measureText is monotone under string extension (appending a
    /// character never shrinks the width) for the neutral device.
    #[test]
    fn measure_text_is_monotone(s in "[a-zA-Z0-9 ]{0,16}", c in proptest::char::range('a', 'z')) {
        let spec = crate::text::FontSpec::default();
        let device = DeviceProfile::intel_ubuntu();
        let w1 = crate::text::measure_text(&s, &spec, &device);
        let longer = format!("{s}{c}");
        let w2 = crate::text::measure_text(&longer, &spec, &device);
        prop_assert!(w2 >= w1);
    }
}

mod compositing {
    use proptest::prelude::*;

    use crate::color::Color;
    use crate::surface::{CompositeOp, Surface};

    fn any_color() -> impl Strategy<Value = Color> {
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(r, g, b, a)| Color::rgba(r, g, b, a))
    }

    fn any_op() -> impl Strategy<Value = CompositeOp> {
        prop_oneof![
            Just(CompositeOp::SourceOver),
            Just(CompositeOp::DestinationOver),
            Just(CompositeOp::Multiply),
            Just(CompositeOp::Screen),
            Just(CompositeOp::Lighter),
            Just(CompositeOp::Copy),
            Just(CompositeOp::Xor),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Blending any color with any op and any coverage never panics
        /// and always produces an in-range pixel (u8 by construction, but
        /// the blend must also be deterministic).
        #[test]
        fn blend_is_total_and_deterministic(
            dst in any_color(),
            src in any_color(),
            cov in 0.0..=1.0f64,
            op in any_op(),
        ) {
            let run = || {
                let mut s = Surface::new(1, 1);
                s.set(0, 0, dst);
                s.blend(0, 0, src, cov, op);
                s.get(0, 0)
            };
            prop_assert_eq!(run(), run());
        }

        /// Zero coverage is the identity for every operator.
        #[test]
        fn zero_coverage_is_identity(dst in any_color(), src in any_color(), op in any_op()) {
            let mut s = Surface::new(1, 1);
            s.set(0, 0, dst);
            s.blend(0, 0, src, 0.0, op);
            prop_assert_eq!(s.get(0, 0), dst);
        }

        /// Source-over with a fully opaque source at full coverage replaces
        /// the destination color exactly.
        #[test]
        fn opaque_source_over_replaces(dst in any_color(), r in any::<u8>(), g in any::<u8>(), b in any::<u8>()) {
            let mut s = Surface::new(1, 1);
            s.set(0, 0, dst);
            let src = Color::rgb(r, g, b);
            s.blend(0, 0, src, 1.0, CompositeOp::SourceOver);
            prop_assert_eq!(s.get(0, 0), src);
        }

        /// Source-over with a fully transparent source never changes an
        /// opaque destination.
        #[test]
        fn transparent_source_over_opaque_is_identity(
            r in any::<u8>(), g in any::<u8>(), b in any::<u8>(),
            cov in 0.0..=1.0f64,
        ) {
            let dst = Color::rgb(r, g, b);
            let mut s = Surface::new(1, 1);
            s.set(0, 0, dst);
            s.blend(0, 0, Color::TRANSPARENT, cov, CompositeOp::SourceOver);
            prop_assert_eq!(s.get(0, 0), dst);
        }

        /// Out-of-bounds blends are ignored, never panic.
        #[test]
        fn out_of_bounds_blend_is_ignored(
            x in -8i64..16, y in -8i64..16,
            src in any_color(), op in any_op(),
        ) {
            let mut s = Surface::new(4, 4);
            s.blend(x, y, src, 1.0, op);
            // In-bounds pixels may change; out-of-bounds must not corrupt.
            prop_assert_eq!(s.data().len(), 64);
        }

        /// `lighter` is commutative in its operands when starting from a
        /// transparent surface (additive blending).
        #[test]
        fn lighter_is_commutative_from_transparent(a in any_color(), b in any_color()) {
            let run = |first: Color, second: Color| {
                let mut s = Surface::new(1, 1);
                s.blend(0, 0, first, 1.0, CompositeOp::Lighter);
                s.blend(0, 0, second, 1.0, CompositeOp::Lighter);
                s.get(0, 0)
            };
            let ab = run(a, b);
            let ba = run(b, a);
            // Allow 1-LSB rounding asymmetry per channel.
            for (x, y) in [(ab.r, ba.r), (ab.g, ba.g), (ab.b, ba.b), (ab.a, ba.a)] {
                prop_assert!((x as i16 - y as i16).abs() <= 1, "{ab:?} vs {ba:?}");
            }
        }
    }
}
