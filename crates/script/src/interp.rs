//! Tree-walking interpreter for canvascript, plus the shared runtime
//! action helpers (builtins, string/array methods, operator application,
//! member/index access) that the bytecode VM in [`crate::vm`] reuses so
//! both engines share one set of semantics.
//!
//! The tree-walker is no longer the production engine — the bytecode VM
//! is — but it stays as the differential-testing oracle: simpler to audit
//! and structurally independent, so an engine disagreement is a real bug.

use std::collections::HashMap;

use crate::ast::*;
use crate::value::{Host, RuntimeError, Value};

/// Default maximum interpreter steps per script. Fingerprinting scripts run
/// a few thousand operations; the budget exists so a buggy generated script
/// can never hang a crawl worker. Callers with stricter deadlines pass a
/// smaller budget via [`run_with_budget`] / [`eval_with_budget`].
pub const DEFAULT_STEP_BUDGET: u64 = 5_000_000;

/// Control flow signal.
enum Flow {
    Normal(Value),
    Break,
    Continue,
    Return(Value),
}

/// Interpreter state for one script execution.
struct Interp<'h> {
    host: &'h mut dyn Host,
    scopes: Vec<HashMap<String, Value>>,
    functions: HashMap<String, FnDecl>,
    steps: u64,
    budget: u64,
    call_depth: usize,
}

/// Result of a budgeted evaluation: the script outcome plus how many
/// interpreter steps it consumed, so harnesses can charge script work
/// against a per-visit fuel allowance.
#[derive(Debug)]
pub struct EvalOutcome {
    /// The script result (last top-level expression value, or the error).
    pub result: Result<Value, RuntimeError>,
    /// Interpreter steps consumed (0 if the script never parsed).
    pub steps: u64,
}

/// Runs a parsed program against a host. Returns the value of the last
/// top-level expression statement (or `Null`).
pub fn run(program: &Program, host: &mut dyn Host) -> Result<Value, RuntimeError> {
    run_with_budget(program, host, DEFAULT_STEP_BUDGET).result
}

/// Runs a parsed program with an explicit step budget, reporting the steps
/// consumed alongside the result.
pub fn run_with_budget(program: &Program, host: &mut dyn Host, budget: u64) -> EvalOutcome {
    let mut interp = Interp {
        host,
        scopes: vec![HashMap::new()],
        functions: HashMap::new(),
        steps: 0,
        budget,
        call_depth: 0,
    };
    // Hoist function declarations (including nested-in-top-level order
    // independence, which vendor scripts rely on).
    for stmt in &program.stmts {
        if let Stmt::FnDecl(f) = stmt {
            interp.functions.insert(f.name.clone(), f.clone());
        }
    }
    let mut last = Value::Null;
    for stmt in &program.stmts {
        match interp.exec(stmt) {
            Ok(Flow::Normal(v)) => last = v,
            Ok(Flow::Return(v)) => {
                return EvalOutcome {
                    result: Ok(v),
                    steps: interp.steps,
                }
            }
            Ok(Flow::Break) | Ok(Flow::Continue) => {
                return EvalOutcome {
                    result: Err(RuntimeError::new("break/continue outside loop")),
                    steps: interp.steps,
                }
            }
            Err(e) => {
                return EvalOutcome {
                    result: Err(e),
                    steps: interp.steps,
                }
            }
        }
    }
    EvalOutcome {
        result: Ok(last),
        steps: interp.steps,
    }
}

/// Parses and runs source text in one call.
pub fn eval(src: &str, host: &mut dyn Host) -> Result<Value, RuntimeError> {
    eval_with_budget(src, host, DEFAULT_STEP_BUDGET).result
}

/// Parses and runs source text with an explicit step budget. A parse
/// failure consumes zero steps.
pub fn eval_with_budget(src: &str, host: &mut dyn Host, budget: u64) -> EvalOutcome {
    let program = match crate::parser::parse(src) {
        Ok(p) => p,
        Err(e) => {
            return EvalOutcome {
                result: Err(RuntimeError::new(format!("script parse failed: {e}"))),
                steps: 0,
            }
        }
    };
    run_with_budget(&program, host, budget)
}

impl<'h> Interp<'h> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.budget {
            Err(RuntimeError::new("script exceeded step budget"))
        } else {
            Ok(())
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign_var(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        // Implicit global creation, like sloppy-mode JS (vendor scripts
        // assign to undeclared names).
        self.scopes[0].insert(name.to_string(), value);
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, RuntimeError> {
        self.scopes.push(HashMap::new());
        let mut out = Flow::Normal(Value::Null);
        for stmt in stmts {
            match self.exec(stmt)? {
                Flow::Normal(v) => out = Flow::Normal(v),
                other => {
                    self.scopes.pop();
                    return Ok(other);
                }
            }
        }
        self.scopes.pop();
        Ok(out)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.tick()?;
        match stmt {
            Stmt::Let { name, value } => {
                let v = self.eval_expr(value)?;
                match self.scopes.last_mut() {
                    Some(scope) => {
                        scope.insert(name.clone(), v);
                    }
                    None => return Err(RuntimeError::new("scope stack exhausted")),
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Expr(e) => Ok(Flow::Normal(self.eval_expr(e)?)),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_expr(cond)?.truthy() {
                    self.exec_block(then_branch)
                } else {
                    self.exec_block(else_branch)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval_expr(cond)?.truthy() {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal(_) | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    if let Flow::Return(v) = self.exec(init)? {
                        self.scopes.pop();
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    self.tick()?;
                    let keep_going = match cond {
                        Some(c) => self.eval_expr(c)?.truthy(),
                        None => true,
                    };
                    if !keep_going {
                        break;
                    }
                    match self.exec_block(body) {
                        Ok(Flow::Break) => break,
                        Ok(Flow::Return(v)) => {
                            self.scopes.pop();
                            return Ok(Flow::Return(v));
                        }
                        Ok(Flow::Normal(_) | Flow::Continue) => {}
                        Err(e) => {
                            self.scopes.pop();
                            return Err(e);
                        }
                    }
                    if let Some(step) = step {
                        self.eval_expr(step)?;
                    }
                }
                self.scopes.pop();
                Ok(Flow::Normal(Value::Null))
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval_expr(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::FnDecl(f) => {
                self.functions.insert(f.name.clone(), f.clone());
                Ok(Flow::Normal(Value::Null))
            }
        }
    }

    fn eval_expr(&mut self, expr: &Expr) -> Result<Value, RuntimeError> {
        self.tick()?;
        match expr {
            Expr::Number(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(name) {
                    return Ok(v);
                }
                if let Some(v) = self.host.global(name) {
                    return Ok(v);
                }
                Err(RuntimeError::new(format!("undefined variable {name}")))
            }
            Expr::Array(items) => {
                let vals: Result<Vec<Value>, _> = items.iter().map(|e| self.eval_expr(e)).collect();
                Ok(Value::array(vals?))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr)?;
                apply_unary(*op, v)
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Member { object, name } => {
                let obj = self.eval_expr(object)?;
                get_member_value(self.host, obj, name)
            }
            Expr::Index { object, index } => {
                let obj = self.eval_expr(object)?;
                let idx = self.eval_expr(index)?;
                index_get(obj, idx)
            }
            Expr::Call { name, args } => {
                let arg_vals: Result<Vec<Value>, _> =
                    args.iter().map(|e| self.eval_expr(e)).collect();
                self.call_function(name, arg_vals?)
            }
            Expr::MethodCall {
                object,
                method,
                args,
            } => {
                let obj = self.eval_expr(object)?;
                let arg_vals: Result<Vec<Value>, _> =
                    args.iter().map(|e| self.eval_expr(e)).collect();
                call_method_value(self.host, obj, method, arg_vals?)
            }
            Expr::Assign { target, value } => {
                let v = self.eval_expr(value)?;
                match &**target {
                    AssignTarget::Ident(name) => {
                        self.assign_var(name, v.clone())?;
                    }
                    AssignTarget::Member { object, name } => {
                        let obj = self.eval_expr(object)?;
                        set_member_value(self.host, obj, name, v.clone())?;
                    }
                    AssignTarget::Index { object, index } => {
                        let obj = self.eval_expr(object)?;
                        let idx = self.eval_expr(index)?;
                        index_set(obj, idx, v.clone())?;
                    }
                }
                Ok(v)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, RuntimeError> {
        // Short-circuit ops first.
        match op {
            BinOp::And => {
                let l = self.eval_expr(lhs)?;
                return if !l.truthy() {
                    Ok(l)
                } else {
                    self.eval_expr(rhs)
                };
            }
            BinOp::Or => {
                let l = self.eval_expr(lhs)?;
                return if l.truthy() {
                    Ok(l)
                } else {
                    self.eval_expr(rhs)
                };
            }
            _ => {}
        }
        let l = self.eval_expr(lhs)?;
        let r = self.eval_expr(rhs)?;
        apply_binary(op, l, r)
    }

    fn call_function(&mut self, name: &str, args: Vec<Value>) -> Result<Value, RuntimeError> {
        if let Some(v) = builtin(name, &args)? {
            return Ok(v);
        }
        let Some(decl) = self.functions.get(name).cloned() else {
            return Err(RuntimeError::new(format!("undefined function {name}")));
        };
        if self.call_depth >= 64 {
            return Err(RuntimeError::new("call stack exceeded"));
        }
        self.call_depth += 1;
        // Functions see globals (scope 0) plus their own frame — no
        // closures, which the modeled scripts don't need.
        let globals = self.scopes[0].clone();
        let saved = std::mem::replace(&mut self.scopes, vec![globals]);
        let mut frame = HashMap::new();
        for (i, p) in decl.params.iter().enumerate() {
            frame.insert(p.clone(), args.get(i).cloned().unwrap_or(Value::Null));
        }
        self.scopes.push(frame);
        let mut result = Value::Null;
        let mut error = None;
        for stmt in &decl.body {
            match self.exec(stmt) {
                Ok(Flow::Return(v)) => {
                    result = v;
                    break;
                }
                Ok(Flow::Break | Flow::Continue) => {
                    error = Some(RuntimeError::new("break/continue outside loop"));
                    break;
                }
                Ok(Flow::Normal(_)) => {}
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        // Propagate global mutations back, then restore locals.
        let new_globals = self.scopes[0].clone();
        self.scopes = saved;
        self.scopes[0] = new_globals;
        self.call_depth -= 1;
        match error {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }
}

/// The fixed builtin table. Builtins shadow user functions of the same
/// name (the tree-walker checks them first), so the compiler resolves
/// calls to them statically by index.
pub(crate) const BUILTIN_NAMES: &[&str] = &[
    "len",
    "str",
    "num",
    "floor",
    "ceil",
    "round",
    "abs",
    "sqrt",
    "pow",
    "min",
    "max",
    "sin",
    "cos",
    "pi",
    "fromCharCode",
];

/// Index of a builtin by name, if it is one.
pub(crate) fn builtin_index(name: &str) -> Option<u16> {
    BUILTIN_NAMES
        .iter()
        .position(|&b| b == name)
        .map(|i| i as u16)
}

/// Name of builtin `idx` (for disassembly and downstream bytecode
/// analyses; `"?"` when out of range).
pub fn builtin_name(idx: u16) -> &'static str {
    BUILTIN_NAMES.get(idx as usize).copied().unwrap_or("?")
}

/// Invokes builtin `idx`. Both engines call through here so argument
/// coercion and error text stay identical.
pub(crate) fn call_builtin(idx: u16, args: &[Value]) -> Result<Value, RuntimeError> {
    let name = builtin_name(idx);
    let num = |i: usize| -> Result<f64, RuntimeError> {
        args.get(i)
            .and_then(Value::as_num)
            .ok_or_else(|| RuntimeError::new(format!("{name}: expected number arg {i}")))
    };
    let out = match name {
        "len" => {
            let v = args
                .first()
                .ok_or_else(|| RuntimeError::new("len: missing arg"))?;
            match v {
                Value::Str(s) => Value::Num(s.chars().count() as f64),
                Value::Array(a) => Value::Num(a.borrow().len() as f64),
                _ => return Err(RuntimeError::new("len: not a string or array")),
            }
        }
        "str" => Value::Str(
            args.first()
                .map(Value::to_display_string)
                .unwrap_or_default(),
        ),
        "num" => Value::Num(num(0)?),
        "floor" => Value::Num(num(0)?.floor()),
        "ceil" => Value::Num(num(0)?.ceil()),
        "round" => Value::Num(num(0)?.round()),
        "abs" => Value::Num(num(0)?.abs()),
        "sqrt" => Value::Num(num(0)?.sqrt()),
        "pow" => Value::Num(num(0)?.powf(num(1)?)),
        "min" => Value::Num(num(0)?.min(num(1)?)),
        "max" => Value::Num(num(0)?.max(num(1)?)),
        "sin" => Value::Num(num(0)?.sin()),
        "cos" => Value::Num(num(0)?.cos()),
        "pi" => Value::Num(std::f64::consts::PI),
        "fromCharCode" => {
            let c = char::from_u32(num(0)? as u32)
                .ok_or_else(|| RuntimeError::new("fromCharCode: invalid code point"))?;
            Value::Str(c.to_string())
        }
        _ => return Err(RuntimeError::new(format!("unknown builtin {name}"))),
    };
    Ok(out)
}

/// Free builtin functions available to every script; `None` when `name`
/// is not a builtin.
fn builtin(name: &str, args: &[Value]) -> Result<Option<Value>, RuntimeError> {
    match builtin_index(name) {
        Some(idx) => call_builtin(idx, args).map(Some),
        None => Ok(None),
    }
}

/// Applies a unary operator.
pub(crate) fn apply_unary(op: UnOp, v: Value) -> Result<Value, RuntimeError> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.truthy())),
        UnOp::Neg => {
            let n = v
                .as_num()
                .ok_or_else(|| RuntimeError::new("cannot negate non-number"))?;
            Ok(Value::Num(-n))
        }
    }
}

/// Applies a non-short-circuit binary operator to evaluated operands.
/// `And`/`Or` never reach here: the tree-walker short-circuits before
/// evaluation and the compiler lowers them to peek-jumps.
pub(crate) fn apply_binary(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    let num_op = |f: fn(f64, f64) -> f64| -> Result<Value, RuntimeError> {
        match (l.as_num(), r.as_num()) {
            (Some(a), Some(b)) => Ok(Value::Num(f(a, b))),
            _ => Err(RuntimeError::new("arithmetic on non-numbers")),
        }
    };
    match op {
        BinOp::Add => {
            // String concatenation when either side is a string.
            if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                Ok(Value::Str(format!(
                    "{}{}",
                    l.to_display_string(),
                    r.to_display_string()
                )))
            } else {
                num_op(|a, b| a + b)
            }
        }
        BinOp::Sub => num_op(|a, b| a - b),
        BinOp::Mul => num_op(|a, b| a * b),
        BinOp::Div => num_op(|a, b| a / b),
        BinOp::Rem => num_op(|a, b| a % b),
        BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
        BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    let (a, b) = (l.as_num(), r.as_num());
                    match (a, b) {
                        (Some(a), Some(b)) => a
                            .partial_cmp(&b)
                            .ok_or_else(|| RuntimeError::new("NaN comparison"))?,
                        _ => return Err(RuntimeError::new("comparison on non-numbers")),
                    }
                }
            };
            let result = match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are handled by the engines"),
    }
}

/// Reads a property (`obj.name`).
pub(crate) fn get_member_value(
    host: &mut dyn Host,
    obj: Value,
    name: &str,
) -> Result<Value, RuntimeError> {
    match obj {
        Value::Host(h) => host.get_prop(h, name),
        Value::Str(s) if name == "length" => Ok(Value::Num(s.chars().count() as f64)),
        Value::Array(items) if name == "length" => Ok(Value::Num(items.borrow().len() as f64)),
        other => Err(RuntimeError::new(format!(
            "no property {name} on {}",
            other.to_display_string()
        ))),
    }
}

/// Writes a property (`obj.name = v`); only host objects have settable
/// properties.
pub(crate) fn set_member_value(
    host: &mut dyn Host,
    obj: Value,
    name: &str,
    v: Value,
) -> Result<(), RuntimeError> {
    match obj {
        Value::Host(h) => host.set_prop(h, name, v),
        _ => Err(RuntimeError::new(format!(
            "cannot set property {name} on non-host value"
        ))),
    }
}

/// Reads an index (`obj[i]`): array element or string character, null
/// out of range.
pub(crate) fn index_get(obj: Value, idx: Value) -> Result<Value, RuntimeError> {
    match (obj, idx) {
        (Value::Array(items), Value::Num(i)) => {
            let items = items.borrow();
            let i = i as usize;
            Ok(items.get(i).cloned().unwrap_or(Value::Null))
        }
        (Value::Str(s), Value::Num(i)) => Ok(s
            .chars()
            .nth(i as usize)
            .map(|c| Value::Str(c.to_string()))
            .unwrap_or(Value::Null)),
        _ => Err(RuntimeError::new("invalid index operation")),
    }
}

/// Writes an index (`obj[i] = v`), growing the array with nulls.
pub(crate) fn index_set(obj: Value, idx: Value, v: Value) -> Result<(), RuntimeError> {
    match (obj, idx) {
        (Value::Array(items), Value::Num(i)) => {
            let mut items = items.borrow_mut();
            let i = i as usize;
            if i >= items.len() {
                items.resize(i + 1, Value::Null);
            }
            items[i] = v;
            Ok(())
        }
        _ => Err(RuntimeError::new("invalid index assignment")),
    }
}

/// Dispatches a method call on any receiver kind. Both engines call
/// through here so receiver dispatch and error text stay identical.
pub(crate) fn call_method_value(
    host: &mut dyn Host,
    obj: Value,
    method: &str,
    args: Vec<Value>,
) -> Result<Value, RuntimeError> {
    match obj {
        Value::Host(h) => host.call_method(h, method, args),
        Value::Str(s) => string_method(&s, method, &args),
        Value::Array(items) => array_method(&items, method, args),
        other => Err(RuntimeError::new(format!(
            "cannot call method {method} on {}",
            other.to_display_string()
        ))),
    }
}

/// String methods (the JS-ish subset vendor scripts use).
fn string_method(s: &str, method: &str, args: &[Value]) -> Result<Value, RuntimeError> {
    match method {
        "charCodeAt" => {
            let i = args.first().and_then(Value::as_num).unwrap_or(0.0) as usize;
            Ok(s.chars()
                .nth(i)
                .map(|c| Value::Num(c as u32 as f64))
                .unwrap_or(Value::Null))
        }
        "indexOf" => {
            let needle = match args.first() {
                Some(Value::Str(n)) => n.clone(),
                _ => return Err(RuntimeError::new("indexOf: expected string")),
            };
            Ok(Value::Num(match s.find(&needle) {
                // Report a char index, consistent with charCodeAt.
                Some(byte_idx) => s[..byte_idx].chars().count() as f64,
                None => -1.0,
            }))
        }
        "substring" | "slice" => {
            let chars: Vec<char> = s.chars().collect();
            let a = args.first().and_then(Value::as_num).unwrap_or(0.0).max(0.0) as usize;
            let b = args
                .get(1)
                .and_then(Value::as_num)
                .map(|n| n.max(0.0) as usize)
                .unwrap_or(chars.len())
                .min(chars.len());
            let a = a.min(b);
            Ok(Value::Str(chars[a..b].iter().collect()))
        }
        "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
        "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
        "startsWith" => match args.first() {
            Some(Value::Str(p)) => Ok(Value::Bool(s.starts_with(p.as_str()))),
            _ => Err(RuntimeError::new("startsWith: expected string")),
        },
        "includes" => match args.first() {
            Some(Value::Str(p)) => Ok(Value::Bool(s.contains(p.as_str()))),
            _ => Err(RuntimeError::new("includes: expected string")),
        },
        "toString" => Ok(Value::Str(s.to_string())),
        other => Err(RuntimeError::new(format!("unknown string method {other}"))),
    }
}

/// Array methods.
fn array_method(
    items: &std::rc::Rc<std::cell::RefCell<Vec<Value>>>,
    method: &str,
    args: Vec<Value>,
) -> Result<Value, RuntimeError> {
    match method {
        "push" => {
            let mut v = items.borrow_mut();
            for a in args {
                v.push(a);
            }
            Ok(Value::Num(v.len() as f64))
        }
        "pop" => Ok(items.borrow_mut().pop().unwrap_or(Value::Null)),
        "join" => {
            let sep = match args.first() {
                Some(Value::Str(s)) => s.clone(),
                _ => ",".to_string(),
            };
            let parts: Vec<String> = items
                .borrow()
                .iter()
                .map(Value::to_display_string)
                .collect();
            Ok(Value::Str(parts.join(&sep)))
        }
        "indexOf" => {
            let needle = args
                .first()
                .ok_or_else(|| RuntimeError::new("indexOf: missing arg"))?;
            let v = items.borrow();
            Ok(Value::Num(
                v.iter()
                    .position(|x| x.loose_eq(needle))
                    .map(|i| i as f64)
                    .unwrap_or(-1.0),
            ))
        }
        other => Err(RuntimeError::new(format!("unknown array method {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullHost;

    fn eval_ok(src: &str) -> Value {
        eval(src, &mut NullHost).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    fn eval_num(src: &str) -> f64 {
        match eval_ok(src) {
            Value::Num(n) => n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn budget_caps_steps_and_reports_consumption() {
        let src = "let i = 0; while (i < 1000) { i = i + 1; }";
        let full = eval_with_budget(src, &mut NullHost, DEFAULT_STEP_BUDGET);
        assert!(full.result.is_ok());
        assert!(full.steps > 1000);
        let starved = eval_with_budget(src, &mut NullHost, 50);
        let err = starved.result.unwrap_err();
        assert!(err.to_string().contains("step budget"), "{err}");
        // The tick that trips the budget is itself counted.
        assert_eq!(starved.steps, 51, "steps stop at the budget");
        // A parse failure consumes nothing.
        assert_eq!(eval_with_budget("let = ;", &mut NullHost, 50).steps, 0);
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_num("1 + 2 * 3;"), 7.0);
        assert_eq!(eval_num("(1 + 2) * 3;"), 9.0);
        assert_eq!(eval_num("10 % 3;"), 1.0);
        assert_eq!(eval_num("-4 + 1;"), -3.0);
    }

    #[test]
    fn string_concat() {
        assert_eq!(eval_ok("\"a\" + 1 + true;").to_display_string(), "a1true");
    }

    #[test]
    fn variables_and_scopes() {
        assert_eq!(eval_num("let x = 2; let y = 3; x * y;"), 6.0);
        // Inner blocks shadow; outer survives.
        assert_eq!(eval_num("let x = 1; if (true) { let x = 9; } x;"), 1.0);
        // Assignment reaches outer scope.
        assert_eq!(eval_num("let x = 1; if (true) { x = 9; } x;"), 9.0);
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "
            let total = 0;
            let i = 0;
            while (true) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                total = total + i;
            }
            total;
        ";
        assert_eq!(eval_num(src), 25.0); // 1+3+5+7+9
    }

    #[test]
    fn for_loop() {
        assert_eq!(
            eval_num("let s = 0; for (let i = 0; i < 5; i = i + 1) { s = s + i; } s;"),
            10.0
        );
    }

    #[test]
    fn functions_and_returns() {
        let src = "
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fib(10);
        ";
        assert_eq!(eval_num(src), 55.0);
    }

    #[test]
    fn functions_see_globals() {
        let src = "
            let base = 100;
            fn add(n) { return base + n; }
            add(5);
        ";
        assert_eq!(eval_num(src), 105.0);
    }

    #[test]
    fn function_can_mutate_globals() {
        let src = "
            let count = 0;
            fn bump() { count = count + 1; }
            bump(); bump(); bump();
            count;
        ";
        assert_eq!(eval_num(src), 3.0);
    }

    #[test]
    fn arrays() {
        assert_eq!(eval_num("let a = [1, 2, 3]; a[1];"), 2.0);
        assert_eq!(eval_num("let a = []; a.push(7); a.push(8); len(a);"), 2.0);
        assert_eq!(
            eval_ok("let a = [1,2]; a.join(\"-\");").to_display_string(),
            "1-2"
        );
        assert_eq!(eval_num("let a = [5]; a[3] = 9; len(a);"), 4.0);
    }

    #[test]
    fn string_methods() {
        assert_eq!(eval_num("\"abc\".charCodeAt(1);"), 98.0);
        assert_eq!(eval_num("\"hello\".indexOf(\"ll\");"), 2.0);
        assert_eq!(
            eval_ok("\"hello\".substring(1, 3);").to_display_string(),
            "el"
        );
        assert_eq!(eval_ok("\"AbC\".toLowerCase();").to_display_string(), "abc");
        assert!(eval_ok("\"data:image/png\".startsWith(\"data:\");").truthy());
    }

    #[test]
    fn builtins() {
        assert_eq!(eval_num("floor(3.7);"), 3.0);
        assert_eq!(eval_num("max(2, 9);"), 9.0);
        assert_eq!(eval_num("len(\"abcd\");"), 4.0);
        assert_eq!(eval_ok("fromCharCode(65);").to_display_string(), "A");
        assert_eq!(eval_num("len(\"😃\");"), 1.0, "emoji is one char");
    }

    #[test]
    fn short_circuit() {
        // RHS would error if evaluated.
        assert!(!eval_ok("false && boom();").truthy());
        assert!(eval_ok("true || boom();").truthy());
    }

    #[test]
    fn comparison_chain() {
        assert!(eval_ok("1 < 2;").truthy());
        assert!(eval_ok("\"a\" < \"b\";").truthy());
        assert!(eval_ok("\"url1\" == \"url1\";").truthy());
        assert!(eval_ok("\"url1\" != \"url2\";").truthy());
    }

    #[test]
    fn undefined_variable_errors() {
        assert!(eval("nope;", &mut NullHost).is_err());
        assert!(eval("nope();", &mut NullHost).is_err());
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        assert!(eval("while (true) { }", &mut NullHost).is_err());
    }

    #[test]
    fn deep_recursion_errors_cleanly() {
        assert!(eval("fn f(n) { return f(n + 1); } f(0);", &mut NullHost).is_err());
    }

    #[test]
    fn host_globals_resolve() {
        struct OneGlobal;
        impl Host for OneGlobal {
            fn global(&mut self, name: &str) -> Option<Value> {
                (name == "answer").then_some(Value::Num(42.0))
            }
            fn get_prop(&mut self, _: u64, _: &str) -> Result<Value, RuntimeError> {
                unreachable!()
            }
            fn set_prop(&mut self, _: u64, _: &str, _: Value) -> Result<(), RuntimeError> {
                unreachable!()
            }
            fn call_method(
                &mut self,
                _: u64,
                _: &str,
                _: Vec<Value>,
            ) -> Result<Value, RuntimeError> {
                unreachable!()
            }
        }
        assert_eq!(
            eval("answer + 1;", &mut OneGlobal).unwrap().as_num(),
            Some(43.0)
        );
    }

    #[test]
    fn string_indexing() {
        assert_eq!(eval_ok("\"abc\"[1];").to_display_string(), "b");
        assert!(matches!(eval_ok("\"abc\"[9];"), Value::Null));
    }
}
