//! Tokenizer for canvascript.
//!
//! The language is a small, deterministic JavaScript subset; source text of
//! vendor fingerprinting scripts is written in it. String literals support
//! the full Unicode range (fingerprinting scripts draw emoji and
//! pangrams), `\u{...}` escapes, and the usual `\n`/`\t`/`\"` escapes.

/// A token with its source position (byte offset of its start).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the source where the token starts.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (always f64).
    Number(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    // keywords
    /// `let`.
    Let,
    /// `fn` / `function`.
    Fn,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    // punctuation
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `.`.
    Dot,
    // operators
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==` (also accepts `===` in source).
    Eq,
    /// `!=` (also accepts `!==`).
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
    /// `!`.
    Not,
    /// End of input.
    Eof,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    // Track byte offsets alongside char indices.
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    let mut off = 0;
    for c in &bytes {
        offsets.push(off);
        off += c.len_utf8();
    }
    offsets.push(off);

    let mut tokens = Vec::new();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| LexError {
        message: msg.to_string(),
        offset: at,
    };

    while i < bytes.len() {
        let c = bytes[i];
        let at = offsets[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment", at));
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    let Some(&ch) = bytes.get(i) else {
                        return Err(err("unterminated string", at));
                    };
                    i += 1;
                    if ch == quote {
                        break;
                    }
                    if ch == '\\' {
                        let Some(&esc) = bytes.get(i) else {
                            return Err(err("dangling escape", at));
                        };
                        i += 1;
                        match esc {
                            'n' => s.push('\n'),
                            't' => s.push('\t'),
                            'r' => s.push('\r'),
                            '\\' => s.push('\\'),
                            '\'' => s.push('\''),
                            '"' => s.push('"'),
                            'u' => {
                                if bytes.get(i) != Some(&'{') {
                                    return Err(err("expected { after \\u", at));
                                }
                                i += 1;
                                let mut hex = String::new();
                                while let Some(&h) = bytes.get(i) {
                                    if h == '}' {
                                        break;
                                    }
                                    hex.push(h);
                                    i += 1;
                                }
                                if bytes.get(i) != Some(&'}') {
                                    return Err(err("unterminated \\u{...}", at));
                                }
                                i += 1;
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| err("bad \\u escape", at))?;
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| err("invalid code point", at))?,
                                );
                            }
                            other => {
                                return Err(err(&format!("unknown escape \\{other}"), at));
                            }
                        }
                    } else {
                        s.push(ch);
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: at,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    // Don't consume a dot followed by a non-digit (member access
                    // on a number is not supported anyway, but be safe).
                    if bytes[i] == '.' && !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| err("bad number", at))?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: at,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let kind = match word.as_str() {
                    "let" | "var" | "const" => TokenKind::Let,
                    "fn" | "function" => TokenKind::Fn,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "for" => TokenKind::For,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "true" => TokenKind::Bool(true),
                    "false" => TokenKind::Bool(false),
                    "null" | "undefined" => TokenKind::Null,
                    _ => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, offset: at });
            }
            _ => {
                let two: Option<char> = bytes.get(i + 1).copied();
                let three: Option<char> = bytes.get(i + 2).copied();
                let (kind, advance) = match (c, two) {
                    ('=', Some('=')) => {
                        if three == Some('=') {
                            (TokenKind::Eq, 3)
                        } else {
                            (TokenKind::Eq, 2)
                        }
                    }
                    ('!', Some('=')) => {
                        if three == Some('=') {
                            (TokenKind::Ne, 3)
                        } else {
                            (TokenKind::Ne, 2)
                        }
                    }
                    ('<', Some('=')) => (TokenKind::Le, 2),
                    ('>', Some('=')) => (TokenKind::Ge, 2),
                    ('&', Some('&')) => (TokenKind::And, 2),
                    ('|', Some('|')) => (TokenKind::Or, 2),
                    ('=', _) => (TokenKind::Assign, 1),
                    ('<', _) => (TokenKind::Lt, 1),
                    ('>', _) => (TokenKind::Gt, 1),
                    ('!', _) => (TokenKind::Not, 1),
                    ('+', _) => (TokenKind::Plus, 1),
                    ('-', _) => (TokenKind::Minus, 1),
                    ('*', _) => (TokenKind::Star, 1),
                    ('/', _) => (TokenKind::Slash, 1),
                    ('%', _) => (TokenKind::Percent, 1),
                    ('(', _) => (TokenKind::LParen, 1),
                    (')', _) => (TokenKind::RParen, 1),
                    ('{', _) => (TokenKind::LBrace, 1),
                    ('}', _) => (TokenKind::RBrace, 1),
                    ('[', _) => (TokenKind::LBracket, 1),
                    (']', _) => (TokenKind::RBracket, 1),
                    (',', _) => (TokenKind::Comma, 1),
                    (';', _) => (TokenKind::Semi, 1),
                    ('.', _) => (TokenKind::Dot, 1),
                    _ => return Err(err(&format!("unexpected character {c:?}"), at)),
                };
                tokens.push(Token { kind, offset: at });
                i += advance;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: offsets[bytes.len()],
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_statement() {
        let k = kinds("let x = 1.5;");
        assert_eq!(
            k,
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(1.5),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        let k = kinds(r#""a\n\"b" '\u{1F603}'"#);
        assert_eq!(
            k,
            vec![
                TokenKind::Str("a\n\"b".into()),
                TokenKind::Str("\u{1F603}".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn raw_emoji_in_string() {
        let k = kinds("\"Cwm 😃 fjord\"");
        assert_eq!(k[0], TokenKind::Str("Cwm 😃 fjord".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("1 // line\n/* block\nmore */ 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn double_and_triple_equals() {
        assert_eq!(kinds("a == b")[1], TokenKind::Eq);
        assert_eq!(kinds("a === b")[1], TokenKind::Eq);
        assert_eq!(kinds("a !== b")[1], TokenKind::Ne);
    }

    #[test]
    fn js_keyword_aliases() {
        assert_eq!(kinds("var x")[0], TokenKind::Let);
        assert_eq!(kinds("const x")[0], TokenKind::Let);
        assert_eq!(kinds("function f")[0], TokenKind::Fn);
        assert_eq!(kinds("undefined")[0], TokenKind::Null);
    }

    #[test]
    fn number_then_method_call_dot() {
        // `2.toString` style: the dot must not be eaten by the number.
        let k = kinds("2.5.x");
        assert_eq!(k[0], TokenKind::Number(2.5));
        assert_eq!(k[1], TokenKind::Dot);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(tokenize("let x = @;").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = tokenize("let  xyz = 1").unwrap();
        assert_eq!(toks[1].offset, 5);
        assert_eq!(&"let  xyz = 1"[toks[1].offset..toks[1].offset + 3], "xyz");
    }
}
