//! Recursive-descent / Pratt parser for canvascript.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse error with source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset into the source.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        offset: e.offset,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at(TokenKind::Eof) {
        stmts.push(p.statement()?);
    }
    Ok(Program { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.tokens[self.pos].offset,
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), ParseError> {
        if self.at(kind) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ----- statements -----

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident()?;
                let value = if self.at(TokenKind::Assign) {
                    self.bump();
                    self.expression()?
                } else {
                    Expr::Null
                };
                self.eat_semi();
                Ok(Stmt::Let { name, value })
            }
            TokenKind::Fn => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::LParen, "(")?;
                let mut params = Vec::new();
                while !self.at(TokenKind::RParen) {
                    params.push(self.ident()?);
                    if !self.at(TokenKind::RParen) {
                        self.expect(TokenKind::Comma, ",")?;
                    }
                }
                self.bump(); // )
                let body = self.block()?;
                Ok(Stmt::FnDecl(FnDecl { name, params, body }))
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "(")?;
                let cond = self.expression()?;
                self.expect(TokenKind::RParen, ")")?;
                let then_branch = self.block_or_single()?;
                let else_branch = if self.at(TokenKind::Else) {
                    self.bump();
                    if self.at(TokenKind::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "(")?;
                let cond = self.expression()?;
                self.expect(TokenKind::RParen, ")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::For => {
                self.bump();
                self.expect(TokenKind::LParen, "(")?;
                let init = if self.at(TokenKind::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.statement()?; // consumes its semicolon
                    Some(Box::new(s))
                };
                let cond = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(TokenKind::Semi, ";")?;
                let step = if self.at(TokenKind::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(TokenKind::RParen, ")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(TokenKind::Semi)
                    || self.at(TokenKind::RBrace)
                    || self.at(TokenKind::Eof)
                {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat_semi();
                Ok(Stmt::Return(value))
            }
            TokenKind::Break => {
                self.bump();
                self.eat_semi();
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.bump();
                self.eat_semi();
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expression()?;
                self.eat_semi();
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn eat_semi(&mut self) {
        while self.at(TokenKind::Semi) {
            self.bump();
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace, "{")?;
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) {
            if self.at(TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.at(TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    // ----- expressions (Pratt) -----

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        if self.at(TokenKind::Assign) {
            self.bump();
            let value = self.assignment()?;
            let target = match lhs {
                Expr::Ident(name) => AssignTarget::Ident(name),
                Expr::Member { object, name } => AssignTarget::Member {
                    object: *object,
                    name,
                },
                Expr::Index { object, index } => AssignTarget::Index {
                    object: *object,
                    index: *index,
                },
                _ => return Err(self.err("invalid assignment target")),
            };
            return Ok(Expr::Assign {
                target: Box::new(target),
                value: Box::new(value),
            });
        }
        Ok(lhs)
    }

    fn binding_power(op: &TokenKind) -> Option<(BinOp, u8)> {
        Some(match op {
            TokenKind::Or => (BinOp::Or, 1),
            TokenKind::And => (BinOp::And, 2),
            TokenKind::Eq => (BinOp::Eq, 3),
            TokenKind::Ne => (BinOp::Ne, 3),
            TokenKind::Lt => (BinOp::Lt, 4),
            TokenKind::Le => (BinOp::Le, 4),
            TokenKind::Gt => (BinOp::Gt, 4),
            TokenKind::Ge => (BinOp::Ge, 4),
            TokenKind::Plus => (BinOp::Add, 5),
            TokenKind::Minus => (BinOp::Sub, 5),
            TokenKind::Star => (BinOp::Mul, 6),
            TokenKind::Slash => (BinOp::Div, 6),
            TokenKind::Percent => (BinOp::Rem, 6),
            _ => return None,
        })
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = Self::binding_power(self.peek()) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary(bp + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary()?),
                })
            }
            TokenKind::Not => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.unary()?),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    if self.at(TokenKind::LParen) {
                        let args = self.call_args()?;
                        expr = Expr::MethodCall {
                            object: Box::new(expr),
                            method: name,
                            args,
                        };
                    } else {
                        expr = Expr::Member {
                            object: Box::new(expr),
                            name,
                        };
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect(TokenKind::RBracket, "]")?;
                    expr = Expr::Index {
                        object: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(TokenKind::LParen, "(")?;
        let mut args = Vec::new();
        while !self.at(TokenKind::RParen) {
            args.push(self.expression()?);
            if !self.at(TokenKind::RParen) {
                self.expect(TokenKind::Comma, ",")?;
            }
        }
        self.bump(); // )
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Expr::Bool(b))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen, ")")?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while !self.at(TokenKind::RBracket) {
                    items.push(self.expression()?);
                    if !self.at(TokenKind::RBracket) {
                        self.expect(TokenKind::Comma, ",")?;
                    }
                }
                self.bump();
                Ok(Expr::Array(items))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_call_chain() {
        let p = parse(r#"let c = document.createElement("canvas");"#).unwrap();
        assert_eq!(p.stmts.len(), 1);
        match &p.stmts[0] {
            Stmt::Let { name, value } => {
                assert_eq!(name, "c");
                assert!(
                    matches!(value, Expr::MethodCall { method, .. } if method == "createElement")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_member_assignment() {
        let p = parse("ctx.fillStyle = \"#f60\";").unwrap();
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { target, .. }) => {
                assert!(
                    matches!(**target, AssignTarget::Member { ref name, .. } if name == "fillStyle")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("1 + 2 * 3;").unwrap();
        match &p.stmts[0] {
            Stmt::Expr(Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            }) => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let p = parse("for (let i = 0; i < 4; i = i + 1) { draw(i); }").unwrap();
        match &p.stmts[0] {
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_declaration() {
        let p = parse("fn draw(ctx, n) { return n * 2; }").unwrap();
        match &p.stmts[0] {
            Stmt::FnDecl(f) => {
                assert_eq!(f.name, "draw");
                assert_eq!(f.params, vec!["ctx", "n"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("if (a) { x(); } else if (b) { y(); } else { z(); }").unwrap();
        match &p.stmts[0] {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_index_and_array() {
        let p = parse("let a = [1, 2, 3]; a[0] = a[1];").unwrap();
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("1 = 2;").is_err());
        assert!(parse("f() = 2;").is_err());
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("if (a) { x();").is_err());
    }

    #[test]
    fn semicolons_are_optional_between_statements() {
        let p = parse("let a = 1\nlet b = 2\n").unwrap();
        assert_eq!(p.stmts.len(), 2);
    }
}
