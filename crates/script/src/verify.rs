//! Bytecode verifier: proves structural well-formedness of a
//! [`CompiledProgram`] without executing it.
//!
//! The compiler ([`crate::compile::compile`]) is total and trusted, but
//! the bytecode is now consumed by more than the VM: the abstract
//! interpreter in `canvassing-analysis` walks chunks as CFGs, and the
//! crawl caches share compiled programs across workers. The verifier
//! pins the invariants both consumers rely on, so a codegen regression
//! surfaces as a deterministic verification error instead of a skewed
//! verdict or a VM panic deep inside a crawl:
//!
//! * **Stack discipline** — a forward dataflow over every reachable
//!   instruction proves the operand stack never underflows, every join
//!   point is reached at one consistent depth, [`Op::Return`] always
//!   sees exactly the return value (depth 1), and [`Op::Halt`] sees an
//!   empty stack.
//! * **Control flow** — every jump target lands strictly inside the
//!   chunk, and control can never fall off the end (the last
//!   instruction of a chunk is a terminator).
//! * **Operand bounds** — constant-pool, symbol-table, function-table,
//!   builtin, and frame-slot operands all index within their tables.
//! * **Fuel attribution** — the three static consequences of the
//!   compiler's pending-tick scheme (DESIGN.md §12) hold: a dedicated
//!   [`Op::Fuel`] always carries fuel, the first instruction of any
//!   non-trivial chunk carries the first statement's entry tick, and
//!   every backward-jump target (loop head) carries fuel so each
//!   iteration is charged.
//!
//! [`crate::ScriptCache`] runs the verifier on every compile in debug
//! builds (so the whole test suite and CI exercise it); release
//! consumers such as the `lint` bin call [`verify`] explicitly.

use crate::bytecode::{CompiledProgram, Insn, Op};

/// A verification failure: which chunk, which instruction, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Chunk name: `"main"` or `"fn <name>"`.
    pub chunk: String,
    /// Instruction offset within the chunk.
    pub pc: usize,
    /// Human-readable violation.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {:04}: {}", self.chunk, self.pc, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Aggregate statistics from a successful verification (reported in the
/// study's bytecode-analyzer rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Chunks checked (main + one per function).
    pub chunks: usize,
    /// Total instructions checked.
    pub insns: usize,
    /// Peak verified operand-stack depth across all chunks.
    pub max_stack: u32,
}

impl VerifyStats {
    /// Merges another run's statistics into this one.
    pub fn absorb(&mut self, other: VerifyStats) {
        self.chunks += other.chunks;
        self.insns += other.insns;
        self.max_stack = self.max_stack.max(other.max_stack);
    }
}

/// Verifies every chunk of a compiled program. Returns aggregate stats
/// on success, the first violation found otherwise.
pub fn verify(prog: &CompiledProgram) -> Result<VerifyStats, VerifyError> {
    let mut stats = VerifyStats::default();
    for &f in &prog.hoisted {
        if f as usize >= prog.fns.len() {
            return Err(VerifyError {
                chunk: "main".to_string(),
                pc: 0,
                message: format!("hoisted function index f{f} out of bounds"),
            });
        }
    }
    verify_chunk(prog, "main".to_string(), &prog.main, prog.main_slots, true)
        .map(|s| stats.absorb(s))?;
    for f in &prog.fns {
        let name = prog
            .symbols
            .get(f.name as usize)
            .map(String::as_str)
            .unwrap_or("?");
        let chunk = format!("fn {name}");
        if f.name as usize >= prog.symbols.len() {
            return Err(VerifyError {
                chunk,
                pc: 0,
                message: format!("function name symbol s{} out of bounds", f.name),
            });
        }
        if let Some(&p) = f.params.iter().find(|&&p| p as usize >= prog.symbols.len()) {
            return Err(VerifyError {
                chunk,
                pc: 0,
                message: format!("parameter symbol s{p} out of bounds"),
            });
        }
        if (f.params.len() as u32) > f.max_slots {
            return Err(VerifyError {
                chunk,
                pc: 0,
                message: format!(
                    "{} parameters exceed frame of {} slots",
                    f.params.len(),
                    f.max_slots
                ),
            });
        }
        verify_chunk(prog, chunk, &f.code, f.max_slots, false).map(|s| stats.absorb(s))?;
    }
    Ok(stats)
}

/// Net stack pops (`need`) and pushes of one op's fall-through path.
/// Peek-jumps report their *fall-through* effect (the pop); the taken
/// edge keeps the value and is handled at the successor computation.
fn stack_effect(op: &Op) -> (u32, u32) {
    match op {
        Op::Const(_) | Op::LoadLocal(_) | Op::LoadGlobal(_) => (0, 1),
        Op::StoreLocal(_) | Op::StoreGlobal(_) => (1, 1),
        Op::DeclareLocal(_) | Op::DeclareGlobal(_) | Op::Pop | Op::StoreLast => (1, 0),
        Op::Dup => (1, 2),
        Op::Unary(_) => (1, 1),
        Op::Binary(_) => (2, 1),
        Op::MakeArray(n) => (*n, 1),
        Op::GetMember(_) => (1, 1),
        Op::GetIndex => (2, 1),
        Op::SetMember(_) => (2, 0),
        Op::SetIndex => (3, 0),
        Op::CallBuiltin { argc, .. } | Op::CallFn { argc, .. } => (*argc as u32, 1),
        Op::CallMethod { argc, .. } => (*argc as u32 + 1, 1),
        Op::Jump(_) => (0, 0),
        Op::JumpIfFalse(_) | Op::JumpIfFalsyPeek(_) | Op::JumpIfTruthyPeek(_) => (1, 0),
        Op::SetLastNull | Op::DeclareFn(_) | Op::Fuel => (0, 0),
        Op::Return => (1, 0),
        Op::RaiseLoopCtl | Op::Halt => (0, 0),
    }
}

fn verify_chunk(
    prog: &CompiledProgram,
    chunk: String,
    code: &[Insn],
    slots: u32,
    is_main: bool,
) -> Result<VerifyStats, VerifyError> {
    let fail = |pc: usize, message: String| VerifyError {
        chunk: chunk.clone(),
        pc,
        message,
    };
    if code.is_empty() {
        return Err(fail(0, "empty chunk".to_string()));
    }
    let len = code.len();

    // -- Static pass: operand bounds, jump validity, fuel attribution. --
    let last = len - 1;
    if !code[last].op.is_terminator() {
        return Err(fail(last, "chunk does not end in a terminator".to_string()));
    }
    // First statement's entry tick must ride the first instruction. In a
    // function chunk the trailing implicit `return null` (2 insns) is
    // tick-free, so only longer chunks imply a leading statement.
    let trivial_len = if is_main { 1 } else { 2 };
    if len > trivial_len && code[0].fuel == 0 {
        return Err(fail(
            0,
            "first instruction carries no entry tick".to_string(),
        ));
    }
    for (pc, insn) in code.iter().enumerate() {
        let bound = |idx: u32, n: usize, what: &str| -> Result<(), VerifyError> {
            if idx as usize >= n {
                Err(fail(
                    pc,
                    format!("{what} {idx} out of bounds (table len {n})"),
                ))
            } else {
                Ok(())
            }
        };
        match insn.op {
            Op::Const(c) => bound(c, prog.consts.len(), "constant")?,
            Op::LoadLocal(i) | Op::StoreLocal(i) | Op::DeclareLocal(i) => {
                bound(i, slots as usize, "frame slot")?
            }
            Op::LoadGlobal(s)
            | Op::StoreGlobal(s)
            | Op::DeclareGlobal(s)
            | Op::GetMember(s)
            | Op::SetMember(s) => bound(s, prog.symbols.len(), "symbol")?,
            Op::CallFn { name, .. } => bound(name, prog.symbols.len(), "symbol")?,
            Op::CallMethod { method, .. } => bound(method, prog.symbols.len(), "symbol")?,
            Op::CallBuiltin { builtin, .. } => bound(
                builtin as u32,
                crate::interp::BUILTIN_NAMES.len(),
                "builtin",
            )?,
            Op::DeclareFn(f) => bound(f, prog.fns.len(), "function")?,
            Op::Halt if !is_main => {
                return Err(fail(pc, "halt inside a function chunk".to_string()))
            }
            Op::Fuel if insn.fuel == 0 => {
                return Err(fail(pc, "fuel instruction carries no fuel".to_string()))
            }
            _ => {}
        }
        if let Some(t) = insn.op.jump_target() {
            if t as usize >= len {
                return Err(fail(
                    pc,
                    format!("jump target {t} out of bounds (len {len})"),
                ));
            }
            // Loop heads must charge the per-iteration tick: a backward
            // edge whose target absorbs no fuel would let `while(1){}`
            // run the budget without ever being charged.
            if t as usize <= pc && code[t as usize].fuel == 0 {
                return Err(fail(
                    pc,
                    format!("backward-jump target {t} carries no fuel"),
                ));
            }
        }
    }

    // -- Dataflow pass: stack depth over every reachable instruction. --
    let mut depth_at: Vec<Option<u32>> = vec![None; len];
    let mut worklist: Vec<(usize, u32)> = vec![(0, 0)];
    let mut max_stack = 0u32;
    while let Some((pc, depth)) = worklist.pop() {
        match depth_at[pc] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(fail(
                    pc,
                    format!("inconsistent stack depth at join: {d} vs {depth}"),
                ));
            }
            None => depth_at[pc] = Some(depth),
        }
        let op = &code[pc].op;
        let (need, push) = stack_effect(op);
        if depth < need {
            return Err(fail(
                pc,
                format!("stack underflow: depth {depth}, need {need}"),
            ));
        }
        let after = depth - need + push;
        max_stack = max_stack.max(after);
        match op {
            Op::Return if depth != 1 => {
                return Err(fail(pc, format!("return at stack depth {depth}, want 1")));
            }
            Op::Halt if depth != 0 => {
                return Err(fail(pc, format!("halt at stack depth {depth}, want 0")));
            }
            _ => {}
        }
        // Taken edge: peek-jumps keep the value, so the taken depth is
        // the entry depth; the conditional pop only happens on
        // fall-through.
        match op {
            Op::Jump(t) | Op::JumpIfFalsyPeek(t) | Op::JumpIfTruthyPeek(t) => {
                worklist.push((*t as usize, depth));
            }
            Op::JumpIfFalse(t) => worklist.push((*t as usize, after)),
            _ => {}
        }
        if !op.is_terminator() {
            if pc + 1 >= len {
                return Err(fail(pc, "control falls off the chunk end".to_string()));
            }
            worklist.push((pc + 1, after));
        }
    }

    Ok(VerifyStats {
        chunks: 1,
        insns: len,
        max_stack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{CompiledFn, Const};
    use crate::{compile, parse};

    fn verified(src: &str) -> VerifyStats {
        let prog = parse(src).expect("parse");
        verify(&compile(&prog)).expect("verify")
    }

    #[test]
    fn accepts_representative_programs() {
        let cases = [
            "",
            "1 + 2;",
            "let x = 6; x * 7;",
            "let s = \"a\" + \"b\"; s.slice(0, 1);",
            "if (1 < 2) { 3; } else { 4; }",
            "let i = 0; while (i < 10) { i = i + 1; } i;",
            "for (let i = 0; i < 3; i = i + 1) { i; }",
            "fn f(a, b) { return a + b; } f(1, 2);",
            "fn g() { } g();",
            "fn h(n) { if (n < 1) { return 0; } return h(n - 1); } h(3);",
            "let a = [1, 2, 3]; a[0] = 9; a.push(4); a.join(\"-\");",
            "let c = document.createElement(\"canvas\"); c.width = 16;",
            "true && false || 1;",
            "while (0) { break; }",
            "for (;;) { break; }",
        ];
        for src in cases {
            let stats = verified(src);
            assert!(stats.chunks >= 1, "{src}: no chunks verified");
        }
    }

    #[test]
    fn stats_count_every_chunk_and_insn() {
        let prog = compile(&parse("fn f() { return 1; } f();").expect("parse"));
        let stats = verify(&prog).expect("verify");
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.insns, prog.instruction_count());
        assert!(stats.max_stack >= 1);
    }

    fn main_only(code: Vec<Insn>) -> CompiledProgram {
        CompiledProgram {
            consts: vec![Const::Null],
            main: code,
            ..Default::default()
        }
    }

    fn insn(op: Op) -> Insn {
        Insn { op, fuel: 0 }
    }

    fn fueled(op: Op) -> Insn {
        Insn { op, fuel: 1 }
    }

    #[test]
    fn rejects_stack_underflow() {
        let prog = main_only(vec![fueled(Op::Pop), insn(Op::Halt)]);
        let e = verify(&prog).expect_err("underflow");
        assert!(e.message.contains("underflow"), "{e}");
    }

    #[test]
    fn rejects_unbalanced_halt() {
        let prog = main_only(vec![fueled(Op::Const(0)), insn(Op::Halt)]);
        let e = verify(&prog).expect_err("halt depth");
        assert!(e.message.contains("halt at stack depth"), "{e}");
    }

    #[test]
    fn rejects_out_of_bounds_jump() {
        let prog = main_only(vec![fueled(Op::Jump(9))]);
        let e = verify(&prog).expect_err("jump oob");
        assert!(e.message.contains("jump target"), "{e}");
    }

    #[test]
    fn rejects_out_of_bounds_operands() {
        for op in [
            Op::Const(7),
            Op::LoadLocal(0),
            Op::LoadGlobal(0),
            Op::DeclareFn(0),
            Op::CallBuiltin {
                builtin: 999,
                argc: 0,
            },
        ] {
            let prog = main_only(vec![fueled(op), insn(Op::Halt)]);
            assert!(verify(&prog).is_err(), "{op:?} should be out of bounds");
        }
    }

    #[test]
    fn rejects_fall_off_end() {
        let prog = main_only(vec![fueled(Op::Const(0))]);
        let e = verify(&prog).expect_err("fall off");
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_unfueled_loop_head() {
        // A backward jump to an instruction with no fuel: an uncharged
        // loop. The compiler never emits this (loop heads absorb the
        // per-iteration tick).
        let prog = main_only(vec![fueled(Op::Fuel), insn(Op::Jump(1)), insn(Op::Halt)]);
        let e = verify(&prog).expect_err("unfueled loop");
        assert!(e.message.contains("carries no fuel"), "{e}");
    }

    #[test]
    fn rejects_fuel_op_without_fuel() {
        let prog = main_only(vec![fueled(Op::Fuel), insn(Op::Fuel), insn(Op::Halt)]);
        let e = verify(&prog).expect_err("fuel op");
        assert!(e.message.contains("fuel instruction"), "{e}");
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // Two paths reach pc 4 at different depths.
        let prog = main_only(vec![
            fueled(Op::Const(0)),
            insn(Op::JumpIfFalse(3)),
            insn(Op::Const(0)),
            insn(Op::Const(0)),
            insn(Op::Pop),
            insn(Op::Pop),
            insn(Op::Halt),
        ]);
        let e = verify(&prog).expect_err("join");
        assert!(e.message.contains("inconsistent stack depth"), "{e}");
    }

    #[test]
    fn rejects_return_depth_in_fn() {
        let prog = CompiledProgram {
            consts: vec![Const::Null],
            symbols: vec!["f".to_string()],
            fns: vec![CompiledFn {
                name: 0,
                params: vec![],
                max_slots: 0,
                code: vec![fueled(Op::Const(0)), insn(Op::Const(0)), insn(Op::Return)],
            }],
            hoisted: vec![0],
            main_slots: 0,
            main: vec![insn(Op::Halt)],
        };
        let e = verify(&prog).expect_err("return depth");
        assert!(e.message.contains("return at stack depth"), "{e}");
    }

    #[test]
    fn rejects_halt_in_fn_chunk() {
        let prog = CompiledProgram {
            consts: vec![Const::Null],
            symbols: vec!["f".to_string()],
            fns: vec![CompiledFn {
                name: 0,
                params: vec![],
                max_slots: 0,
                code: vec![insn(Op::Halt)],
            }],
            hoisted: vec![],
            main_slots: 0,
            main: vec![insn(Op::Halt)],
        };
        let e = verify(&prog).expect_err("halt in fn");
        assert!(e.message.contains("halt inside"), "{e}");
    }

    #[test]
    fn rejects_missing_entry_tick() {
        let prog = main_only(vec![insn(Op::Const(0)), insn(Op::Pop), insn(Op::Halt)]);
        let e = verify(&prog).expect_err("entry tick");
        assert!(e.message.contains("entry tick"), "{e}");
    }
}
