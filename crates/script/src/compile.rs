//! AST → bytecode compiler.
//!
//! The compiler lowers a parsed [`Program`] to the flat instruction
//! stream in [`crate::bytecode`], interning identifiers, pooling
//! constants, and pre-resolving every jump.
//!
//! ## Fuel attribution (the tree-walker contract)
//!
//! The tree-walking interpreter charges one *tick* when it enters each
//! statement and each expression node, pre-order, plus one tick per loop
//! iteration. The compiler replays that accounting statically: it keeps a
//! `pending` tick counter, increments it at every AST node entry, and
//! flushes it into the `fuel` field of the next instruction emitted.
//! Because instructions are emitted in execution order within any
//! straight-line region, the VM charges the budget at exactly the points
//! the tree-walker would — including mid-expression and mid-call
//! exhaustion — so `run_with_budget` step counts and error outcomes are
//! identical between engines.
//!
//! Two loop-head subtleties:
//!
//! * a `while` statement's own tick must be charged once (not per
//!   iteration), so it is flushed into a dedicated [`Op::Fuel`]
//!   instruction *before* the loop-head label;
//! * a `for` loop charges one tick at every arrival at the loop head
//!   (the tree-walker ticks at the top of its `loop`), so that tick is
//!   deliberately left pending *at* the head label, where every incoming
//!   path must pay it.
//!
//! At every other jump target the pending counter is zero by
//! construction.

use std::collections::HashMap;

use crate::ast::*;
use crate::bytecode::{CompiledFn, CompiledProgram, Const, Insn, Op};
use crate::interp::builtin_index;

/// Compiles a parsed program to bytecode. Compilation is total: every
/// parseable program compiles (semantic errors like unknown variables
/// stay runtime errors, matching the tree-walker).
pub fn compile(program: &Program) -> CompiledProgram {
    let mut c = Compiler::default();
    // Hoist top-level function declarations (the tree-walker registers
    // them all before executing the first statement). Each is compiled
    // once here; the statement position re-binds the same chunk.
    let mut hoist_map: HashMap<usize, u32> = HashMap::new();
    for (i, stmt) in program.stmts.iter().enumerate() {
        if let Stmt::FnDecl(f) = stmt {
            let idx = c.compile_fn(f);
            c.out.hoisted.push(idx);
            hoist_map.insert(i, idx);
        }
    }
    for (i, stmt) in program.stmts.iter().enumerate() {
        if let (Stmt::FnDecl(_), Some(&idx)) = (stmt, hoist_map.get(&i)) {
            // Statement tick, then the (already compiled) re-bind.
            c.pending += 1;
            c.emit(Op::DeclareFn(idx));
            c.emit(Op::SetLastNull);
        } else {
            c.stmt(stmt, true);
        }
    }
    c.emit(Op::Halt);
    c.out.main = std::mem::take(&mut c.code);
    c.out.main_slots = c.max_slots;
    c.out
}

/// Per-loop compile context: where `break`/`continue` jump.
struct LoopCtx {
    /// Forward jumps to patch to the loop exit.
    break_jumps: Vec<usize>,
    /// Forward jumps to patch to the continue target (loop head for
    /// `while`, the step expression for `for`).
    continue_jumps: Vec<usize>,
}

/// One compile-time block scope: the `(symbol, frame slot)` bindings it
/// declared, plus the slot watermark to restore on exit (sibling blocks
/// reuse slots — frames stay as small as the deepest live nesting).
struct Scope {
    bindings: Vec<(u32, u32)>,
    slot_floor: u32,
}

#[derive(Default)]
struct Compiler {
    out: CompiledProgram,
    const_map: HashMap<ConstKey, u32>,
    sym_map: HashMap<String, u32>,
    // Per-chunk state (saved/restored around function compilation).
    code: Vec<Insn>,
    pending: u32,
    loops: Vec<LoopCtx>,
    /// Lexical block scopes of the current chunk. Canvascript has no
    /// closures and no way to enter a scope mid-block, so the
    /// tree-walker's dynamic scope walk resolves identically to this
    /// static scan — every variable reference compiles to either a fixed
    /// frame slot or a global symbol.
    scopes: Vec<Scope>,
    /// In a function chunk (scope 0 is the call frame); in the main
    /// chunk, declarations outside any block are globals.
    in_fn: bool,
    next_slot: u32,
    max_slots: u32,
}

/// Hashable mirror of [`Const`] for pool deduplication (`f64` keyed by
/// bit pattern).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

impl Compiler {
    /// Emits one instruction, attaching (and clearing) the pending ticks.
    fn emit(&mut self, op: Op) -> usize {
        let fuel = std::mem::take(&mut self.pending);
        self.code.push(Insn { op, fuel });
        self.code.len() - 1
    }

    /// Flushes pending ticks into a dedicated `Fuel` instruction, used
    /// where the next emitted instruction is a jump target that must not
    /// absorb them.
    fn flush_fuel(&mut self) {
        if self.pending > 0 {
            self.emit(Op::Fuel);
        }
    }

    fn patch(&mut self, at: usize, target: usize) {
        let t = target as u32;
        self.code[at].op = match self.code[at].op {
            Op::Jump(_) => Op::Jump(t),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(t),
            Op::JumpIfFalsyPeek(_) => Op::JumpIfFalsyPeek(t),
            Op::JumpIfTruthyPeek(_) => Op::JumpIfTruthyPeek(t),
            other => other,
        };
    }

    fn sym(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.sym_map.get(name) {
            return s;
        }
        let s = self.out.symbols.len() as u32;
        self.out.symbols.push(name.to_string());
        self.sym_map.insert(name.to_string(), s);
        s
    }

    fn konst(&mut self, c: Const) -> u32 {
        let key = match &c {
            Const::Null => ConstKey::Null,
            Const::Bool(b) => ConstKey::Bool(*b),
            Const::Num(n) => ConstKey::Num(n.to_bits()),
            Const::Str(s) => ConstKey::Str(s.clone()),
        };
        if let Some(&i) = self.const_map.get(&key) {
            return i;
        }
        let i = self.out.consts.len() as u32;
        self.out.consts.push(c);
        self.const_map.insert(key, i);
        i
    }

    /// Opens a compile-time block scope.
    fn push_scope(&mut self) {
        self.scopes.push(Scope {
            bindings: Vec::new(),
            slot_floor: self.next_slot,
        });
    }

    /// Closes the innermost block scope, releasing its slots for reuse
    /// by sibling blocks. Slot reuse is safe: a slot is only referenced
    /// by code lexically after its `DeclareLocal` inside the owning
    /// block, and block execution is strictly top-to-bottom (control can
    /// leave a block, never jump into its middle), so every read of a
    /// reused slot is preceded by its own declaration.
    fn pop_scope(&mut self) {
        if let Some(scope) = self.scopes.pop() {
            self.next_slot = scope.slot_floor;
        }
    }

    /// `let`-declares `name` in the current scope, returning the op that
    /// stores the initializer. Redeclaration in the same scope reuses
    /// the slot (the tree-walker's `HashMap::insert` overwrite).
    fn declare(&mut self, name: &str) -> Op {
        let s = self.sym(name);
        match self.scopes.last_mut() {
            None if !self.in_fn => Op::DeclareGlobal(s),
            None => {
                // Unreachable: function chunks always hold the frame
                // scope; emit a frame-slot declare to stay total.
                Op::DeclareLocal(self.alloc_slot(s))
            }
            Some(scope) => {
                if let Some(&(_, slot)) = scope.bindings.iter().find(|(sym, _)| *sym == s) {
                    Op::DeclareLocal(slot)
                } else {
                    Op::DeclareLocal(self.alloc_slot(s))
                }
            }
        }
    }

    fn alloc_slot(&mut self, s: u32) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        if let Some(scope) = self.scopes.last_mut() {
            scope.bindings.push((s, slot));
        }
        slot
    }

    /// Resolves `name` the way the tree-walker's scope walk would at this
    /// point: innermost block scope outward, else the global scope.
    fn resolve(&mut self, name: &str) -> Option<u32> {
        let s = self.sym(name);
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.bindings.iter().rev().find(|(sym, _)| *sym == s))
            .map(|&(_, slot)| slot)
    }

    /// Compiles a function body into its own chunk and registers it.
    fn compile_fn(&mut self, decl: &FnDecl) -> u32 {
        let saved_code = std::mem::take(&mut self.code);
        let saved_pending = std::mem::take(&mut self.pending);
        let saved_loops = std::mem::take(&mut self.loops);
        let saved_scopes = std::mem::take(&mut self.scopes);
        let saved_in_fn = std::mem::replace(&mut self.in_fn, true);
        let saved_next = std::mem::take(&mut self.next_slot);
        let saved_max = std::mem::take(&mut self.max_slots);
        // The frame scope: parameters in slots 0.., and the body's
        // top-level `let`s join them (the tree-walker inserts both into
        // the same frame HashMap).
        self.push_scope();
        for p in &decl.params {
            let s = self.sym(p);
            self.alloc_slot(s);
        }
        for stmt in &decl.body {
            self.stmt(stmt, false);
        }
        // Falling off the end returns null (no tick — the tree-walker
        // just stops executing body statements).
        let null = self.konst(Const::Null);
        self.emit(Op::Const(null));
        self.emit(Op::Return);
        let code = std::mem::replace(&mut self.code, saved_code);
        let max_slots = self.max_slots;
        self.pending = saved_pending;
        self.loops = saved_loops;
        self.scopes = saved_scopes;
        self.in_fn = saved_in_fn;
        self.next_slot = saved_next;
        self.max_slots = saved_max;
        let name = self.sym(&decl.name);
        let params = decl.params.iter().map(|p| self.sym(p)).collect();
        let idx = self.out.fns.len() as u32;
        self.out.fns.push(CompiledFn {
            name,
            params,
            max_slots,
            code,
        });
        idx
    }

    /// Compiles a block (fresh scope). In `top` (value) mode each
    /// statement maintains the program-result register; an empty block's
    /// value is null, matching `exec_block`.
    fn block(&mut self, stmts: &[Stmt], top: bool) {
        self.push_scope();
        for stmt in stmts {
            self.stmt(stmt, top);
        }
        self.pop_scope();
        if top && stmts.is_empty() {
            self.emit(Op::SetLastNull);
        }
    }

    /// Compiles one statement. `top` selects value mode: top-level
    /// statements (and the branches of top-level `if`s) feed the
    /// program-result register exactly as the tree-walker's `last` value.
    fn stmt(&mut self, stmt: &Stmt, top: bool) {
        // Statement-entry tick (`Interp::exec`).
        self.pending += 1;
        match stmt {
            Stmt::Let { name, value } => {
                // The initializer compiles (and resolves) before the
                // binding exists: `let x = x` reads the outer `x`.
                self.expr(value);
                let declare = self.declare(name);
                self.emit(declare);
                if top {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(if top { Op::StoreLast } else { Op::Pop });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.block(then_branch, top);
                let jend = self.emit(Op::Jump(0));
                let else_at = self.code.len();
                self.patch(jf, else_at);
                self.block(else_branch, top);
                let end = self.code.len();
                self.patch(jend, end);
            }
            Stmt::While { cond, body } => {
                // The statement tick charges once, so it may not ride an
                // instruction at (or after) the head label.
                self.flush_fuel();
                let head = self.code.len();
                self.expr(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    break_jumps: Vec::new(),
                    continue_jumps: Vec::new(),
                });
                // Per-iteration tick, charged after the condition proves
                // truthy and absorbed by the body's first instruction
                // (or the back-edge jump when the body is empty).
                self.pending += 1;
                self.block(body, false);
                self.emit(Op::Jump(head as u32));
                let end = self.code.len();
                self.patch(jf, end);
                if let Some(ctx) = self.loops.pop() {
                    for j in ctx.break_jumps {
                        self.patch(j, end);
                    }
                    for j in ctx.continue_jumps {
                        self.patch(j, head);
                    }
                }
                if top {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for's own scope holds the init binding.
                self.push_scope();
                if let Some(init) = init {
                    self.stmt(init, false);
                }
                // Loop-head tick: the tree-walker ticks at the top of
                // every iteration, before the condition. Left pending at
                // the head label so both entry and the back edge pay it.
                let head = self.code.len();
                self.pending += 1;
                let jf = cond.as_ref().map(|c| {
                    self.expr(c);
                    self.emit(Op::JumpIfFalse(0))
                });
                self.loops.push(LoopCtx {
                    break_jumps: Vec::new(),
                    continue_jumps: Vec::new(),
                });
                self.block(body, false);
                let step_at = self.code.len();
                if let Some(step) = step {
                    self.expr(step);
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(head as u32));
                let end = self.code.len();
                if let Some(jf) = jf {
                    self.patch(jf, end);
                }
                if let Some(ctx) = self.loops.pop() {
                    for j in ctx.break_jumps {
                        self.patch(j, end);
                    }
                    for j in ctx.continue_jumps {
                        self.patch(j, step_at);
                    }
                }
                self.pop_scope();
                if top {
                    self.emit(Op::SetLastNull);
                }
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.expr(e),
                    None => {
                        let null = self.konst(Const::Null);
                        self.emit(Op::Const(null));
                    }
                }
                self.emit(Op::Return);
            }
            Stmt::Break => self.loop_exit(true),
            Stmt::Continue => self.loop_exit(false),
            Stmt::FnDecl(f) => {
                let idx = self.compile_fn(f);
                self.emit(Op::DeclareFn(idx));
                if top {
                    self.emit(Op::SetLastNull);
                }
            }
        }
    }

    /// Compiles `break` (`is_break`) or `continue`: a plain jump — block
    /// scopes are a compile-time construct now, so there is nothing to
    /// unwind at run time. Outside any loop both raise the tree-walker's
    /// "break/continue outside loop" error.
    fn loop_exit(&mut self, is_break: bool) {
        if self.loops.is_empty() {
            self.emit(Op::RaiseLoopCtl);
            return;
        }
        let j = self.emit(Op::Jump(0));
        if let Some(ctx) = self.loops.last_mut() {
            if is_break {
                ctx.break_jumps.push(j);
            } else {
                ctx.continue_jumps.push(j);
            }
        }
    }

    /// Compiles one expression, leaving its value on the stack.
    fn expr(&mut self, e: &Expr) {
        // Expression-entry tick (`Interp::eval_expr`).
        self.pending += 1;
        match e {
            Expr::Number(n) => {
                let c = self.konst(Const::Num(*n));
                self.emit(Op::Const(c));
            }
            Expr::Str(s) => {
                let c = self.konst(Const::Str(s.clone()));
                self.emit(Op::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.konst(Const::Bool(*b));
                self.emit(Op::Const(c));
            }
            Expr::Null => {
                let c = self.konst(Const::Null);
                self.emit(Op::Const(c));
            }
            Expr::Ident(name) => {
                let op = match self.resolve(name) {
                    Some(slot) => Op::LoadLocal(slot),
                    None => Op::LoadGlobal(self.sym(name)),
                };
                self.emit(op);
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Op::MakeArray(items.len() as u32));
            }
            Expr::Unary { op, expr } => {
                self.expr(expr);
                self.emit(Op::Unary(*op));
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs);
                    let j = self.emit(Op::JumpIfFalsyPeek(0));
                    self.expr(rhs);
                    let end = self.code.len();
                    self.patch(j, end);
                }
                BinOp::Or => {
                    self.expr(lhs);
                    let j = self.emit(Op::JumpIfTruthyPeek(0));
                    self.expr(rhs);
                    let end = self.code.len();
                    self.patch(j, end);
                }
                _ => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.emit(Op::Binary(*op));
                }
            },
            Expr::Member { object, name } => {
                self.expr(object);
                let s = self.sym(name);
                self.emit(Op::GetMember(s));
            }
            Expr::Index { object, index } => {
                self.expr(object);
                self.expr(index);
                self.emit(Op::GetIndex);
            }
            Expr::Call { name, args } => {
                for a in args {
                    self.expr(a);
                }
                let argc = args.len() as u16;
                // Builtins shadow user functions unconditionally in the
                // tree-walker, so the binding is static.
                match builtin_index(name) {
                    Some(builtin) => self.emit(Op::CallBuiltin { builtin, argc }),
                    None => {
                        let s = self.sym(name);
                        self.emit(Op::CallFn { name: s, argc })
                    }
                };
            }
            Expr::MethodCall {
                object,
                method,
                args,
            } => {
                self.expr(object);
                for a in args {
                    self.expr(a);
                }
                let s = self.sym(method);
                self.emit(Op::CallMethod {
                    method: s,
                    argc: args.len() as u16,
                });
            }
            Expr::Assign { target, value } => {
                // The tree-walker evaluates the value before the target's
                // object/index expressions; the assigned value is the
                // expression result (Dup keeps it under the target refs).
                self.expr(value);
                match &**target {
                    AssignTarget::Ident(name) => {
                        let op = match self.resolve(name) {
                            Some(slot) => Op::StoreLocal(slot),
                            None => Op::StoreGlobal(self.sym(name)),
                        };
                        self.emit(op);
                    }
                    AssignTarget::Member { object, name } => {
                        self.emit(Op::Dup);
                        self.expr(object);
                        let s = self.sym(name);
                        self.emit(Op::SetMember(s));
                    }
                    AssignTarget::Index { object, index } => {
                        self.emit(Op::Dup);
                        self.expr(object);
                        self.expr(index);
                        self.emit(Op::SetIndex);
                    }
                }
            }
        }
    }
}
