//! Runtime values and the host-object interface.

use std::cell::RefCell;
use std::rc::Rc;

/// An opaque reference to an object owned by the host (e.g. a DOM
/// document, a canvas element, a 2D context, a gradient).
pub type HostRef = u64;

/// A canvascript runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null` / `undefined`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (always f64, like JavaScript).
    Num(f64),
    /// Immutable string.
    Str(String),
    /// Mutable shared array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// Host object handle.
    Host(HostRef),
}

impl Value {
    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// JavaScript-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::Host(_) => true,
        }
    }

    /// Loose equality (sufficient for the scripts we model: same-type
    /// comparison plus null checks; arrays/hosts compare by identity).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => Rc::ptr_eq(a, b),
            (Value::Host(a), Value::Host(b)) => a == b,
            _ => false,
        }
    }

    /// Stringification (for `str()` and `+` concatenation).
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(items) => {
                let inner: Vec<String> = items
                    .borrow()
                    .iter()
                    .map(|v| v.to_display_string())
                    .collect();
                inner.join(",")
            }
            Value::Host(h) => format!("[object #{h}]"),
        }
    }

    /// Numeric coercion; `None` when not a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }
}

/// Error raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
}

impl RuntimeError {
    /// Convenience constructor.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// The environment a script runs against. The DOM crate implements this
/// over its document/canvas objects; tests implement stubs.
pub trait Host {
    /// Resolves a global identifier (e.g. `document`, `window`,
    /// `navigator`). Returning `None` makes the identifier an
    /// interpreter-level unknown-variable error.
    fn global(&mut self, name: &str) -> Option<Value>;

    /// Reads a property of a host object.
    fn get_prop(&mut self, obj: HostRef, name: &str) -> Result<Value, RuntimeError>;

    /// Writes a property of a host object.
    fn set_prop(&mut self, obj: HostRef, name: &str, value: Value) -> Result<(), RuntimeError>;

    /// Invokes a method on a host object.
    fn call_method(
        &mut self,
        obj: HostRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError>;
}

/// A host with no objects at all; scripts that touch the DOM fail.
/// Useful for pure-computation tests.
#[derive(Debug, Default)]
pub struct NullHost;

impl Host for NullHost {
    fn global(&mut self, _name: &str) -> Option<Value> {
        None
    }

    fn get_prop(&mut self, _obj: HostRef, name: &str) -> Result<Value, RuntimeError> {
        Err(RuntimeError::new(format!("no host property {name}")))
    }

    fn set_prop(&mut self, _obj: HostRef, name: &str, _value: Value) -> Result<(), RuntimeError> {
        Err(RuntimeError::new(format!("no host property {name}")))
    }

    fn call_method(
        &mut self,
        _obj: HostRef,
        method: &str,
        _args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        Err(RuntimeError::new(format!("no host method {method}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Num(-1.0).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(Value::array(vec![]).truthy());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Value::Num(3.0).to_display_string(), "3");
        assert_eq!(Value::Num(3.5).to_display_string(), "3.5");
        assert_eq!(
            Value::array(vec![Value::Num(1.0), Value::Str("a".into())]).to_display_string(),
            "1,a"
        );
    }

    #[test]
    fn loose_eq_arrays_by_identity() {
        let a = Value::array(vec![Value::Num(1.0)]);
        let b = Value::array(vec![Value::Num(1.0)]);
        assert!(!a.loose_eq(&b));
        assert!(a.loose_eq(&a.clone()));
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Str(" 42 ".into()).as_num(), Some(42.0));
        assert_eq!(Value::Bool(true).as_num(), Some(1.0));
        assert_eq!(Value::Null.as_num(), None);
    }
}
