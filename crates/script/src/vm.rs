//! The bytecode virtual machine: an operand-stack dispatch loop over
//! [`crate::bytecode`] programs.
//!
//! The VM is the production execution engine; the tree-walking
//! interpreter in [`crate::interp`] remains as the differential-testing
//! oracle. Both engines implement identical semantics — same results,
//! same host-effect sequences, same error messages, and byte-identical
//! step accounting (see the fuel contract in [`crate::compile`]) — which
//! the differential suite in `proptests.rs` enforces.
//!
//! Speed comes from structure, not shortcuts: identifiers are interned so
//! variable access indexes a dense global slot vector or scans a small
//! flat local stack instead of hashing strings through a `Vec<HashMap>`;
//! calls push a lightweight frame instead of cloning the global scope and
//! the callee's AST; jumps are pre-resolved absolute offsets.

use crate::bytecode::{CompiledProgram, Insn, Op};
use crate::interp::{
    apply_binary, apply_unary, call_builtin, call_method_value, get_member_value, index_get,
    index_set, set_member_value, EvalOutcome, DEFAULT_STEP_BUDGET,
};
use crate::value::{Host, RuntimeError, Value};

/// Which execution engine runs a script. The bytecode VM is the
/// production default; the tree-walker is kept as a differential oracle
/// (and for A/B determinism gates — study output must be byte-identical
/// between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The original tree-walking interpreter ([`crate::run_with_budget`]).
    TreeWalker,
    /// The bytecode compiler + VM ([`run_compiled_with_budget`]).
    #[default]
    Bytecode,
}

/// Runs a parsed program through the chosen engine. For
/// [`ExecEngine::Bytecode`] this compiles on the fly — callers with a
/// [`crate::ScriptCache`] should prefer its cached bytecode instead.
pub fn run_engine_with_budget(
    program: &crate::ast::Program,
    host: &mut dyn Host,
    budget: u64,
    engine: ExecEngine,
) -> EvalOutcome {
    match engine {
        ExecEngine::TreeWalker => crate::interp::run_with_budget(program, host, budget),
        ExecEngine::Bytecode => {
            let compiled = crate::compile::compile(program);
            run_compiled_with_budget(&compiled, host, budget)
        }
    }
}

/// Parses and runs source text through the chosen engine. A parse failure
/// consumes zero steps, like [`crate::eval_with_budget`].
pub fn eval_engine_with_budget(
    src: &str,
    host: &mut dyn Host,
    budget: u64,
    engine: ExecEngine,
) -> EvalOutcome {
    let program = match crate::parser::parse(src) {
        Ok(p) => p,
        Err(e) => {
            return EvalOutcome {
                result: Err(RuntimeError::new(format!("script parse failed: {e}"))),
                steps: 0,
            }
        }
    };
    run_engine_with_budget(&program, host, budget, engine)
}

/// Runs compiled bytecode with the default step budget.
pub fn run_compiled(prog: &CompiledProgram, host: &mut dyn Host) -> Result<Value, RuntimeError> {
    run_compiled_with_budget(prog, host, DEFAULT_STEP_BUDGET).result
}

/// Chunk id of the main (top-level) code.
const MAIN: u32 = u32::MAX;

/// Maximum user-function call depth, identical to the tree-walker.
const MAX_CALL_DEPTH: usize = 64;

/// One suspended caller.
struct Frame {
    ret_chunk: u32,
    ret_pc: usize,
    floor: usize,
}

/// Pops the operand stack. Compiled code keeps the stack balanced, so the
/// underflow arm is unreachable; `Null` keeps the VM total without a
/// panic path.
#[inline]
fn pop(stack: &mut Vec<Value>) -> Value {
    stack.pop().unwrap_or(Value::Null)
}

/// Runs compiled bytecode against a host with an explicit step budget,
/// reporting steps consumed alongside the result — the VM counterpart of
/// [`crate::run_with_budget`], with identical accounting.
pub fn run_compiled_with_budget(
    prog: &CompiledProgram,
    host: &mut dyn Host,
    budget: u64,
) -> EvalOutcome {
    let nsyms = prog.symbols.len();
    let mut stack: Vec<Value> = Vec::with_capacity(16);
    // Frame slots: `floor + slot` indexes the current frame. Slots are
    // resolved at compile time (see `compile.rs`), so there is no scope
    // stack at run time — just a flat slot vector.
    let mut locals: Vec<Value> = vec![Value::Null; prog.main_slots as usize];
    let mut frames: Vec<Frame> = Vec::new();
    let mut globals: Vec<Option<Value>> = vec![None; nsyms];
    let mut fn_table: Vec<Option<u32>> = vec![None; nsyms];
    for &f in &prog.hoisted {
        if let Some(decl) = prog.fns.get(f as usize) {
            fn_table[decl.name as usize] = Some(f);
        }
    }
    let mut chunk: &[Insn] = &prog.main;
    let mut chunk_id = MAIN;
    let mut pc: usize = 0;
    let mut floor: usize = 0;
    let mut last = Value::Null;
    let mut steps: u64 = 0;

    macro_rules! fail {
        ($err:expr) => {
            return EvalOutcome {
                result: Err($err),
                steps,
            }
        };
    }
    macro_rules! vmtry {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(e) => fail!(e),
            }
        };
    }

    loop {
        let insn = &chunk[pc];
        if insn.fuel > 0 {
            // Batch-charge the ticks attributed to this instruction. A
            // pure tick chain has no observable effects, so trimming the
            // count to budget+1 on exhaustion reproduces the tree-walker
            // exactly: same failure point, same reported steps.
            steps = steps.saturating_add(insn.fuel as u64);
            if steps > budget {
                steps = budget.saturating_add(1);
                fail!(RuntimeError::new("script exceeded step budget"));
            }
        }
        pc += 1;
        match insn.op {
            Op::Const(c) => stack.push(prog.consts[c as usize].to_value()),
            Op::LoadLocal(i) => stack.push(locals[floor + i as usize].clone()),
            Op::StoreLocal(i) => {
                locals[floor + i as usize] = stack.last().cloned().unwrap_or(Value::Null);
            }
            Op::DeclareLocal(i) => locals[floor + i as usize] = pop(&mut stack),
            Op::LoadGlobal(s) => {
                let v = match globals[s as usize].clone() {
                    Some(v) => v,
                    None => match host.global(&prog.symbols[s as usize]) {
                        Some(v) => v,
                        None => fail!(RuntimeError::new(format!(
                            "undefined variable {}",
                            prog.symbols[s as usize]
                        ))),
                    },
                };
                stack.push(v);
            }
            Op::StoreGlobal(s) => {
                globals[s as usize] = Some(stack.last().cloned().unwrap_or(Value::Null));
            }
            Op::DeclareGlobal(s) => globals[s as usize] = Some(pop(&mut stack)),
            Op::Pop => {
                stack.pop();
            }
            Op::Dup => {
                let v = stack.last().cloned().unwrap_or(Value::Null);
                stack.push(v);
            }
            Op::Unary(op) => {
                let v = pop(&mut stack);
                stack.push(vmtry!(apply_unary(op, v)));
            }
            Op::Binary(op) => {
                let r = pop(&mut stack);
                let l = pop(&mut stack);
                // Fast path: number-number arithmetic and comparison,
                // the hot case in loop-heavy scripts. Exactly mirrors
                // `apply_binary` (including the NaN-comparison error).
                if let (&Value::Num(a), &Value::Num(b)) = (&l, &r) {
                    use crate::ast::BinOp;
                    let v = match op {
                        BinOp::Add => Value::Num(a + b),
                        BinOp::Sub => Value::Num(a - b),
                        BinOp::Mul => Value::Num(a * b),
                        BinOp::Div => Value::Num(a / b),
                        BinOp::Rem => Value::Num(a % b),
                        BinOp::Eq => Value::Bool(a == b),
                        BinOp::Ne => Value::Bool(a != b),
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match a.partial_cmp(&b) {
                            None => fail!(RuntimeError::new("NaN comparison")),
                            Some(ord) => Value::Bool(match op {
                                BinOp::Lt => ord.is_lt(),
                                BinOp::Le => ord.is_le(),
                                BinOp::Gt => ord.is_gt(),
                                _ => ord.is_ge(),
                            }),
                        },
                        BinOp::And | BinOp::Or => {
                            stack.push(vmtry!(apply_binary(op, l, r)));
                            continue;
                        }
                    };
                    stack.push(v);
                } else {
                    stack.push(vmtry!(apply_binary(op, l, r)));
                }
            }
            Op::MakeArray(n) => {
                let at = stack.len().saturating_sub(n as usize);
                let items = stack.split_off(at);
                stack.push(Value::array(items));
            }
            Op::GetMember(s) => {
                let obj = pop(&mut stack);
                stack.push(vmtry!(get_member_value(
                    host,
                    obj,
                    &prog.symbols[s as usize]
                )));
            }
            Op::GetIndex => {
                let idx = pop(&mut stack);
                let obj = pop(&mut stack);
                stack.push(vmtry!(index_get(obj, idx)));
            }
            Op::SetMember(s) => {
                let obj = pop(&mut stack);
                let v = pop(&mut stack);
                vmtry!(set_member_value(host, obj, &prog.symbols[s as usize], v));
            }
            Op::SetIndex => {
                let idx = pop(&mut stack);
                let obj = pop(&mut stack);
                let v = pop(&mut stack);
                vmtry!(index_set(obj, idx, v));
            }
            Op::CallBuiltin { builtin, argc } => {
                // Builtins take a slice, so the args stay on the operand
                // stack — no per-call allocation.
                let at = stack.len().saturating_sub(argc as usize);
                let v = vmtry!(call_builtin(builtin, &stack[at..]));
                stack.truncate(at);
                stack.push(v);
            }
            Op::CallFn { name, argc } => {
                let Some(f_idx) = fn_table[name as usize] else {
                    fail!(RuntimeError::new(format!(
                        "undefined function {}",
                        prog.symbols[name as usize]
                    )));
                };
                if frames.len() >= MAX_CALL_DEPTH {
                    fail!(RuntimeError::new("call stack exceeded"));
                }
                let decl = &prog.fns[f_idx as usize];
                frames.push(Frame {
                    ret_chunk: chunk_id,
                    ret_pc: pc,
                    floor,
                });
                // Move the args off the operand stack straight into the
                // callee's parameter slots (extra args are dropped,
                // missing ones stay null), then zero the rest of the
                // frame — no intermediate Vec.
                let at = stack.len().saturating_sub(argc as usize);
                floor = locals.len();
                locals.resize(floor + decl.max_slots as usize, Value::Null);
                let bound = (argc as usize).min(decl.params.len());
                for (i, arg) in stack.drain(at..).enumerate() {
                    if i < bound {
                        locals[floor + i] = arg;
                    }
                }
                chunk = &decl.code;
                chunk_id = f_idx;
                pc = 0;
            }
            Op::CallMethod { method, argc } => {
                let at = stack.len().saturating_sub(argc as usize);
                let args = stack.split_off(at);
                let obj = pop(&mut stack);
                stack.push(vmtry!(call_method_value(
                    host,
                    obj,
                    &prog.symbols[method as usize],
                    args
                )));
            }
            Op::Jump(t) => pc = t as usize,
            Op::JumpIfFalse(t) => {
                if !pop(&mut stack).truthy() {
                    pc = t as usize;
                }
            }
            Op::JumpIfFalsyPeek(t) => {
                let falsy = !stack.last().map(Value::truthy).unwrap_or(false);
                if falsy {
                    pc = t as usize;
                } else {
                    stack.pop();
                }
            }
            Op::JumpIfTruthyPeek(t) => {
                let truthy = stack.last().map(Value::truthy).unwrap_or(false);
                if truthy {
                    pc = t as usize;
                } else {
                    stack.pop();
                }
            }
            Op::StoreLast => last = pop(&mut stack),
            Op::SetLastNull => last = Value::Null,
            Op::DeclareFn(f) => {
                if let Some(decl) = prog.fns.get(f as usize) {
                    fn_table[decl.name as usize] = Some(f);
                }
            }
            Op::Return => {
                let v = pop(&mut stack);
                match frames.pop() {
                    None => {
                        // Top-level `return` ends the program with the
                        // returned value, like the tree-walker.
                        return EvalOutcome {
                            result: Ok(v),
                            steps,
                        };
                    }
                    Some(frame) => {
                        locals.truncate(floor);
                        floor = frame.floor;
                        chunk = if frame.ret_chunk == MAIN {
                            &prog.main
                        } else {
                            &prog.fns[frame.ret_chunk as usize].code
                        };
                        chunk_id = frame.ret_chunk;
                        pc = frame.ret_pc;
                        stack.push(v);
                    }
                }
            }
            Op::Fuel => {}
            Op::RaiseLoopCtl => fail!(RuntimeError::new("break/continue outside loop")),
            Op::Halt => {
                return EvalOutcome {
                    result: Ok(last),
                    steps,
                };
            }
        }
    }
}
