//! Bytecode representation for canvascript: a compact flat instruction
//! stream produced by [`crate::compile::compile`] and executed by
//! [`crate::vm::run_compiled_with_budget`].
//!
//! Design points:
//!
//! * **Constant pool + interned symbols** — literals live once in
//!   [`CompiledProgram::consts`]; every identifier, property, and method
//!   name is interned to a dense `u32` in [`CompiledProgram::symbols`], so
//!   the VM indexes vectors instead of hashing strings.
//! * **Pre-resolved jumps** — `if`/`while`/`for` and the short-circuit
//!   operators compile to absolute jump targets; nothing is resolved at
//!   run time.
//! * **Fuel on the instruction** — every [`Insn`] carries the number of
//!   tree-walker *ticks* the instruction accounts for ([`Insn::fuel`]).
//!   The compiler attributes each AST node's pre-order tick to the first
//!   instruction emitted at or after that node, so the VM charges the step
//!   budget at exactly the same semantic points as the tree-walking
//!   interpreter and `run_with_budget` outcomes stay byte-identical
//!   (see DESIGN.md §12 for the full contract).
//! * **`Send + Sync`** — a [`CompiledProgram`] holds no `Rc` values
//!   (constants use the [`Const`] mirror enum, not [`crate::Value`]), so
//!   compiled bytecode shares across crawl workers inside the
//!   content-hash-keyed [`crate::ScriptCache`].

use crate::ast::{BinOp, UnOp};
use crate::value::Value;

/// A literal in the constant pool. Mirrors the immutable subset of
/// [`Value`] so a [`CompiledProgram`] stays `Send + Sync` (runtime arrays
/// are built by [`Op::MakeArray`], never stored here).
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `null`.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
}

impl Const {
    /// Materializes the runtime value.
    pub fn to_value(&self) -> Value {
        match self {
            Const::Null => Value::Null,
            Const::Bool(b) => Value::Bool(*b),
            Const::Num(n) => Value::Num(*n),
            Const::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// One VM operation. Operands index the constant pool (`c`), the symbol
/// table (`s`), the function table (`f`), or an absolute instruction
/// offset within the current chunk (`pc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[c]`.
    Const(u32),
    /// Push frame slot `i`. Locals resolve at compile time: canvascript
    /// has no closures and no dynamic scope entry, so every reference
    /// that the tree-walker would find by walking its scope chain maps to
    /// a fixed frame-relative slot.
    LoadLocal(u32),
    /// Assign the top of stack (kept on the stack — assignment is an
    /// expression) to frame slot `i`.
    StoreLocal(u32),
    /// Pop and `let`-declare into frame slot `i`.
    DeclareLocal(u32),
    /// Push the global bound to symbol `s` (global slot, then the host's
    /// globals; error when unbound in both).
    LoadGlobal(u32),
    /// Assign the top of stack (kept) to global symbol `s` — an existing
    /// global or sloppy-mode implicit creation, both a plain slot write.
    StoreGlobal(u32),
    /// Pop and `let`-declare global symbol `s` (top-level `let` outside
    /// any block — the tree-walker's scope 0).
    DeclareGlobal(u32),
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Apply a unary operator to the top of stack.
    Unary(UnOp),
    /// Pop rhs then lhs, push the result. Never `And`/`Or` (those compile
    /// to peek-jumps).
    Binary(BinOp),
    /// Pop `n` values, push an array of them (in push order).
    MakeArray(u32),
    /// Pop an object, push property `s` of it.
    GetMember(u32),
    /// Pop index then object, push the element.
    GetIndex,
    /// Pop object then value, set property `s`. The assigned value stays
    /// on the stack (the compiler `Dup`s it first).
    SetMember(u32),
    /// Pop index, object, value; store into the array slot. The assigned
    /// value stays on the stack (the compiler `Dup`s it first).
    SetIndex,
    /// Call builtin `f` with the top `argc` values (popped).
    CallBuiltin {
        /// Index into the fixed builtin table.
        builtin: u16,
        /// Argument count.
        argc: u16,
    },
    /// Call the user function bound to symbol `s`, entering its chunk.
    CallFn {
        /// Interned function name.
        name: u32,
        /// Argument count.
        argc: u16,
    },
    /// Pop `argc` args then the receiver; invoke method `s` on it.
    CallMethod {
        /// Interned method name.
        method: u32,
        /// Argument count.
        argc: u16,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// `&&`: jump when the top is falsy (keeping it as the expression
    /// result), else pop and fall through to the rhs.
    JumpIfFalsyPeek(u32),
    /// `||`: jump when the top is truthy (keeping it as the expression
    /// result), else pop and fall through to the rhs.
    JumpIfTruthyPeek(u32),
    /// Pop into the program-result register (top-level statement value).
    StoreLast,
    /// Set the program-result register to `null` (top-level statements
    /// whose tree-walker flow value is `Null`).
    SetLastNull,
    /// Bind function `f` in the dynamic function table.
    DeclareFn(u32),
    /// Pop the return value; pop the call frame (or finish the program
    /// when at top level).
    Return,
    /// No operation: exists to carry fuel where no other instruction can
    /// absorb it (e.g. immediately before a `while` loop head).
    Fuel,
    /// Raise "break/continue outside loop".
    RaiseLoopCtl,
    /// End of the main chunk: the program result is the result register.
    Halt,
}

impl Op {
    /// The absolute in-chunk target when this op can transfer control,
    /// `None` for straight-line ops. Exposed so downstream consumers
    /// (the verifier, the abstract interpreter's CFG builder) resolve
    /// control flow without pattern-matching every jump variant.
    pub fn jump_target(&self) -> Option<u32> {
        match self {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfFalsyPeek(t) | Op::JumpIfTruthyPeek(t) => {
                Some(*t)
            }
            _ => None,
        }
    }

    /// Whether control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Jump(_) | Op::Return | Op::RaiseLoopCtl | Op::Halt)
    }
}

/// One instruction: the operation plus the tree-walker ticks it charges
/// against the step budget *before* executing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Insn {
    /// The operation.
    pub op: Op,
    /// Ticks charged before this op runs (0 for most ops; >0 where the
    /// compiler attributed AST-node entries here).
    pub fuel: u32,
}

/// A compiled user function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFn {
    /// Interned function name.
    pub name: u32,
    /// Interned parameter names, in order. Parameters occupy frame slots
    /// `0..params.len()`.
    pub params: Vec<u32>,
    /// Frame size: the peak number of live local slots (params included).
    /// The VM reserves this many slots on call entry.
    pub max_slots: u32,
    /// Body chunk (ends with an implicit `return null`).
    pub code: Vec<Insn>,
}

/// A fully compiled program: what the [`crate::ScriptCache`] stores next
/// to the parsed [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledProgram {
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned identifier/property/method names.
    pub symbols: Vec<String>,
    /// Compiled user functions (top-level and nested declarations).
    pub fns: Vec<CompiledFn>,
    /// Function indices hoisted before the first instruction runs
    /// (top-level `fn` declarations, in source order).
    pub hoisted: Vec<u32>,
    /// Peak live local slots of the main chunk (top-level *block* `let`s;
    /// top-level declarations outside blocks are globals).
    pub main_slots: u32,
    /// The main (top-level) chunk, ending in [`Op::Halt`].
    pub main: Vec<Insn>,
}

/// A borrowed view of one code chunk (main or a function body), the
/// unit the verifier and the bytecode abstract interpreter work on.
#[derive(Debug, Clone, Copy)]
pub struct Chunk<'a> {
    /// Function-table index; `None` for the main chunk.
    pub fn_index: Option<usize>,
    /// Interned function name; `None` for the main chunk.
    pub name: Option<u32>,
    /// Parameter count (parameters occupy the lowest frame slots).
    pub params: usize,
    /// Frame size in local slots.
    pub slots: u32,
    /// The instruction stream.
    pub code: &'a [Insn],
}

impl CompiledProgram {
    /// Total instruction count across the main chunk and all functions.
    pub fn instruction_count(&self) -> usize {
        self.main.len() + self.fns.iter().map(|f| f.code.len()).sum::<usize>()
    }

    /// Iterates every chunk of the program, main first.
    pub fn chunks(&self) -> impl Iterator<Item = Chunk<'_>> {
        std::iter::once(Chunk {
            fn_index: None,
            name: None,
            params: 0,
            slots: self.main_slots,
            code: &self.main,
        })
        .chain(self.fns.iter().enumerate().map(|(i, f)| Chunk {
            fn_index: Some(i),
            name: Some(f.name),
            params: f.params.len(),
            slots: f.max_slots,
            code: &f.code,
        }))
    }
}

/// Renders a human-readable disassembly of a compiled program: constant
/// pool, symbol table, then one line per instruction with resolved
/// operand names and the fuel column.
pub fn disassemble(prog: &CompiledProgram) -> String {
    let mut out = String::new();
    if !prog.consts.is_empty() {
        out.push_str("== constants ==\n");
        for (i, c) in prog.consts.iter().enumerate() {
            let rendered = match c {
                Const::Null => "null".to_string(),
                Const::Bool(b) => b.to_string(),
                Const::Num(n) => Value::Num(*n).to_display_string(),
                Const::Str(s) => format!("{s:?}"),
            };
            out.push_str(&format!("  c{i}: {rendered}\n"));
        }
    }
    if !prog.symbols.is_empty() {
        out.push_str("== symbols ==\n");
        for (i, s) in prog.symbols.iter().enumerate() {
            out.push_str(&format!("  s{i}: {s}\n"));
        }
    }
    if !prog.hoisted.is_empty() {
        let names: Vec<&str> = prog
            .hoisted
            .iter()
            .map(|&f| sym(prog, prog.fns[f as usize].name))
            .collect();
        out.push_str(&format!("== hoisted: {} ==\n", names.join(", ")));
    }
    out.push_str(&format!("== main (slots: {}) ==\n", prog.main_slots));
    disassemble_chunk(prog, &prog.main, &mut out);
    for f in &prog.fns {
        let params: Vec<&str> = f.params.iter().map(|&p| sym(prog, p)).collect();
        out.push_str(&format!(
            "== fn {}({}) (slots: {}) ==\n",
            sym(prog, f.name),
            params.join(", "),
            f.max_slots
        ));
        disassemble_chunk(prog, &f.code, &mut out);
    }
    out
}

fn sym(prog: &CompiledProgram, s: u32) -> &str {
    prog.symbols
        .get(s as usize)
        .map(String::as_str)
        .unwrap_or("?")
}

fn disassemble_chunk(prog: &CompiledProgram, code: &[Insn], out: &mut String) {
    for (pc, insn) in code.iter().enumerate() {
        let fuel = if insn.fuel > 0 {
            format!("+{}", insn.fuel)
        } else {
            String::new()
        };
        let body = match insn.op {
            Op::Const(c) => {
                let rendered = prog
                    .consts
                    .get(c as usize)
                    .map(|k| match k {
                        Const::Null => "null".to_string(),
                        Const::Bool(b) => b.to_string(),
                        Const::Num(n) => Value::Num(*n).to_display_string(),
                        Const::Str(s) => format!("{s:?}"),
                    })
                    .unwrap_or_else(|| "?".to_string());
                format!("const c{c}            ; {rendered}")
            }
            Op::LoadLocal(i) => format!("load_local {i}"),
            Op::StoreLocal(i) => format!("store_local {i}"),
            Op::DeclareLocal(i) => format!("declare_local {i}"),
            Op::LoadGlobal(s) => format!("load_global s{s}      ; {}", sym(prog, s)),
            Op::StoreGlobal(s) => format!("store_global s{s}     ; {}", sym(prog, s)),
            Op::DeclareGlobal(s) => format!("declare_global s{s}   ; let {}", sym(prog, s)),
            Op::Pop => "pop".to_string(),
            Op::Dup => "dup".to_string(),
            Op::Unary(op) => format!("unary {op:?}"),
            Op::Binary(op) => format!("binary {op:?}"),
            Op::MakeArray(n) => format!("make_array {n}"),
            Op::GetMember(s) => format!("get_member s{s}       ; .{}", sym(prog, s)),
            Op::GetIndex => "get_index".to_string(),
            Op::SetMember(s) => format!("set_member s{s}       ; .{}", sym(prog, s)),
            Op::SetIndex => "set_index".to_string(),
            Op::CallBuiltin { builtin, argc } => format!(
                "call_builtin {builtin}/{argc}    ; {}",
                crate::interp::builtin_name(builtin)
            ),
            Op::CallFn { name, argc } => {
                format!("call s{name}/{argc}          ; {}", sym(prog, name))
            }
            Op::CallMethod { method, argc } => {
                format!("call_method s{method}/{argc}   ; .{}", sym(prog, method))
            }
            Op::Jump(t) => format!("jump {t:04}"),
            Op::JumpIfFalse(t) => format!("jump_if_false {t:04}"),
            Op::JumpIfFalsyPeek(t) => format!("jump_if_falsy_peek {t:04}"),
            Op::JumpIfTruthyPeek(t) => format!("jump_if_truthy_peek {t:04}"),
            Op::StoreLast => "store_last".to_string(),
            Op::SetLastNull => "set_last_null".to_string(),
            Op::DeclareFn(f) => {
                let name = prog
                    .fns
                    .get(f as usize)
                    .map(|d| sym(prog, d.name))
                    .unwrap_or("?");
                format!("declare_fn f{f}        ; {name}")
            }
            Op::Return => "return".to_string(),
            Op::Fuel => "fuel".to_string(),
            Op::RaiseLoopCtl => "raise_loop_ctl".to_string(),
            Op::Halt => "halt".to_string(),
        };
        out.push_str(&format!("  {pc:04} {fuel:>4} {body}\n"));
    }
}
