//! # canvassing-script
//!
//! *canvascript*: a small, deterministic scripting language in which this
//! reproduction's fingerprinting and benign scripts are written.
//!
//! The paper studies *scripts* — artifacts with source text, URLs, and
//! observable API behavior. Modeling vendor fingerprinting code as data
//! (source strings served over the simulated network and executed by the
//! simulated browser) rather than hard-coded Rust keeps the whole
//! measurement pipeline honest: script-pattern attribution inspects real
//! URLs, blocklists match real requests, first-party bundling really
//! inlines source text, and the instrumentation records real call
//! arguments.
//!
//! The language is a JavaScript-flavored subset: `let`/`var`/`const`,
//! functions, `if`/`while`/`for`, arrays, strings (full Unicode, emoji
//! included), arithmetic/logic, property access and method calls. All
//! DOM/canvas behavior lives behind the [`Host`] trait, implemented by
//! `canvassing-dom`. Execution is bounded by a step budget so generated
//! scripts can never hang a crawl worker.
//!
//! Scripts execute on a compile-to-bytecode VM ([`compile`] +
//! [`run_compiled_with_budget`]) with step accounting byte-identical to
//! the original tree-walking interpreter, which remains available as a
//! differential-testing oracle (select with [`ExecEngine`]). The
//! [`ScriptCache`] caches parse *and* bytecode per unique source body.
//!
//! ```
//! use canvassing_script::{eval, NullHost};
//!
//! let v = eval("let x = 6; x * 7;", &mut NullHost).unwrap();
//! assert_eq!(v.as_num(), Some(42.0));
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod bytecode;
pub mod cache;
pub mod compile;
pub mod interp;
pub mod lexer;
pub mod parser;
#[cfg(test)]
mod proptests;
pub mod value;
pub mod verify;
pub mod vm;

pub use ast::{AssignTarget, BinOp, Expr, FnDecl, Program, Stmt, UnOp};
pub use bytecode::{disassemble, Chunk, CompiledProgram};
pub use cache::{source_hash, ExecutableScript, ScriptCache, ScriptCacheStats};
pub use compile::compile;
pub use interp::{eval, eval_with_budget, run, run_with_budget, EvalOutcome, DEFAULT_STEP_BUDGET};
pub use parser::{parse, ParseError};
pub use value::{Host, HostRef, NullHost, RuntimeError, Value};
pub use verify::{verify, VerifyError, VerifyStats};
pub use vm::{
    eval_engine_with_budget, run_compiled, run_compiled_with_budget, run_engine_with_budget,
    ExecEngine,
};
