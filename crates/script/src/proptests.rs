//! Property tests for canvascript: a randomized expression generator with
//! a Rust reference evaluator, plus totality checks on the front end.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use crate::cache::ScriptCache;
use crate::interp::eval;
use crate::value::{NullHost, Value};

/// A random arithmetic expression together with its expected value,
/// generated structurally so the Rust reference and the canvascript
/// source agree by construction.
#[derive(Debug, Clone)]
struct ArithExpr {
    source: String,
    expected: f64,
}

fn leaf() -> impl Strategy<Value = ArithExpr> {
    // Small integers keep f64 arithmetic exact.
    (-50i32..50).prop_map(|n| ArithExpr {
        source: if n < 0 {
            format!("(0 - {})", -n)
        } else {
            n.to_string()
        },
        expected: n as f64,
    })
}

fn arith() -> impl Strategy<Value = ArithExpr> {
    leaf().prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner, 0..3u8).prop_map(|(a, b, op)| match op {
            0 => ArithExpr {
                source: format!("({} + {})", a.source, b.source),
                expected: a.expected + b.expected,
            },
            1 => ArithExpr {
                source: format!("({} - {})", a.source, b.source),
                expected: a.expected - b.expected,
            },
            _ => ArithExpr {
                source: format!("({} * {})", a.source, b.source),
                expected: a.expected * b.expected,
            },
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter agrees with a structurally generated reference on
    /// integer arithmetic.
    #[test]
    fn arithmetic_matches_reference(expr in arith()) {
        let v = eval(&format!("{};", expr.source), &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(expr.expected));
    }

    /// The same expression stored through a variable round-trips.
    #[test]
    fn variables_round_trip(expr in arith()) {
        let src = format!("let tmp = {}; tmp;", expr.source);
        let v = eval(&src, &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(expr.expected));
    }

    /// Comparison operators agree with Rust on integer pairs.
    #[test]
    fn comparisons_match(a in -100i64..100, b in -100i64..100) {
        let check = |op: &str, expected: bool| {
            let v = eval(&format!("{a} {op} {b};"), &mut NullHost).unwrap();
            assert_eq!(v.truthy(), expected, "{a} {op} {b}");
        };
        check("<", a < b);
        check("<=", a <= b);
        check(">", a > b);
        check(">=", a >= b);
        check("==", a == b);
        check("!=", a != b);
    }

    /// The lexer+parser never panic on arbitrary printable input.
    #[test]
    fn parser_is_total(src in "[ -~\\n]{0,200}") {
        let _ = crate::parser::parse(&src);
    }

    /// Loops that count to n actually count to n.
    #[test]
    fn counting_loops(n in 0u32..200) {
        let src = format!(
            "let total = 0; for (let i = 0; i < {n}; i = i + 1) {{ total = total + 1; }} total;"
        );
        let v = eval(&src, &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(n as f64));
    }

    /// String concatenation through the interpreter matches Rust.
    #[test]
    fn string_concat_matches(a in "[a-z]{0,10}", b in "[0-9]{0,10}") {
        let src = format!("\"{a}\" + \"{b}\";");
        let v = eval(&src, &mut NullHost).unwrap();
        match v {
            Value::Str(s) => prop_assert_eq!(s, format!("{a}{b}")),
            other => prop_assert!(false, "expected string, got {other:?}"),
        }
    }

    /// The compile cache is transparent: for arbitrary printable source,
    /// `get_or_parse` (cold and warm) agrees exactly with a direct parse —
    /// same Program, same error.
    #[test]
    fn cache_agrees_with_direct_parse(src in "[ -~\\n]{0,200}") {
        let cache = ScriptCache::new();
        let direct = crate::parser::parse(&src);
        let cold = cache.get_or_parse(&src).map(|p| (*p).clone());
        let warm = cache.get_or_parse(&src).map(|p| (*p).clone());
        prop_assert_eq!(&cold, &direct);
        prop_assert_eq!(&warm, &direct);
    }

    /// Trace hit/parse counters partition lookups: over an arbitrary
    /// lookup sequence, `script.cache.hit + script.cache.parse` equals the
    /// number of traced lookups, and parses equal distinct bodies.
    #[test]
    fn traced_counters_partition_lookups(picks in proptest::collection::vec(0usize..6, 1..64)) {
        use canvassing_trace::{MetricsRegistry, VisitRecorder};
        let cache = ScriptCache::new();
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("prop", Some(std::sync::Arc::clone(&reg)));
        let bodies: Vec<String> = (0..6).map(|i| format!("{i} + {i};")).collect();
        let mut distinct = std::collections::BTreeSet::new();
        for &p in &picks {
            cache.get_or_parse_traced(&bodies[p], &rec).unwrap();
            distinct.insert(p);
        }
        let snap = reg.snapshot();
        let hits = snap.counters.get("script.cache.hit").copied().unwrap_or(0);
        let parses = snap.counters.get("script.cache.parse").copied().unwrap_or(0);
        prop_assert_eq!(hits + parses, picks.len() as u64);
        prop_assert_eq!(parses, distinct.len() as u64);
        prop_assert_eq!(cache.stats().lookups(), picks.len() as u64);
    }

    /// Array push/index round-trips arbitrary integer sequences.
    #[test]
    fn array_roundtrip(items in proptest::collection::vec(-1000i64..1000, 0..12)) {
        let mut src = String::from("let a = [];");
        for item in &items {
            src.push_str(&format!(" a.push({item});"));
        }
        src.push_str(" a.join(\",\");");
        let v = eval(&src, &mut NullHost).unwrap();
        let expected = items
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        prop_assert_eq!(v.to_display_string(), expected);
    }
}
