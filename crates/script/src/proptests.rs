//! Property tests for canvascript: a randomized expression generator with
//! a Rust reference evaluator, totality checks on the front end, and the
//! differential suite that locks the bytecode VM to the tree-walking
//! oracle (identical results, host-effect sequences, step counts, and
//! fuel-exhaustion outcomes — including exhaustion mid-loop and
//! mid-call).

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use crate::cache::ScriptCache;
use crate::interp::eval;
use crate::value::{Host, HostRef, NullHost, RuntimeError, Value};

/// A random arithmetic expression together with its expected value,
/// generated structurally so the Rust reference and the canvascript
/// source agree by construction.
#[derive(Debug, Clone)]
struct ArithExpr {
    source: String,
    expected: f64,
}

fn leaf() -> impl Strategy<Value = ArithExpr> {
    // Small integers keep f64 arithmetic exact.
    (-50i32..50).prop_map(|n| ArithExpr {
        source: if n < 0 {
            format!("(0 - {})", -n)
        } else {
            n.to_string()
        },
        expected: n as f64,
    })
}

fn arith() -> impl Strategy<Value = ArithExpr> {
    leaf().prop_recursive(4, 32, 2, |inner| {
        (inner.clone(), inner, 0..3u8).prop_map(|(a, b, op)| match op {
            0 => ArithExpr {
                source: format!("({} + {})", a.source, b.source),
                expected: a.expected + b.expected,
            },
            1 => ArithExpr {
                source: format!("({} - {})", a.source, b.source),
                expected: a.expected - b.expected,
            },
            _ => ArithExpr {
                source: format!("({} * {})", a.source, b.source),
                expected: a.expected * b.expected,
            },
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter agrees with a structurally generated reference on
    /// integer arithmetic.
    #[test]
    fn arithmetic_matches_reference(expr in arith()) {
        let v = eval(&format!("{};", expr.source), &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(expr.expected));
    }

    /// The same expression stored through a variable round-trips.
    #[test]
    fn variables_round_trip(expr in arith()) {
        let src = format!("let tmp = {}; tmp;", expr.source);
        let v = eval(&src, &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(expr.expected));
    }

    /// Comparison operators agree with Rust on integer pairs.
    #[test]
    fn comparisons_match(a in -100i64..100, b in -100i64..100) {
        let check = |op: &str, expected: bool| {
            let v = eval(&format!("{a} {op} {b};"), &mut NullHost).unwrap();
            assert_eq!(v.truthy(), expected, "{a} {op} {b}");
        };
        check("<", a < b);
        check("<=", a <= b);
        check(">", a > b);
        check(">=", a >= b);
        check("==", a == b);
        check("!=", a != b);
    }

    /// The lexer+parser never panic on arbitrary printable input.
    #[test]
    fn parser_is_total(src in "[ -~\\n]{0,200}") {
        let _ = crate::parser::parse(&src);
    }

    /// Loops that count to n actually count to n.
    #[test]
    fn counting_loops(n in 0u32..200) {
        let src = format!(
            "let total = 0; for (let i = 0; i < {n}; i = i + 1) {{ total = total + 1; }} total;"
        );
        let v = eval(&src, &mut NullHost).unwrap();
        prop_assert_eq!(v.as_num(), Some(n as f64));
    }

    /// String concatenation through the interpreter matches Rust.
    #[test]
    fn string_concat_matches(a in "[a-z]{0,10}", b in "[0-9]{0,10}") {
        let src = format!("\"{a}\" + \"{b}\";");
        let v = eval(&src, &mut NullHost).unwrap();
        match v {
            Value::Str(s) => prop_assert_eq!(s, format!("{a}{b}")),
            other => prop_assert!(false, "expected string, got {other:?}"),
        }
    }

    /// The compile cache is transparent: for arbitrary printable source,
    /// `get_or_parse` (cold and warm) agrees exactly with a direct parse —
    /// same Program, same error.
    #[test]
    fn cache_agrees_with_direct_parse(src in "[ -~\\n]{0,200}") {
        let cache = ScriptCache::new();
        let direct = crate::parser::parse(&src);
        let cold = cache.get_or_parse(&src).map(|p| (*p).clone());
        let warm = cache.get_or_parse(&src).map(|p| (*p).clone());
        prop_assert_eq!(&cold, &direct);
        prop_assert_eq!(&warm, &direct);
    }

    /// Trace hit/parse counters partition lookups: over an arbitrary
    /// lookup sequence, `script.cache.hit + script.cache.parse` equals the
    /// number of traced lookups, and parses equal distinct bodies.
    #[test]
    fn traced_counters_partition_lookups(picks in proptest::collection::vec(0usize..6, 1..64)) {
        use canvassing_trace::{MetricsRegistry, VisitRecorder};
        let cache = ScriptCache::new();
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("prop", Some(std::sync::Arc::clone(&reg)));
        let bodies: Vec<String> = (0..6).map(|i| format!("{i} + {i};")).collect();
        let mut distinct = std::collections::BTreeSet::new();
        for &p in &picks {
            cache.get_or_parse_traced(&bodies[p], &rec).unwrap();
            distinct.insert(p);
        }
        let snap = reg.snapshot();
        let hits = snap.counters.get("script.cache.hit").copied().unwrap_or(0);
        let parses = snap.counters.get("script.cache.parse").copied().unwrap_or(0);
        prop_assert_eq!(hits + parses, picks.len() as u64);
        prop_assert_eq!(parses, distinct.len() as u64);
        prop_assert_eq!(cache.stats().lookups(), picks.len() as u64);
    }

    /// Array push/index round-trips arbitrary integer sequences.
    #[test]
    fn array_roundtrip(items in proptest::collection::vec(-1000i64..1000, 0..12)) {
        let mut src = String::from("let a = [];");
        for item in &items {
            src.push_str(&format!(" a.push({item});"));
        }
        src.push_str(" a.join(\",\");");
        let v = eval(&src, &mut NullHost).unwrap();
        let expected = items
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        prop_assert_eq!(v.to_display_string(), expected);
    }

    /// Differential property: the bytecode VM agrees with the tree-walker
    /// on structurally generated arithmetic (full budget and a starving
    /// one).
    #[test]
    fn vm_matches_tree_walker_on_arith(expr in arith()) {
        let src = format!("{};", expr.source);
        differential(&src, &[u64::MAX, 5, 1]);
    }

    /// Differential property over arbitrary printable source: engines
    /// agree even on junk (parse failures short-circuit identically).
    #[test]
    fn vm_matches_tree_walker_on_arbitrary_source(src in "[ -~\\n]{0,200}") {
        differential(&src, &[1000]);
    }
}

// ---------------------------------------------------------------------------
// Differential engine suite (tree-walker oracle vs bytecode VM).
//
// The proptest stub compiles but does not sample, so the real coverage
// lives in the seeded-LCG tests below: randomly generated programs are
// run through both engines with the same deterministic recording host
// and the same budget, and must produce identical results, identical
// host-effect sequences, and identical step/fuel-exhaustion outcomes at
// every budget — including budgets that starve the script mid-loop and
// mid-call.
// ---------------------------------------------------------------------------

/// A deterministic host that logs every interaction. Two identically
/// seeded instances fed the same call sequence return the same values,
/// so engine divergence shows up as a log or result mismatch.
#[derive(Default)]
struct RecordingHost {
    log: Vec<String>,
    seq: u64,
}

impl Host for RecordingHost {
    fn global(&mut self, name: &str) -> Option<Value> {
        self.log.push(format!("global:{name}"));
        match name {
            "answer" => Some(Value::Num(42.0)),
            "tag" => Some(Value::Str("fp".into())),
            "hobj" => Some(Value::Host(1)),
            _ => None,
        }
    }

    fn get_prop(&mut self, obj: HostRef, name: &str) -> Result<Value, RuntimeError> {
        self.log.push(format!("get:#{obj}.{name}"));
        self.seq += 1;
        Ok(match self.seq % 3 {
            0 => Value::Num((obj + self.seq) as f64),
            1 => Value::Str(format!("p{}", self.seq)),
            _ => Value::Host(obj + 1),
        })
    }

    fn set_prop(&mut self, obj: HostRef, name: &str, value: Value) -> Result<(), RuntimeError> {
        self.log
            .push(format!("set:#{obj}.{name}={}", value.to_display_string()));
        if name == "frozen" {
            return Err(RuntimeError::new("host property frozen is read-only"));
        }
        Ok(())
    }

    fn call_method(
        &mut self,
        obj: HostRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let rendered: Vec<String> = args.iter().map(Value::to_display_string).collect();
        self.log
            .push(format!("call:#{obj}.{method}({})", rendered.join(",")));
        if method == "boom" {
            return Err(RuntimeError::new("host method boom failed"));
        }
        self.seq += 1;
        Ok(match self.seq % 4 {
            0 => Value::Num(self.seq as f64),
            1 => Value::Str(format!("m{}", self.seq)),
            2 => Value::Host(obj + 10),
            _ => Value::array(vec![Value::Num(self.seq as f64), Value::Str("x".into())]),
        })
    }
}

/// Depth-capped value rendering for comparisons (plain `Debug` could
/// recurse forever on self-referential arrays a generated script can
/// build with `a.push(a)`).
fn render(v: &Value, depth: usize) -> String {
    match v {
        Value::Array(items) if depth == 0 => format!("Array(len={})", items.borrow().len()),
        Value::Array(items) => {
            let inner: Vec<String> = items
                .borrow()
                .iter()
                .map(|x| render(x, depth - 1))
                .collect();
            format!("Array[{}]", inner.join(","))
        }
        Value::Num(n) => format!("Num({n})"),
        Value::Str(s) => format!("Str({s:?})"),
        Value::Bool(b) => format!("Bool({b})"),
        Value::Null => "Null".into(),
        Value::Host(h) => format!("Host({h})"),
    }
}

fn render_outcome(out: &crate::EvalOutcome) -> String {
    match &out.result {
        Ok(v) => format!("ok:{} steps:{}", render(v, 6), out.steps),
        Err(e) => format!("err:{} steps:{}", e.message, out.steps),
    }
}

/// Runs `src` through both engines at each budget and asserts identical
/// outcomes, step counts, and host-effect logs. Returns the full-budget
/// step count of the (agreed) run when the program executed.
fn differential(src: &str, budgets: &[u64]) -> u64 {
    let parsed = crate::parser::parse(src);
    let compiled = parsed.as_ref().ok().map(crate::compile::compile);
    let mut max_steps = 0;
    for &budget in budgets {
        let mut tw_host = RecordingHost::default();
        let mut vm_host = RecordingHost::default();
        let (tw, vm) = match (&parsed, &compiled) {
            (Ok(program), Some(code)) => (
                crate::run_with_budget(program, &mut tw_host, budget),
                crate::run_compiled_with_budget(code, &mut vm_host, budget),
            ),
            _ => (
                crate::eval_with_budget(src, &mut tw_host, budget),
                crate::eval_engine_with_budget(
                    src,
                    &mut vm_host,
                    budget,
                    crate::ExecEngine::Bytecode,
                ),
            ),
        };
        assert_eq!(
            render_outcome(&tw),
            render_outcome(&vm),
            "engine outcome divergence at budget {budget} for:\n{src}"
        );
        assert_eq!(
            tw_host.log, vm_host.log,
            "host-effect divergence at budget {budget} for:\n{src}"
        );
        max_steps = max_steps.max(tw.steps);
    }
    max_steps
}

/// Generous-but-bounded probe budget for measuring a program's full step
/// count. A hard cap (rather than `u64::MAX`) keeps accidentally
/// non-terminating generated programs finite — exhaustion outcomes are
/// themselves compared, so capped runs still test parity.
const PROBE_BUDGET: u64 = 20_000;

/// Exhaustive budget sweep: every budget from 0 past the program's full
/// step count. Catches any instruction whose fuel attribution lands one
/// tick away from the tree-walker's.
fn differential_all_budgets(src: &str) {
    let full = differential(src, &[PROBE_BUDGET]);
    assert!(full < 3000, "sweep programs must stay small ({full} steps)");
    let budgets: Vec<u64> = (0..=full + 2).collect();
    differential(src, &budgets);
}

/// Small deterministic LCG (same constants as the crate's other seeded
/// tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Random-program generator: emits syntactically valid canvascript
/// exercising every construct both engines implement — scopes and
/// shadowing, loops with break/continue, user functions (recursion
/// included), builtins, string/array methods, host globals, property
/// reads/writes, host method calls, all assignment target kinds, and
/// deliberately out-of-scope names (runtime errors must match too).
struct ProgramGen {
    lcg: Lcg,
    vars: Vec<String>,
    fns: Vec<(String, usize)>,
    in_loop: bool,
    next_id: usize,
}

impl ProgramGen {
    fn new(seed: u64) -> ProgramGen {
        ProgramGen {
            lcg: Lcg(seed ^ 0x9e3779b97f4a7c15),
            vars: Vec::new(),
            fns: Vec::new(),
            in_loop: false,
            next_id: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    fn var(&mut self) -> String {
        if self.vars.is_empty() || self.lcg.pick(12) == 0 {
            // Occasionally reference a name that may not exist: the
            // undefined-variable error path must match across engines.
            "mystery".to_string()
        } else {
            let i = self.lcg.pick(self.vars.len() as u64) as usize;
            self.vars[i].clone()
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        let atom = depth == 0 || self.lcg.pick(3) == 0;
        if atom {
            match self.lcg.pick(9) {
                0 => format!("{}", self.lcg.pick(20)),
                1 => format!("\"s{}\"", self.lcg.pick(5)),
                2 => "true".into(),
                3 => "false".into(),
                4 => "null".into(),
                5 => "answer".into(),
                6 => "tag".into(),
                7 => "hobj".into(),
                _ => self.var(),
            }
        } else {
            match self.lcg.pick(14) {
                0 => {
                    let op = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="]
                        [self.lcg.pick(11) as usize];
                    format!("({} {} {})", self.expr(depth - 1), op, self.expr(depth - 1))
                }
                1 => {
                    let op = ["&&", "||"][self.lcg.pick(2) as usize];
                    format!("({} {} {})", self.expr(depth - 1), op, self.expr(depth - 1))
                }
                2 => format!("(-{})", self.expr(depth - 1)),
                3 => format!("(!{})", self.expr(depth - 1)),
                4 => format!("[{}, {}]", self.expr(depth - 1), self.expr(depth - 1)),
                5 => format!("{}[{}]", self.var(), self.expr(depth - 1)),
                6 => {
                    let b = ["len", "str", "floor", "abs", "max", "fromCharCode"]
                        [self.lcg.pick(6) as usize];
                    match b {
                        "max" => format!("max({}, {})", self.expr(depth - 1), self.expr(depth - 1)),
                        "fromCharCode" => {
                            format!("fromCharCode((65 + ({} % 26)))", self.lcg.pick(100))
                        }
                        _ => format!("{b}({})", self.expr(depth - 1)),
                    }
                }
                7 => match self.fns.len() {
                    0 => self.expr(depth - 1),
                    n => {
                        let (name, arity) = self.fns[self.lcg.pick(n as u64) as usize].clone();
                        let args: Vec<String> = (0..arity).map(|_| self.expr(depth - 1)).collect();
                        format!("{name}({})", args.join(", "))
                    }
                },
                8 => {
                    let m = ["push", "join", "indexOf", "pop"][self.lcg.pick(4) as usize];
                    // `push` takes a numeric literal so generated arrays can
                    // never become self-referential (cyclic arrays would hang
                    // display rendering in both engines alike).
                    if m == "push" {
                        format!("{}.push({})", self.var(), self.lcg.pick(50))
                    } else {
                        format!("{}.{m}({})", self.var(), self.expr(depth - 1))
                    }
                }
                9 => {
                    let m = [
                        "charCodeAt",
                        "substring",
                        "toUpperCase",
                        "indexOf",
                        "includes",
                    ][self.lcg.pick(5) as usize];
                    match m {
                        "toUpperCase" => format!("\"ab{}\".toUpperCase()", self.lcg.pick(5)),
                        "indexOf" | "includes" => {
                            format!("\"abcab{}\".{m}(\"b\")", self.lcg.pick(3))
                        }
                        _ => format!("\"abcdef\".{m}({})", self.lcg.pick(8)),
                    }
                }
                10 => format!("hobj.p{}", self.lcg.pick(4)),
                11 => format!("hobj.m{}({})", self.lcg.pick(3), self.expr(depth - 1)),
                12 => {
                    let target = self.var();
                    format!("({target} = {})", self.expr(depth - 1))
                }
                _ => match self.lcg.pick(3) {
                    0 => format!("(hobj.p{} = {})", self.lcg.pick(4), self.expr(depth - 1)),
                    // Index writes store numeric literals only — an array
                    // stored into itself would be cyclic (see `push` above).
                    1 => format!(
                        "({}[{}] = {})",
                        self.var(),
                        self.lcg.pick(4),
                        self.lcg.pick(50)
                    ),
                    _ => format!(
                        "hobj.child().m{}({})",
                        self.lcg.pick(3),
                        self.expr(depth - 1)
                    ),
                },
            }
        }
    }

    fn stmts(&mut self, count: usize, depth: usize, out: &mut String) {
        for _ in 0..count {
            self.stmt(depth, out);
        }
    }

    fn stmt(&mut self, depth: usize, out: &mut String) {
        let choice = if depth == 0 {
            self.lcg.pick(3)
        } else {
            self.lcg.pick(10)
        };
        match choice {
            0 => {
                let name = if !self.vars.is_empty() && self.lcg.pick(5) == 0 {
                    self.var() // re-let: shadowing must match
                } else {
                    self.fresh("v")
                };
                let e = self.expr(2);
                out.push_str(&format!("let {name} = {e};\n"));
                self.vars.push(name);
            }
            1 => out.push_str(&format!("{};\n", self.expr(2))),
            2 => {
                let target = self.var();
                out.push_str(&format!("{target} = {};\n", self.expr(2)));
            }
            3 => {
                let saved = self.vars.len();
                out.push_str(&format!("if ({}) {{\n", self.expr(2)));
                let n_then = 1 + self.lcg.pick(2) as usize;
                self.stmts(n_then, depth - 1, out);
                self.vars.truncate(saved);
                if self.lcg.pick(2) == 0 {
                    out.push_str("} else {\n");
                    let n_else = self.lcg.pick(2) as usize;
                    self.stmts(n_else, depth - 1, out);
                    self.vars.truncate(saved);
                }
                out.push_str("}\n");
            }
            4 => {
                let i = self.fresh("i");
                let bound = self.lcg.pick(5);
                out.push_str(&format!(
                    "for (let {i} = 0; {i} < {bound}; {i} = {i} + 1) {{\n"
                ));
                let saved = self.vars.len();
                self.vars.push(i);
                let was = std::mem::replace(&mut self.in_loop, true);
                let n_body = 1 + self.lcg.pick(2) as usize;
                self.stmts(n_body, depth - 1, out);
                self.in_loop = was;
                self.vars.truncate(saved);
                out.push_str("}\n");
            }
            5 => {
                let w = self.fresh("w");
                let bound = self.lcg.pick(5);
                out.push_str(&format!(
                    "let {w} = 0;\nwhile ({w} < {bound}) {{\n{w} = {w} + 1;\n"
                ));
                self.vars.push(w);
                let saved = self.vars.len();
                let was = std::mem::replace(&mut self.in_loop, true);
                let n_body = 1 + self.lcg.pick(2) as usize;
                self.stmts(n_body, depth - 1, out);
                self.in_loop = was;
                self.vars.truncate(saved);
                out.push_str("}\n");
            }
            6 if self.in_loop => {
                // Guarded so loops still make progress before exiting.
                let kw = ["break", "continue"][self.lcg.pick(2) as usize];
                out.push_str(&format!("if ({}) {{ {kw}; }}\n", self.expr(1)));
            }
            6 => {
                // Outside a loop: the "break/continue outside loop"
                // error path, behind a rarely-true guard.
                out.push_str("if (answer < 3) { break; }\n");
            }
            7 => {
                let a = self.fresh("a");
                out.push_str(&format!(
                    "let {a} = [{}, {}];\n",
                    self.lcg.pick(9),
                    self.expr(1)
                ));
                self.vars.push(a.clone());
                out.push_str(&format!("{a}.push({});\n", self.lcg.pick(50)));
            }
            8 => out.push_str(&format!("hobj.m{}({});\n", self.lcg.pick(3), self.expr(2))),
            _ => {
                if self.lcg.pick(4) == 0 {
                    out.push_str(&format!(
                        "if ({}) {{ return {}; }}\n",
                        self.expr(1),
                        self.expr(1)
                    ));
                } else {
                    out.push_str(&format!("{};\n", self.expr(2)));
                }
            }
        }
    }

    fn gen_fn(&mut self, out: &mut String) {
        let name = self.fresh("f");
        let arity = self.lcg.pick(3) as usize;
        let params: Vec<String> = (0..arity).map(|_| self.fresh("p")).collect();
        // The body sees params (plus globals declared so far); it may
        // call previously declared functions or itself (recursion depth
        // and budget limits must then agree across engines).
        self.fns.push((name.clone(), arity));
        let saved_vars = std::mem::replace(&mut self.vars, params.clone());
        let was = std::mem::replace(&mut self.in_loop, false);
        out.push_str(&format!("fn {name}({}) {{\n", params.join(", ")));
        let mut body = String::new();
        let n_body = 1 + self.lcg.pick(3) as usize;
        self.stmts(n_body, 1, &mut body);
        body.push_str(&format!("return {};\n", self.expr(1)));
        out.push_str(&body);
        out.push_str("}\n");
        self.in_loop = was;
        self.vars = saved_vars;
    }

    fn program(&mut self) -> String {
        let mut out = String::new();
        for _ in 0..self.lcg.pick(3) {
            self.gen_fn(&mut out);
        }
        let n_top = 3 + self.lcg.pick(6) as usize;
        self.stmts(n_top, 2, &mut out);
        // End on an expression so the program-result register is
        // exercised too.
        let e = self.expr(2);
        out.push_str(&format!("{e};\n"));
        out
    }
}

/// Seeded-LCG differential sweep: hundreds of random programs, each run
/// through both engines at the full budget plus budgets chosen to starve
/// it at arbitrary interior points.
#[test]
fn seeded_random_programs_agree_across_engines() {
    for seed in 0..400u64 {
        let src = ProgramGen::new(seed).program();
        // Generated programs can loop forever (a random assignment can
        // reset a loop counter), so the full-run probe is budget-capped;
        // both engines then agree on the exhaustion outcome instead.
        let full = differential(&src, &[PROBE_BUDGET]);
        let mut budgets = vec![full, full.saturating_sub(1), full / 2, full / 3, 1, 2, 0];
        let mut lcg = Lcg(seed.wrapping_add(77));
        for _ in 0..4 {
            budgets.push(lcg.pick(full.max(1)));
        }
        budgets.sort_unstable();
        budgets.dedup();
        differential(&src, &budgets);
    }
}

/// The verifier accepts every chunk the compiler emits across the same
/// 400-seed generator corpus the differential suite uses, and its stats
/// cover every instruction of every chunk.
#[test]
fn verifier_accepts_every_generated_chunk() {
    for seed in 0..400u64 {
        let src = ProgramGen::new(seed).program();
        let program = crate::parse(&src).expect("generator output parses");
        let compiled = crate::compile::compile(&program);
        let stats = crate::verify::verify(&compiled).unwrap_or_else(|e| {
            panic!("seed {seed}: verifier rejected compiled chunk: {e}\n{src}")
        });
        assert_eq!(stats.insns, compiled.instruction_count());
        assert_eq!(stats.chunks, 1 + compiled.fns.len());
    }
}

/// Exhaustion mid-loop: every budget value across a while and a for
/// loop, so the per-iteration tick and loop-head fuel attribution are
/// pinned exactly.
#[test]
fn exhaustion_mid_loop_is_identical() {
    differential_all_budgets("let i = 0; while (i < 9) { i = i + 1; hobj.tickle(i); } i;");
    differential_all_budgets("let s = 0; for (let i = 0; i < 7; i = i + 1) { s = s + i; } s;");
    differential_all_budgets(
        "let t = 0; for (let i = 0; i < 5; i = i + 1) { if (i == 3) { break; } if (i == 1) { continue; } t = t + i; } t;",
    );
    differential_all_budgets("let n = 0; while (true) { n = n + 1; if (n > 6) { break; } } n;");
}

/// Exhaustion mid-call: every budget through recursive and host-effecting
/// calls, so call-frame fuel (args, body statements, returns) matches.
#[test]
fn exhaustion_mid_call_is_identical() {
    differential_all_budgets(
        "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } fib(7);",
    );
    differential_all_budgets(
        "fn poke(n) { hobj.poke(n); if (n > 0) { return poke(n - 1); } return 0; } poke(4);",
    );
    differential_all_budgets(
        "let g = 0; fn bump() { g = g + 1; return g; } bump(); bump() + bump();",
    );
}

/// Host-effect sequences agree at every cut point: a chain of host calls
/// with exhaustion landing between each pair.
#[test]
fn host_effect_sequences_agree_under_starvation() {
    differential_all_budgets(
        "hobj.a(1); hobj.b(tag); let x = hobj.p1; hobj.c(x); hobj.p2 = answer; hobj.d(hobj.p3);",
    );
    // Host errors must surface identically too.
    differential_all_budgets("hobj.a(1); hobj.boom(); hobj.never(1);");
    differential_all_budgets("hobj.frozen = 3;");
}

/// Engine parity on the language corner cases the compiler handles
/// specially (value-mode branches, short-circuit results, top-level
/// return, implicit globals, builtin shadowing, nested fn declarations).
#[test]
fn engine_parity_corner_cases() {
    for src in [
        // Top-level `last` value flows through if-branches and loops.
        "if (true) { 5; } else { 6; }",
        "if (false) { 5; } else { 6; }",
        "if (true) { } else { 6; }",
        "if (true) { let q = 1; }",
        "while (false) { 1; }",
        "9; if (true) { if (false) { 1; } else { } }",
        // Short-circuit returns the deciding operand itself.
        "0 && boomless;",
        "\"\" || 7;",
        "3 && 0;",
        "null || \"\";",
        // Top-level return ends the program.
        "1; return 42; 3;",
        "return;",
        // Implicit global creation, cross-scope assignment.
        "fn set() { ghost = 9; } set(); ghost;",
        "let x = 1; if (true) { x = 2; let x = 3; x = 4; } x;",
        // Builtins shadow user functions of the same name.
        "fn len(q) { return 99; } len(\"abc\");",
        // Function declarations are hoisted at top level only.
        "early(); fn early() { return 11; }",
        "fn outer() { fn inner() { return 5; } return inner(); } outer();",
        // Redeclared function: later declaration wins (dynamically).
        "fn f() { return 1; } fn f() { return 2; } f();",
        // Assignment is an expression; index/member writes evaluate
        // value before target.
        "let a = [0]; let b = (a[2] = 8); b + len(a);",
        "let c = (hobj.w = 5); c;",
        // Params shadow globals; extra args dropped; missing -> null.
        "let p1 = 7; fn id(p1) { return p1; } id(3) + p1;",
        "fn two(x, y) { return str(x) + str(y); } two(1); two(1, 2); two(1, 2, 3);",
        // Deep recursion trips the shared call-depth limit.
        "fn f(n) { return f(n + 1); } f(0);",
        // break/continue outside any loop is a runtime error.
        "break;",
        "continue;",
        "fn g() { break; } g();",
        // String/array/host member errors.
        "\"abc\".length;",
        "[1,2,3].length;",
        "(5).length;",
        "null[0];",
        "5();",
    ] {
        differential_all_budgets(src);
    }
}

/// Compilation is deterministic and the disassembler round-trips every
/// op without panicking.
#[test]
fn compile_is_deterministic_and_disassembles() {
    let src = ProgramGen::new(7).program();
    let program = crate::parser::parse(&src).unwrap();
    let a = crate::compile::compile(&program);
    let b = crate::compile::compile(&program);
    assert_eq!(a, b, "same AST must compile to identical bytecode");
    let dis = crate::disassemble(&a);
    assert!(dis.contains("== main (slots: "));
    assert!(dis.ends_with('\n'));
    assert!(a.instruction_count() > 0);
}

/// The cached execution unit is transparent: cache-compiled bytecode
/// behaves exactly like direct compilation, and the compiles counter
/// tracks unique executed bodies (parse-only lookups never compile).
#[test]
fn cache_bytecode_is_transparent_and_counted() {
    let cache = ScriptCache::new();
    let src = "let x = 6; x * 7;";
    // Triage first: parse-only, no compile.
    cache.get_or_parse(src).unwrap();
    assert_eq!(cache.stats().parses, 1);
    assert_eq!(cache.stats().compiles, 0, "triage must not compile");
    // Execution path compiles once, then hits.
    let exec1 = cache.get_or_compile(src).unwrap();
    let exec2 = cache.get_or_compile(src).unwrap();
    assert!(std::sync::Arc::ptr_eq(&exec1.bytecode, &exec2.bytecode));
    assert!(std::sync::Arc::ptr_eq(&exec1.program, &exec2.program));
    let stats = cache.stats();
    assert_eq!(stats.parses, 1, "execution reuses the triage parse");
    assert_eq!(stats.compiles, 1);
    assert_eq!(stats.hits, 2);
    let direct = crate::compile::compile(&crate::parser::parse(src).unwrap());
    assert_eq!(*exec1.bytecode, direct);
    let mut host = NullHost;
    let out = crate::run_compiled_with_budget(&exec1.bytecode, &mut host, 1000);
    assert_eq!(out.result.unwrap().as_num(), Some(42.0));
}
