//! Shared compiled-script cache.
//!
//! A crawl visits tens of thousands of pages that overwhelmingly serve the
//! *same* handful of vendor fingerprinting scripts (the paper attributes
//! most canvases to ~13 vendors, §4.3). Re-lexing and re-parsing an
//! identical body on every visit is pure waste: a [`ScriptCache`] keys
//! compiled [`Program`]s by a 64-bit content hash of the source text and
//! shares them across crawl workers behind an `Arc`, so each unique script
//! body is lexed and parsed **exactly once per crawl**.
//!
//! Design points:
//!
//! * **Lock-sharded** — the map is split across [`SHARDS`] independent
//!   mutexes selected by the content hash, so workers compiling different
//!   scripts never contend on one lock.
//! * **Parse-under-lock** — a miss parses while holding its shard lock.
//!   This serializes compilation of *the same* script (another worker
//!   asking for the same body blocks and then hits), which is what makes
//!   the "exactly once" guarantee hold and keeps the cache's parse count
//!   deterministic across worker counts and schedules.
//! * **Collision-proof** — entries store the full source text and verify
//!   it on lookup; a 64-bit hash collision degrades to a second cache
//!   entry, never to running the wrong program.
//! * **Failures cached too** — a body that fails to parse fails
//!   identically on every site that serves it; the [`ParseError`] is
//!   cached so broken scripts also cost one parse attempt per crawl.
//! * **Bytecode rides along** — execution paths ask for
//!   [`ScriptCache::get_or_compile`], which lazily lowers the parsed
//!   program to VM bytecode (once per body, under the same shard lock)
//!   and returns both halves as an [`ExecutableScript`]. Parse-only
//!   consumers (static analysis triage, the serve daemon's prewarm) keep
//!   using [`ScriptCache::get_or_parse`] and never pay for compilation;
//!   the separate `compiles` counter in [`ScriptCacheStats`] keeps the
//!   two workloads distinguishable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::ast::Program;
use crate::bytecode::CompiledProgram;
use crate::parser::{parse, ParseError};

/// Number of independently locked shards. A small power of two is plenty:
/// the hot set is a dozen vendor scripts, and the goal is only to keep
/// unrelated compilations from serializing.
const SHARDS: usize = 16;

/// FNV-1a content hash of a script body (the cache key).
pub fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in src.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One cached compilation: the verified source text plus the outcome.
/// Bytecode is compiled lazily — triage paths ([`crate::parse`]-only
/// consumers like the static analyzer) never pay for it, and execution
/// paths compile it at most once per unique body (compile-under-lock,
/// like parsing).
struct CacheEntry {
    source: String,
    compiled: Result<Arc<Program>, ParseError>,
    bytecode: Option<Arc<CompiledProgram>>,
}

/// A ready-to-execute cached script: the parsed program (the tree-walker
/// oracle input, also shared with static analysis) plus its compiled
/// bytecode (the production VM input).
#[derive(Clone)]
pub struct ExecutableScript {
    /// The parsed AST.
    pub program: Arc<Program>,
    /// The compiled bytecode.
    pub bytecode: Arc<CompiledProgram>,
}

/// Cumulative cache counters. All counts are deterministic for a given
/// workload regardless of worker count or scheduling (see the
/// parse-under-lock note in the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to lex + parse (== unique script bodies seen).
    pub parses: u64,
    /// Bytecode compilations (== unique *executed* bodies that parsed;
    /// attributed separately from parses so parse-only triage work and
    /// execution-path compile amortization stay distinguishable).
    pub compiles: u64,
}

impl ScriptCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.parses
    }

    /// Hit rate in `[0, 1]` (0 when the cache was never used).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A sharded, `Arc`-shareable compile cache. See the module docs.
pub struct ScriptCache {
    shards: Vec<Mutex<HashMap<u64, Vec<CacheEntry>>>>,
    hits: AtomicU64,
    parses: AtomicU64,
    compiles: AtomicU64,
}

impl Default for ScriptCache {
    fn default() -> ScriptCache {
        ScriptCache::new()
    }
}

/// Compiles a program, running the bytecode verifier on the result in
/// debug builds (so every test-suite and CI compile proves the codegen
/// invariants in [`crate::verify`]). Release crawls skip the check;
/// the `lint` bin re-verifies the full corpus explicitly.
fn compile_checked(program: &Program) -> crate::CompiledProgram {
    let bytecode = crate::compile::compile(program);
    #[cfg(debug_assertions)]
    if let Err(e) = crate::verify::verify(&bytecode) {
        panic!("bytecode verifier rejected a compiled chunk: {e}");
    }
    bytecode
}

impl ScriptCache {
    /// Creates an empty cache.
    pub fn new() -> ScriptCache {
        ScriptCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
        }
    }

    /// Returns the compiled program for `src`, lexing and parsing it only
    /// if this exact body has never been seen by this cache. Never
    /// compiles bytecode — this is the triage/analysis path.
    pub fn get_or_parse(&self, src: &str) -> Result<Arc<Program>, ParseError> {
        self.lookup(src, false).outcome
    }

    /// Returns the full execution unit (parsed program + bytecode) for
    /// `src`. Parses and bytecode-compiles each at most once per unique
    /// body, both under the shard lock, so the `parses` and `compiles`
    /// counters stay deterministic across worker counts and schedules.
    pub fn get_or_compile(&self, src: &str) -> Result<ExecutableScript, ParseError> {
        let looked = self.lookup(src, true);
        let program = looked.outcome?;
        match looked.bytecode {
            Some(bytecode) => Ok(ExecutableScript { program, bytecode }),
            // Unreachable: lookup(_, true) compiles whenever the parse
            // succeeded. Compile here rather than panic.
            None => Ok(ExecutableScript {
                bytecode: Arc::new(compile_checked(&program)),
                program,
            }),
        }
    }

    /// [`ScriptCache::get_or_parse`] with trace instrumentation: records a
    /// `script.lookup` instant (the content hash — stable across runs) and
    /// bumps the crawl-wide `script.cache.hit` / `script.cache.parse`
    /// counters on the recorder's registry.
    ///
    /// Note the event stream carries only the *lookup*, never whether it
    /// hit: under concurrent workers, which visit pays the parse is a
    /// scheduling accident, so hit/parse attribution lives in the shared
    /// counters (whose totals stay deterministic — parse-under-lock) and
    /// per-visit streams stay schedule-independent.
    pub fn get_or_parse_traced(
        &self,
        src: &str,
        rec: &canvassing_trace::VisitRecorder,
    ) -> Result<Arc<Program>, ParseError> {
        let looked = self.lookup(src, false);
        self.record_lookup(src, &looked, rec);
        looked.outcome
    }

    /// [`ScriptCache::get_or_compile`] with the same trace discipline as
    /// [`ScriptCache::get_or_parse_traced`], plus a
    /// `script.cache.compile` counter bump when this lookup performed the
    /// body's one bytecode compilation. Like hit/parse, compile
    /// attribution lives only in the shared registry counters (whose
    /// totals are schedule-independent), never in per-visit streams.
    pub fn get_or_compile_traced(
        &self,
        src: &str,
        rec: &canvassing_trace::VisitRecorder,
    ) -> Result<ExecutableScript, ParseError> {
        let looked = self.lookup(src, true);
        self.record_lookup(src, &looked, rec);
        let program = looked.outcome?;
        match looked.bytecode {
            Some(bytecode) => Ok(ExecutableScript { program, bytecode }),
            None => Ok(ExecutableScript {
                bytecode: Arc::new(compile_checked(&program)),
                program,
            }),
        }
    }

    fn record_lookup(&self, src: &str, looked: &Looked, rec: &canvassing_trace::VisitRecorder) {
        if !rec.enabled() {
            return;
        }
        rec.instant("script.lookup", || format!("{:016x}", source_hash(src)));
        rec.bump(if looked.was_parse {
            "script.cache.parse"
        } else {
            "script.cache.hit"
        });
        if looked.was_compile {
            rec.bump("script.cache.compile");
        }
    }

    /// A pure cache probe: the cached outcome for `src` if this exact
    /// body has already been compiled, without parsing on a miss and
    /// without touching the hit/parse counters. Lets degraded serving
    /// tiers (and tests) prove that a path performed no parse work: a
    /// body absent here was never lexed.
    pub fn get_if_cached(&self, src: &str) -> Option<Result<Arc<Program>, ParseError>> {
        let hash = source_hash(src);
        let shard = &self.shards[(hash as usize) % SHARDS];
        let map = shard.lock().unwrap_or_else(|poison| poison.into_inner());
        map.get(&hash)
            .and_then(|bucket| bucket.iter().find(|e| e.source == src))
            .map(|e| e.compiled.clone())
    }

    /// The shared lookup path. With `want_bytecode`, ensures the entry
    /// carries compiled bytecode (compiling it now, under the shard lock,
    /// if this is the body's first execution-path lookup).
    fn lookup(&self, src: &str, want_bytecode: bool) -> Looked {
        let hash = source_hash(src);
        let shard = &self.shards[(hash as usize) % SHARDS];
        let mut map = shard.lock().unwrap_or_else(|poison| poison.into_inner());
        let bucket = map.entry(hash).or_default();
        let (entry, was_parse) = match bucket.iter().position(|e| e.source == src) {
            Some(i) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (&mut bucket[i], false)
            }
            None => {
                // Miss: compile while holding the shard lock so
                // concurrent requests for the same body block instead of
                // re-parsing.
                self.parses.fetch_add(1, Ordering::Relaxed);
                let compiled = parse(src).map(Arc::new);
                bucket.push(CacheEntry {
                    source: src.to_string(),
                    compiled,
                    bytecode: None,
                });
                let at = bucket.len() - 1;
                (&mut bucket[at], true)
            }
        };
        let mut was_compile = false;
        if want_bytecode && entry.bytecode.is_none() {
            if let Ok(program) = &entry.compiled {
                // Still under the shard lock: the same once-per-body
                // guarantee (and determinism) as parsing.
                self.compiles.fetch_add(1, Ordering::Relaxed);
                was_compile = true;
                entry.bytecode = Some(Arc::new(compile_checked(program)));
            }
        }
        Looked {
            outcome: entry.compiled.clone(),
            bytecode: entry.bytecode.clone(),
            was_parse,
            was_compile,
        }
    }

    /// Number of distinct script bodies currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> ScriptCacheStats {
        ScriptCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            parses: self.parses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
        }
    }
}

/// Result of one [`ScriptCache::lookup`].
struct Looked {
    outcome: Result<Arc<Program>, ParseError>,
    bytecode: Option<Arc<CompiledProgram>>,
    was_parse: bool,
    was_compile: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, NullHost};

    #[test]
    fn identical_bodies_parse_once() {
        let cache = ScriptCache::new();
        let src = "let x = 6; x * 7;";
        let a = cache.get_or_parse(src).unwrap();
        let b = cache.get_or_parse(src).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(cache.len(), 1);
        // The shared program still runs.
        let v = run(&a, &mut NullHost).unwrap();
        assert_eq!(v.as_num(), Some(42.0));
    }

    #[test]
    fn distinct_bodies_get_distinct_entries() {
        let cache = ScriptCache::new();
        cache.get_or_parse("1 + 1;").unwrap();
        cache.get_or_parse("2 + 2;").unwrap();
        assert_eq!(cache.stats().parses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn parse_failures_are_cached_and_stable() {
        let cache = ScriptCache::new();
        let bad = "let = ;";
        let e1 = cache.get_or_parse(bad).unwrap_err();
        let e2 = cache.get_or_parse(bad).unwrap_err();
        assert_eq!(e1, e2);
        let stats = cache.stats();
        assert_eq!(stats.parses, 1, "the broken body parses once");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn concurrent_lookups_of_one_body_still_parse_once() {
        let cache = Arc::new(ScriptCache::new());
        let src = "let a = [1, 2, 3]; a.length;";
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for _ in 0..50 {
                        cache.get_or_parse(src).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.hits, 8 * 50 - 1);
    }

    #[test]
    fn hit_rate_reporting() {
        let cache = ScriptCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.get_or_parse("1;").unwrap();
        cache.get_or_parse("1;").unwrap();
        cache.get_or_parse("1;").unwrap();
        cache.get_or_parse("1;").unwrap();
        assert!((cache.stats().hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn traced_lookup_records_instant_and_counters() {
        use canvassing_trace::{EventKind, MetricsRegistry, VisitRecorder};
        let cache = ScriptCache::new();
        let reg = Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("v", Some(Arc::clone(&reg)));
        let src = "let x = 2; x + 2;";
        let a = cache.get_or_parse_traced(src, &rec).unwrap();
        let b = cache.get_or_parse_traced(src, &rec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["script.cache.parse"], 1);
        assert_eq!(snap.counters["script.cache.hit"], 1);
        let trace = rec.finish().unwrap();
        let lookups: Vec<&String> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, detail, .. } if *name == "script.lookup" => Some(detail),
                _ => None,
            })
            .collect();
        assert_eq!(lookups.len(), 2);
        assert_eq!(lookups[0], lookups[1], "same body, same content hash");
        assert_eq!(*lookups[0], format!("{:016x}", source_hash(src)));

        // A disabled recorder records nothing and still shares the entry.
        let off = VisitRecorder::disabled();
        let c = cache.get_or_parse_traced(src, &off).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    /// Seeded exhaustive form of the `traced_counters_partition_lookups`
    /// property (the offline proptest stub compiles but does not sample,
    /// so this pins the invariant with a deterministic LCG-driven
    /// sequence): hit + parse counters partition traced lookups, parses
    /// equal distinct bodies, and cached programs match direct parses.
    #[test]
    fn counters_partition_lookups_seeded() {
        use canvassing_trace::{MetricsRegistry, VisitRecorder};
        let bodies: Vec<String> = (0..6).map(|i| format!("{i} + {i};")).collect();
        let mut lcg: u64 = 0x2545f4914f6cdd1d;
        for round in 0..4 {
            let cache = ScriptCache::new();
            let reg = Arc::new(MetricsRegistry::new());
            let rec = VisitRecorder::new("seeded", Some(Arc::clone(&reg)));
            let mut distinct = std::collections::BTreeSet::new();
            let lookups = 16 + round * 8;
            for _ in 0..lookups {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (lcg >> 33) as usize % bodies.len();
                let cached = cache.get_or_parse_traced(&bodies[pick], &rec).unwrap();
                let direct = parse(&bodies[pick]).unwrap();
                assert_eq!(*cached, direct, "cache must be transparent");
                distinct.insert(pick);
            }
            let snap = reg.snapshot();
            let hits = snap.counters.get("script.cache.hit").copied().unwrap_or(0);
            let parses = snap
                .counters
                .get("script.cache.parse")
                .copied()
                .unwrap_or(0);
            assert_eq!(hits + parses, lookups as u64);
            assert_eq!(parses, distinct.len() as u64);
            assert_eq!(cache.stats().lookups(), lookups as u64);
        }
    }

    #[test]
    fn get_if_cached_is_a_pure_probe() {
        let cache = ScriptCache::new();
        let src = "let probe = 1;";
        assert!(cache.get_if_cached(src).is_none(), "miss before any parse");
        assert_eq!(
            cache.stats().lookups(),
            0,
            "a probe miss is not a counted lookup and performs no parse"
        );
        let parsed = cache.get_or_parse(src).unwrap();
        let probed = cache
            .get_if_cached(src)
            .and_then(Result::ok)
            .unwrap_or_else(|| unreachable!("just parsed"));
        assert!(Arc::ptr_eq(&parsed, &probed));
        assert_eq!(cache.stats().parses, 1);
        assert_eq!(cache.stats().hits, 0, "probes never count as hits");
        // Failures probe too.
        let bad = "let = ;";
        cache.get_or_parse(bad).unwrap_err();
        assert!(matches!(cache.get_if_cached(bad), Some(Err(_))));
    }

    #[test]
    fn source_hash_is_fnv1a() {
        // Spot-check against the FNV-1a reference value for "a".
        assert_eq!(source_hash(""), 0xcbf29ce484222325);
        assert_ne!(source_hash("a"), source_hash("b"));
    }
}
