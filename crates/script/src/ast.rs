//! Abstract syntax tree for canvascript.

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`.
    Neg,
    /// `!`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Ident(String),
    /// Array literal.
    Array(Vec<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Property read: `obj.name`.
    Member {
        /// Receiver.
        object: Box<Expr>,
        /// Property name.
        name: String,
    },
    /// Index read: `arr[i]`.
    Index {
        /// Receiver.
        object: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Free function call: `f(a, b)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call: `obj.m(a, b)`.
    MethodCall {
        /// Receiver.
        object: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Assignment to a variable, property, or index slot. Evaluates to the
    /// assigned value.
    Assign {
        /// Assignment target.
        target: Box<AssignTarget>,
        /// Value expression.
        value: Box<Expr>,
    },
}

/// Valid assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    /// `x = ...`.
    Ident(String),
    /// `obj.prop = ...`.
    Member {
        /// Receiver.
        object: Expr,
        /// Property name.
        name: String,
    },
    /// `arr[i] = ...`.
    Index {
        /// Receiver.
        object: Expr,
        /// Index expression.
        index: Expr,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = expr;`.
    Let {
        /// Variable name.
        name: String,
        /// Initializer (`null` if omitted).
        value: Expr,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Optional else branch.
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }`.
    For {
        /// Initializer statement (Let or Expr).
        init: Option<Box<Stmt>>,
        /// Condition (true if omitted).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// Function declaration.
    FnDecl(FnDecl),
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements (function declarations are hoisted by the
    /// interpreter before execution).
    pub stmts: Vec<Stmt>,
}
