//! The page-visit pipeline: fetch → consent → scripts → user simulation.

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use canvassing_dom::{ApiCall, Document, Extraction};
use canvassing_net::{FetchError, Network, Resource, ScriptRef, Url};
use canvassing_raster::DeviceProfile;
use canvassing_script::{ExecEngine, DEFAULT_STEP_BUDGET};
use canvassing_trace::VisitRecorder;
use serde::{Deserialize, Serialize};

use crate::defenses::DefenseMode;
use crate::extension::Extension;
use crate::memo::{eval_cached, CrawlCaches};

/// Why a whole page visit failed (maps to the paper's "crawled
/// unsuccessfully" sites).
#[derive(Debug, Clone, PartialEq)]
pub enum VisitError {
    /// Network-level failure fetching the top-level document.
    Fetch(FetchError),
    /// The URL resolved to something that is not a page.
    NotAPage(Url),
    /// The site's bot gate rejected the client.
    BotBlocked(Url),
    /// The visit blew its wall-clock deadline (simulated time: response
    /// latencies plus script execution charged at a fixed step rate).
    DeadlineExceeded(Url),
    /// The visit's total script-step fuel allowance ran out.
    FuelExhausted(Url),
    /// The crawler's per-host circuit breaker was open for this page's
    /// host: the visit was short-circuited without touching the network.
    CircuitOpen(Url),
}

impl std::fmt::Display for VisitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisitError::Fetch(e) => write!(f, "fetch failed: {e}"),
            VisitError::NotAPage(u) => write!(f, "not a page: {u}"),
            VisitError::BotBlocked(u) => write!(f, "bot gate rejected crawler at {u}"),
            VisitError::DeadlineExceeded(u) => write!(f, "visit deadline exceeded at {u}"),
            VisitError::FuelExhausted(u) => write!(f, "script fuel exhausted at {u}"),
            VisitError::CircuitOpen(u) => write!(f, "circuit open for host of {u}"),
        }
    }
}

impl std::error::Error for VisitError {}

/// A failed visit together with whatever evidence was gathered before it
/// died. The error says *why* the site dropped out; `partial` is the
/// salvage — everything the pipeline had already fetched, triaged, and
/// recorded (a pure function of `(network, url, config)`, so salvage is as
/// deterministic as success).
///
/// `partial` is `None` only when the failure preceded any page contact
/// (DNS/connect errors, a short-circuited visit): there is genuinely
/// nothing to keep. A visit that died *after* the page arrived — bot wall,
/// truncated body, blown deadline, exhausted fuel — keeps the page-level
/// facts and any scripts already processed, including their static triage
/// verdicts, which is what lets the study fall back to the static
/// classifier for these sites instead of discarding them.
#[derive(Debug)]
pub struct VisitAbort {
    /// Why the visit failed.
    pub error: VisitError,
    /// Evidence gathered before the failure, if the page was reached.
    pub partial: Option<Box<PageVisit>>,
}

impl VisitAbort {
    /// A failure with nothing salvageable.
    fn lost(error: VisitError) -> VisitAbort {
        VisitAbort {
            error,
            partial: None,
        }
    }
}

/// Interpreter steps charged as one millisecond of simulated wall-clock
/// time when enforcing the visit deadline.
const STEPS_PER_MS: u64 = 1_000;

/// Per-visit resource limits. Both knobs bound *simulated* quantities —
/// response latency and interpreter steps — so enforcement is exactly
/// reproducible across runs and worker counts (no real clocks involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitPolicy {
    /// Simulated wall-clock deadline for the whole visit, in milliseconds.
    /// Response latencies count directly; script execution is charged at
    /// [`STEPS_PER_MS`] steps per millisecond. `None` disables the check.
    pub deadline_ms: Option<u64>,
    /// Total interpreter-step fuel for all scripts on the page. `None`
    /// leaves each script bounded only by the interpreter's own
    /// [`DEFAULT_STEP_BUDGET`].
    pub fuel: Option<u64>,
}

impl Default for VisitPolicy {
    /// 30-second deadline (a typical page-load timeout), unlimited fuel.
    fn default() -> VisitPolicy {
        VisitPolicy {
            deadline_ms: Some(30_000),
            fuel: None,
        }
    }
}

impl VisitPolicy {
    /// No deadline, no fuel cap (scripts still hit the interpreter's own
    /// step budget).
    pub fn unlimited() -> VisitPolicy {
        VisitPolicy {
            deadline_ms: None,
            fuel: None,
        }
    }
}

/// A script request the extension blocked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockedScript {
    /// The URL the page referenced.
    pub url: Url,
    /// The filter rule that fired.
    pub rule: String,
}

/// A script that executed during the visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadedScript {
    /// The URL the instrumentation attributes calls to (page URL for
    /// inline/bundled code).
    pub url: Url,
    /// Whether the code was inline in the page (first-party bundle).
    pub inline: bool,
    /// Canonical host after DNS resolution (differs from `url.host`
    /// under CNAME cloaking); the page URL's host for inline code.
    pub canonical_host: String,
    /// Whether DNS revealed a cross-site CNAME (cloaking).
    pub cname_cloaked: bool,
    /// FNV-1a content hash of the script body (0 when the body was never
    /// obtained, i.e. the fetch failed). The key the static triage and
    /// compile caches share.
    pub source_hash: u64,
    /// Static pre-execution triage verdict; `None` when the body was
    /// never obtained.
    pub verdict: Option<canvassing_analysis::Verdict>,
    /// Runtime error message if the script crashed (execution continues
    /// with the next script, as in a real browser).
    pub error: Option<String>,
}

/// Everything recorded about one page visit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageVisit {
    /// The visited page.
    pub page: Url,
    /// Instrumented Canvas API activity.
    pub api_calls: Vec<ApiCall>,
    /// Canvas extractions (`toDataURL` results).
    pub extractions: Vec<Extraction>,
    /// Scripts that ran.
    pub scripts: Vec<LoadedScript>,
    /// Scripts the extension blocked.
    pub blocked: Vec<BlockedScript>,
    /// Whether a consent banner was shown (and auto-accepted).
    pub consent_banner: bool,
}

/// A headless browser: device profile + optional extension + defense.
pub struct Browser {
    /// Rendering device.
    pub device: DeviceProfile,
    /// Installed ad blocker, if any.
    pub extension: Option<Extension>,
    /// Canvas read-back defense.
    pub defense: DefenseMode,
    /// Auto-accept consent banners (the crawler's autoconsent library).
    pub autoconsent: bool,
    /// Whether this client passes site bot gates (the paper's crawler
    /// "handles common anti-bot detection mechanisms"). Disable to inject
    /// bot-wall faults.
    pub passes_bot_checks: bool,
    /// Per-visit deadline / fuel limits.
    pub policy: VisitPolicy,
    /// Shared crawl caches (compiled scripts, render memo, buffer pool).
    /// Default-empty: an unconfigured browser caches nothing.
    pub caches: CrawlCaches,
    /// Script execution engine (bytecode VM by default; the tree-walker
    /// remains selectable as the differential oracle — both produce
    /// byte-identical visits and step counts).
    pub engine: ExecEngine,
}

impl Browser {
    /// A default browser on the given device: no extension, no defense.
    pub fn new(device: DeviceProfile) -> Browser {
        Browser {
            device,
            extension: None,
            defense: DefenseMode::None,
            autoconsent: true,
            passes_bot_checks: true,
            policy: VisitPolicy::default(),
            caches: CrawlCaches::default(),
            engine: ExecEngine::default(),
        }
    }

    /// Executes one script against the document, going through the shared
    /// caches when configured. Returns `(steps, error)` exactly as direct
    /// `eval_with_budget` would.
    ///
    /// The render memo is consulted only with no defense active (defended
    /// renders depend on page host and extraction counters, and the §5.3
    /// double-render check must genuinely execute both renders) and only
    /// replayed when the canonical run fits `budget` — every other case
    /// executes in place with identical semantics to the uncached path.
    fn execute_script(
        &self,
        doc: &mut Document,
        source: &str,
        attributed_url: &str,
        budget: u64,
        rec: &VisitRecorder,
    ) -> (u64, Option<String>) {
        if self.defense == DefenseMode::None {
            if let Some(memo) = &self.caches.memo {
                if let Some(entry) = memo.lookup(
                    source,
                    &self.device,
                    budget,
                    self.caches.scripts.as_deref(),
                    self.engine,
                    &self.caches.perf,
                ) {
                    doc.absorb_render(
                        &entry.calls,
                        &entry.extractions,
                        entry.canvases_created,
                        attributed_url,
                    );
                    // "replay" here means the visit was satisfied from the
                    // canonical render — true for every no-defense visit
                    // whether *this* lookup computed it or hit it (the
                    // memo computes under its lock on first sight), so
                    // the event is schedule-independent.
                    rec.instant("render.replay", || entry.steps.to_string());
                    rec.bump("render.replays");
                    return (entry.steps, entry.error.clone());
                }
            }
        }
        self.caches
            .perf
            .script_executions
            .fetch_add(1, Ordering::Relaxed);
        doc.set_current_script(attributed_url);
        let outcome = eval_cached(
            source,
            doc,
            budget,
            self.caches.scripts.as_deref(),
            self.engine,
        );
        rec.instant("script.exec", || outcome.steps.to_string());
        rec.bump("script.execs");
        rec.observe("script.steps", outcome.steps);
        (outcome.steps, outcome.result.err().map(|e| e.message))
    }

    /// Visits a page and records all canvas activity. Equivalent to
    /// [`Browser::visit_attempt`] with `attempt = 0`.
    pub fn visit(&self, network: &Network, page_url: &Url) -> Result<PageVisit, VisitError> {
        self.visit_attempt(network, page_url, 0)
    }

    /// Visits a page on a given (zero-based) retry attempt. The attempt
    /// number reaches every fetch of the visit so attempt-counted
    /// transient faults clear consistently for the page and its scripts.
    pub fn visit_attempt(
        &self,
        network: &Network,
        page_url: &Url,
        attempt: u32,
    ) -> Result<PageVisit, VisitError> {
        self.visit_traced(network, page_url, attempt, &VisitRecorder::disabled())
    }

    /// [`Browser::visit_attempt`] with trace instrumentation: the whole
    /// fetch → triage → execute → extract pipeline records spans and
    /// events on `rec` (a no-op when the recorder is disabled — this *is*
    /// the untraced path, one predictable branch per record site).
    ///
    /// Every event recorded here is a pure function of
    /// `(network, page_url, config)`: cache hit/miss and memo
    /// compute/replay attribution — the schedule-dependent facts — go to
    /// the recorder's crawl-wide metrics registry, never into the event
    /// stream, so two crawls of the same workload produce identical
    /// per-visit streams whatever the worker count or cache temperature.
    pub fn visit_traced(
        &self,
        network: &Network,
        page_url: &Url,
        attempt: u32,
        rec: &VisitRecorder,
    ) -> Result<PageVisit, VisitError> {
        self.visit_supervised(network, page_url, attempt, rec, &BTreeSet::new())
            .map_err(|abort| abort.error)
    }

    /// The supervised pipeline behind [`Browser::visit_traced`]: the same
    /// fetch → triage → execute → extract stages, but failures return a
    /// [`VisitAbort`] carrying the partial evidence instead of discarding
    /// it, and `open_hosts` — the hosts whose circuit breaker is open at
    /// this visit's frontier slot — short-circuit without a fetch:
    ///
    /// - the *page* host open ⇒ the whole visit aborts with
    ///   [`VisitError::CircuitOpen`] before touching the network;
    /// - a *script* host open ⇒ a `breaker.short_circuit` instant and a
    ///   [`LoadedScript`] with a `"circuit open"` error, like any other
    ///   broken script reference (pages survive it).
    ///
    /// `open_hosts` must be derived from the frontier (the crawler's
    /// breaker plan), never from runtime fetch order, so everything
    /// recorded here stays a pure function of
    /// `(network, page_url, config)`.
    pub fn visit_supervised(
        &self,
        network: &Network,
        page_url: &Url,
        attempt: u32,
        rec: &VisitRecorder,
        open_hosts: &BTreeSet<String>,
    ) -> Result<PageVisit, VisitAbort> {
        let deadline = self.policy.deadline_ms;
        let mut elapsed_ms: u64 = 0;
        let mut fuel_used: u64 = 0;

        if open_hosts.contains(&page_url.host) {
            rec.instant("breaker.short_circuit", || page_url.to_string());
            return Err(VisitAbort::lost(VisitError::CircuitOpen(page_url.clone())));
        }

        // An empty shell for failure paths that reached the page but died
        // before (or at) script processing: page-level salvage with no
        // script evidence.
        let shell = |consent_banner: bool| PageVisit {
            page: page_url.clone(),
            api_calls: Vec::new(),
            extractions: Vec::new(),
            scripts: Vec::new(),
            blocked: Vec::new(),
            consent_banner,
        };

        let response = match network.fetch_traced(page_url, attempt, rec) {
            Ok(r) => r,
            Err(err) => {
                // A truncated body means the server was reached and part
                // of the page arrived — that fact survives as an empty
                // page-level salvage. Everything else failed before any
                // content existed.
                let partial =
                    matches!(err, FetchError::Truncated(_)).then(|| Box::new(shell(false)));
                return Err(VisitAbort {
                    error: VisitError::Fetch(err),
                    partial,
                });
            }
        };
        let page = match response.resource {
            Resource::Page(p) => p,
            Resource::Script(_) => {
                return Err(VisitAbort::lost(VisitError::NotAPage(page_url.clone())))
            }
        };
        if page.bot_check && !self.passes_bot_checks {
            // The wall was served after a successful fetch: keep that.
            return Err(VisitAbort {
                error: VisitError::BotBlocked(page_url.clone()),
                partial: Some(Box::new(shell(page.consent_banner))),
            });
        }
        elapsed_ms += response.latency_ms;
        if deadline.is_some_and(|d| elapsed_ms > d) {
            return Err(VisitAbort {
                error: VisitError::DeadlineExceeded(page_url.clone()),
                partial: Some(Box::new(shell(page.consent_banner))),
            });
        }

        let mut doc = match &self.caches.pool {
            Some(pool) => Document::with_pool(self.device.clone(), Arc::clone(pool)),
            None => Document::new(self.device.clone()),
        };
        // Randomization defenses key their noise per browsing session and
        // origin (a fresh headless visit = a fresh session), so the
        // configured seed is mixed with the page host: the same defended
        // browser produces different noise on different sites — which is
        // what breaks cross-site canvas clustering.
        let mut defense = self.defense;
        match &mut defense {
            DefenseMode::RandomizePerRender { seed }
            | DefenseMode::RandomizePerSession { seed } => {
                let mut h: u64 = 0xcbf29ce484222325;
                for b in page_url.host.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                *seed ^= h;
            }
            DefenseMode::None | DefenseMode::Block => {}
        }
        doc.set_defense(defense.build());
        doc.advance_clock(response.latency_ms);
        rec.instant("defense", || self.defense.name().to_string());

        let mut visit = PageVisit {
            page: page_url.clone(),
            api_calls: Vec::new(),
            extractions: Vec::new(),
            scripts: Vec::new(),
            blocked: Vec::new(),
            consent_banner: page.consent_banner,
        };

        // Consent banner: autoconsent opts in (small interaction delay);
        // without it, consent-gated scripts do not run.
        if page.consent_banner {
            if self.autoconsent {
                rec.instant("consent.accepted", String::new);
                doc.advance_clock(350);
                elapsed_ms += 350;
            } else {
                rec.instant("consent.declined", String::new);
                trace_stage_tail(rec, false, &visit);
                return Ok(visit);
            }
        }

        let mut executed_any = false;
        for script_ref in &page.scripts {
            // Each script runs under whichever is tighter: the
            // interpreter's own budget or the visit's remaining fuel. A
            // budget trip at the fuel-reduced limit is a visit failure;
            // at the interpreter's own limit it is that script's crash.
            let budget = match self.policy.fuel {
                Some(f) => f.saturating_sub(fuel_used).min(DEFAULT_STEP_BUDGET),
                None => DEFAULT_STEP_BUDGET,
            };
            match script_ref {
                ScriptRef::Inline { source, .. } => {
                    // Static triage runs before execution, once per
                    // unique body crawl-wide (the analysis cache).
                    let (source_hash, analysis) = self.caches.analysis.analyze_traced(
                        source,
                        self.caches.scripts.as_deref(),
                        rec,
                    );
                    let exec_span = rec.span("execute");
                    let (steps, error) =
                        self.execute_script(&mut doc, source, &page_url.to_string(), budget, rec);
                    exec_span.end(steps / STEPS_PER_MS);
                    executed_any = true;
                    fuel_used += steps;
                    elapsed_ms += steps / STEPS_PER_MS;
                    if let Some(msg) = &error {
                        if budget < DEFAULT_STEP_BUDGET && msg.contains("step budget") {
                            return Err(salvaged(
                                visit,
                                doc,
                                VisitError::FuelExhausted(page_url.clone()),
                            ));
                        }
                    }
                    visit.scripts.push(LoadedScript {
                        url: page_url.clone(),
                        inline: true,
                        canonical_host: page_url.host.clone(),
                        cname_cloaked: false,
                        source_hash,
                        verdict: Some(analysis.verdict),
                        error,
                    });
                }
                ScriptRef::External(url) => {
                    if let Some(ext) = &self.extension {
                        if let Some(decision) = ext.check_script(page_url, url, &network.dns) {
                            rec.instant("adblock.blocked", || decision.rule.clone());
                            rec.bump("adblock.blocks");
                            visit.blocked.push(BlockedScript {
                                url: url.clone(),
                                rule: decision.rule,
                            });
                            continue;
                        }
                    }
                    if open_hosts.contains(&url.host) {
                        // Breaker open for the script host: skip the fetch
                        // entirely. Like a broken reference, the page
                        // survives; unlike one, no network attempt is made.
                        rec.instant("breaker.short_circuit", || url.to_string());
                        visit.scripts.push(LoadedScript {
                            url: url.clone(),
                            inline: false,
                            canonical_host: url.host.clone(),
                            cname_cloaked: false,
                            source_hash: 0,
                            verdict: None,
                            error: Some("circuit open".into()),
                        });
                        continue;
                    }
                    match network.fetch_traced(url, attempt, rec) {
                        Ok(resp) => {
                            let source = match resp.resource {
                                Resource::Script(s) => s.source,
                                Resource::Page(_) => continue,
                            };
                            doc.advance_clock(resp.latency_ms);
                            elapsed_ms += resp.latency_ms;
                            if deadline.is_some_and(|d| elapsed_ms > d) {
                                return Err(salvaged(
                                    visit,
                                    doc,
                                    VisitError::DeadlineExceeded(page_url.clone()),
                                ));
                            }
                            let (source_hash, analysis) = self.caches.analysis.analyze_traced(
                                &source,
                                self.caches.scripts.as_deref(),
                                rec,
                            );
                            let exec_span = rec.span("execute");
                            let (steps, error) = self.execute_script(
                                &mut doc,
                                &source,
                                &url.to_string(),
                                budget,
                                rec,
                            );
                            exec_span.end(steps / STEPS_PER_MS);
                            executed_any = true;
                            fuel_used += steps;
                            elapsed_ms += steps / STEPS_PER_MS;
                            if let Some(msg) = &error {
                                if budget < DEFAULT_STEP_BUDGET && msg.contains("step budget") {
                                    return Err(salvaged(
                                        visit,
                                        doc,
                                        VisitError::FuelExhausted(page_url.clone()),
                                    ));
                                }
                            }
                            visit.scripts.push(LoadedScript {
                                url: url.clone(),
                                inline: false,
                                canonical_host: resp.resolution.canonical.clone(),
                                cname_cloaked: resp.resolution.is_cloaked(),
                                source_hash,
                                verdict: Some(analysis.verdict),
                                error,
                            });
                        }
                        Err(_) => {
                            // Broken script reference: pages survive it.
                            // No body was obtained, so there is nothing
                            // to hash or triage.
                            rec.instant("script.unavailable", || url.to_string());
                            visit.scripts.push(LoadedScript {
                                url: url.clone(),
                                inline: false,
                                canonical_host: url.host.clone(),
                                cname_cloaked: false,
                                source_hash: 0,
                                verdict: None,
                                error: Some("fetch failed".into()),
                            });
                        }
                    }
                }
            }
            if deadline.is_some_and(|d| elapsed_ms > d) {
                return Err(salvaged(
                    visit,
                    doc,
                    VisitError::DeadlineExceeded(page_url.clone()),
                ));
            }
        }

        // Simulated user behavior: scroll down and up, then wait five
        // seconds (§3.1) — matters only for timestamps here.
        doc.advance_clock(5_000);

        let (calls, extractions) = doc.into_records();
        visit.api_calls = calls;
        visit.extractions = extractions;
        trace_stage_tail(rec, executed_any, &visit);
        Ok(visit)
    }
}

/// Finalizes a mid-pipeline death into a [`VisitAbort`] that keeps the
/// evidence: the document's canvas activity recorded so far is harvested
/// into the partial visit, exactly as the success path would have done.
fn salvaged(mut visit: PageVisit, doc: Document, error: VisitError) -> VisitAbort {
    let (calls, extractions) = doc.into_records();
    visit.api_calls = calls;
    visit.extractions = extractions;
    VisitAbort {
        error,
        partial: Some(Box::new(visit)),
    }
}

/// Closes out a successful visit's trace: marker spans for stages no
/// script reached (so every completed visit's span tree covers the full
/// `parse`/`triage`/`execute` vocabulary — script-less pages included)
/// plus the `extract` span summarizing what the visit recorded.
fn trace_stage_tail(rec: &VisitRecorder, executed_any: bool, visit: &PageVisit) {
    if !rec.enabled() {
        return;
    }
    if !executed_any {
        let triage = rec.span("triage");
        rec.span("parse").end(0);
        triage.end(0);
        rec.span("execute").end(0);
    }
    let extract = rec.span("extract");
    rec.instant("records", || {
        format!(
            "{} api-calls, {} extractions, {} scripts, {} blocked",
            visit.api_calls.len(),
            visit.extractions.len(),
            visit.scripts.len(),
            visit.blocked.len()
        )
    });
    extract.end(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::AdBlockerKind;
    use canvassing_net::{PageResource, Resource, ScriptResource};

    fn simple_network() -> Network {
        let mut network = Network::new();
        let script = r##"
            let c = document.createElement("canvas");
            c.width = 50; c.height = 20;
            let x = c.getContext("2d");
            x.fillStyle = "#069";
            x.fillText("probe", 2, 12);
            c.toDataURL();
        "##;
        network.host(
            &Url::https("fp.example.net", "/fp.js"),
            Resource::Script(ScriptResource {
                source: script.to_string(),
                label: "test".into(),
            }),
        );
        network.host(
            &Url::https("site.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(Url::https("fp.example.net", "/fp.js"))],
                consent_banner: false,
                bot_check: false,
            }),
        );
        network
    }

    fn intel_browser() -> Browser {
        Browser::new(DeviceProfile::intel_ubuntu())
    }

    #[test]
    fn visit_records_extraction_with_script_url() {
        let network = simple_network();
        let visit = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        assert_eq!(visit.extractions.len(), 1);
        assert_eq!(
            visit.extractions[0].script_url,
            "https://fp.example.net/fp.js"
        );
        assert!(!visit.api_calls.is_empty());
        assert!(visit.blocked.is_empty());
    }

    #[test]
    fn extension_blocks_matching_script() {
        let network = simple_network();
        let mut browser = intel_browser();
        browser.extension = Some(Extension::new(
            AdBlockerKind::AdblockPlus,
            "||fp.example.net^$script\n",
        ));
        let visit = browser
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        assert!(visit.extractions.is_empty());
        assert_eq!(visit.blocked.len(), 1);
    }

    #[test]
    fn down_site_is_visit_error() {
        let mut network = simple_network();
        network.faults.take_down("site.com");
        let err = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap_err();
        assert!(matches!(err, VisitError::Fetch(_)));
    }

    #[test]
    fn bot_gate_rejects_non_stealth_client() {
        let mut network = Network::new();
        network.host(
            &Url::https("guarded.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![],
                consent_banner: false,
                bot_check: true,
            }),
        );
        let mut browser = intel_browser();
        browser.passes_bot_checks = false;
        let err = browser
            .visit(&network, &Url::https("guarded.com", "/"))
            .unwrap_err();
        assert!(matches!(err, VisitError::BotBlocked(_)));
        // The default crawler passes.
        assert!(intel_browser()
            .visit(&network, &Url::https("guarded.com", "/"))
            .is_ok());
    }

    #[test]
    fn consent_banner_without_autoconsent_runs_nothing() {
        let mut network = simple_network();
        network.host(
            &Url::https("consent.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(Url::https("fp.example.net", "/fp.js"))],
                consent_banner: true,
                bot_check: false,
            }),
        );
        let mut browser = intel_browser();
        browser.autoconsent = false;
        let visit = browser
            .visit(&network, &Url::https("consent.com", "/"))
            .unwrap();
        assert!(visit.extractions.is_empty());
        browser.autoconsent = true;
        let visit = browser
            .visit(&network, &Url::https("consent.com", "/"))
            .unwrap();
        assert_eq!(visit.extractions.len(), 1);
    }

    #[test]
    fn latency_spike_past_deadline_fails_the_visit() {
        use canvassing_net::Fault;
        let mut network = simple_network();
        network
            .faults
            .inject("site.com", Fault::LatencySpike { extra_ms: 60_000 });
        let err = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap_err();
        assert!(matches!(err, VisitError::DeadlineExceeded(_)));
        // Lifting the deadline lets the slow visit complete.
        let mut patient = intel_browser();
        patient.policy = VisitPolicy::unlimited();
        assert!(patient
            .visit(&network, &Url::https("site.com", "/"))
            .is_ok());
    }

    #[test]
    fn spiked_script_host_blows_the_deadline_too() {
        use canvassing_net::Fault;
        let mut network = simple_network();
        network
            .faults
            .inject("fp.example.net", Fault::LatencySpike { extra_ms: 60_000 });
        let err = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap_err();
        assert!(matches!(err, VisitError::DeadlineExceeded(_)));
    }

    #[test]
    fn fuel_exhaustion_fails_the_visit() {
        let network = simple_network();
        let mut browser = intel_browser();
        browser.policy.fuel = Some(10);
        let err = browser
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap_err();
        assert!(matches!(err, VisitError::FuelExhausted(_)));
        // Generous fuel changes nothing about the recorded visit.
        browser.policy.fuel = Some(1_000_000);
        let visit = browser
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        assert_eq!(visit.extractions.len(), 1);
    }

    #[test]
    fn truncated_script_records_a_parse_error() {
        use canvassing_net::Fault;
        let mut network = simple_network();
        network.faults.inject("fp.example.net", Fault::TruncateBody);
        let visit = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        // The cut may or may not land on a statement boundary; either way
        // the trailing toDataURL call is gone, so no extraction happens.
        assert_eq!(visit.scripts.len(), 1);
        assert!(visit.extractions.is_empty());
    }

    #[test]
    fn transient_page_fault_clears_on_later_attempt() {
        use canvassing_net::Fault;
        let mut network = simple_network();
        network
            .faults
            .inject("site.com", Fault::TransientConnect { failures: 2 });
        let browser = intel_browser();
        let page = Url::https("site.com", "/");
        let err = browser.visit_attempt(&network, &page, 0).unwrap_err();
        assert!(matches!(err, VisitError::Fetch(FetchError::Transient(_))));
        assert!(browser.visit_attempt(&network, &page, 1).is_err());
        let visit = browser.visit_attempt(&network, &page, 2).unwrap();
        assert_eq!(visit.extractions.len(), 1);
    }

    #[test]
    fn broken_script_reference_does_not_fail_visit() {
        let mut network = Network::new();
        network.host(
            &Url::https("site.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(Url::https("gone.example", "/x.js"))],
                consent_banner: false,
                bot_check: false,
            }),
        );
        let visit = intel_browser()
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        assert_eq!(visit.scripts.len(), 1);
        assert!(visit.scripts[0].error.is_some());
    }

    #[test]
    fn block_defense_yields_constant_extraction() {
        let network = simple_network();
        let mut browser = intel_browser();
        browser.defense = DefenseMode::Block;
        let visit = browser
            .visit(&network, &Url::https("site.com", "/"))
            .unwrap();
        assert_eq!(
            visit.extractions[0].data_url,
            canvassing_dom::BLOCKED_DATA_URL
        );
    }

    #[test]
    fn cached_visit_is_byte_identical_to_uncached() {
        let network = simple_network();
        let page = Url::https("site.com", "/");
        let plain = intel_browser().visit(&network, &page).unwrap();
        let mut cached = intel_browser();
        cached.caches = CrawlCaches::enabled();
        let cold = cached.visit(&network, &page).unwrap();
        let warm = cached.visit(&network, &page).unwrap();
        assert_eq!(format!("{plain:?}"), format!("{cold:?}"));
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
        let snap = cached.caches.perf.snapshot();
        assert_eq!(snap.memo_computes, 1);
        assert!(snap.memo_hits >= 1, "warm visit must replay: {snap:?}");
    }

    #[test]
    fn defense_disables_memo_replay() {
        let network = simple_network();
        let page = Url::https("site.com", "/");
        let mut browser = intel_browser();
        browser.caches = CrawlCaches::enabled();
        browser.defense = DefenseMode::RandomizePerSession { seed: 9 };
        browser.visit(&network, &page).unwrap();
        browser.visit(&network, &page).unwrap();
        let snap = browser.caches.perf.snapshot();
        assert_eq!(snap.memo_computes + snap.memo_hits, 0);
        assert_eq!(snap.script_executions, 2);
    }

    #[test]
    fn traced_visit_covers_all_pipeline_stages() {
        use canvassing_trace::{span_names, VisitRecorder};
        let network = simple_network();
        let page = Url::https("site.com", "/");
        let browser = intel_browser();
        let rec = VisitRecorder::new(&page.to_string(), None);
        let traced = browser.visit_traced(&network, &page, 0, &rec).unwrap();
        let plain = browser.visit(&network, &page).unwrap();
        assert_eq!(
            format!("{traced:?}"),
            format!("{plain:?}"),
            "tracing must not change the visit record"
        );
        let trace = rec.finish().unwrap();
        let names = span_names(&trace);
        for stage in ["fetch", "parse", "triage", "execute", "extract"] {
            assert!(names.contains(stage), "missing stage span {stage}");
        }
    }

    #[test]
    fn traced_scriptless_page_still_covers_all_stages() {
        use canvassing_trace::{span_names, VisitRecorder};
        let mut network = Network::new();
        network.host(
            &Url::https("empty.com", "/"),
            Resource::Page(PageResource::default()),
        );
        let page = Url::https("empty.com", "/");
        let rec = VisitRecorder::new(&page.to_string(), None);
        intel_browser()
            .visit_traced(&network, &page, 0, &rec)
            .unwrap();
        let trace = rec.finish().unwrap();
        let names = span_names(&trace);
        for stage in ["fetch", "parse", "triage", "execute", "extract"] {
            assert!(names.contains(stage), "missing stage span {stage}");
        }
    }

    #[test]
    fn traced_visit_stream_is_cache_temperature_invariant() {
        use canvassing_trace::VisitRecorder;
        let network = simple_network();
        let page = Url::https("site.com", "/");

        // Cached browser, cold then warm: identical event streams.
        let mut cached = intel_browser();
        cached.caches = CrawlCaches::enabled();
        let trace_of = |browser: &Browser| {
            let rec =
                VisitRecorder::new(&page.to_string(), Some(Arc::clone(&cached.caches.metrics)));
            browser.visit_traced(&network, &page, 0, &rec).unwrap();
            rec.finish().unwrap()
        };
        let cold = trace_of(&cached);
        let warm = trace_of(&cached);
        assert_eq!(cold, warm, "cold and warm visits must trace identically");

        // The schedule-dependent attribution lives in the metrics.
        let snap = cached.caches.metrics.snapshot();
        assert_eq!(snap.counters["render.replays"], 2);
        assert_eq!(snap.counters["net.fetches"], 4);
    }

    #[test]
    fn traced_visit_records_defense_and_error_events() {
        use canvassing_trace::{EventKind, VisitRecorder};
        let mut network = simple_network();
        network.faults.take_down("fp.example.net");
        let page = Url::https("site.com", "/");
        let mut browser = intel_browser();
        browser.defense = DefenseMode::Block;
        let rec = VisitRecorder::new(&page.to_string(), None);
        browser.visit_traced(&network, &page, 0, &rec).unwrap();
        let trace = rec.finish().unwrap();
        let instants: Vec<(&str, &str)> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, detail, .. } => Some((*name, detail.as_str())),
                _ => None,
            })
            .collect();
        assert!(instants.contains(&("defense", "block")));
        assert!(instants.iter().any(|(n, _)| *n == "net.error"));
        assert!(instants
            .iter()
            .any(|(n, d)| *n == "script.unavailable" && d.contains("fp.example.net")));
    }

    #[test]
    fn supervised_visit_salvages_partial_evidence_on_deadline() {
        use canvassing_net::Fault;
        // Two scripts; the second one's host is latency-spiked past the
        // deadline, so the visit dies between scripts — after the first
        // ran and extracted.
        let mut network = simple_network();
        network.host(
            &Url::https("slowcdn.net", "/late.js"),
            Resource::Script(ScriptResource {
                source: "let x = 1;".into(),
                label: "late".into(),
            }),
        );
        network.host(
            &Url::https("twoscripts.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![
                    ScriptRef::External(Url::https("fp.example.net", "/fp.js")),
                    ScriptRef::External(Url::https("slowcdn.net", "/late.js")),
                ],
                consent_banner: false,
                bot_check: false,
            }),
        );
        network
            .faults
            .inject("slowcdn.net", Fault::LatencySpike { extra_ms: 60_000 });
        let abort = intel_browser()
            .visit_supervised(
                &network,
                &Url::https("twoscripts.com", "/"),
                0,
                &VisitRecorder::disabled(),
                &BTreeSet::new(),
            )
            .unwrap_err();
        assert!(matches!(abort.error, VisitError::DeadlineExceeded(_)));
        let partial = abort.partial.expect("page was reached");
        assert_eq!(partial.scripts.len(), 1, "first script survives");
        assert!(partial.scripts[0].verdict.is_some(), "triage survives");
        assert_eq!(partial.extractions.len(), 1, "its extraction survives");
    }

    #[test]
    fn supervised_visit_keeps_nothing_before_page_contact() {
        let mut network = simple_network();
        network.faults.take_down("site.com");
        let abort = intel_browser()
            .visit_supervised(
                &network,
                &Url::https("site.com", "/"),
                0,
                &VisitRecorder::disabled(),
                &BTreeSet::new(),
            )
            .unwrap_err();
        assert!(matches!(abort.error, VisitError::Fetch(_)));
        assert!(abort.partial.is_none(), "no page, nothing to salvage");
    }

    #[test]
    fn supervised_visit_salvages_page_shell_behind_bot_wall() {
        let mut network = Network::new();
        network.host(
            &Url::https("guarded.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![],
                consent_banner: false,
                bot_check: true,
            }),
        );
        let mut browser = intel_browser();
        browser.passes_bot_checks = false;
        let abort = browser
            .visit_supervised(
                &network,
                &Url::https("guarded.com", "/"),
                0,
                &VisitRecorder::disabled(),
                &BTreeSet::new(),
            )
            .unwrap_err();
        assert!(matches!(abort.error, VisitError::BotBlocked(_)));
        let partial = abort.partial.expect("the wall was served");
        assert!(partial.scripts.is_empty());
    }

    #[test]
    fn open_breaker_short_circuits_page_and_script_hosts() {
        use canvassing_trace::{span_names, EventKind};
        let network = simple_network();
        let page = Url::https("site.com", "/");
        let browser = intel_browser();

        // Page host open: no fetch happens at all.
        let open: BTreeSet<String> = ["site.com".to_string()].into();
        let rec = VisitRecorder::new(&page.to_string(), None);
        let abort = browser
            .visit_supervised(&network, &page, 0, &rec, &open)
            .unwrap_err();
        assert!(matches!(abort.error, VisitError::CircuitOpen(_)));
        assert!(abort.partial.is_none());
        let trace = rec.finish().unwrap();
        assert!(!span_names(&trace).contains("fetch"), "no fetch attempted");

        // Script host open: the page survives with a circuit-open script.
        let open: BTreeSet<String> = ["fp.example.net".to_string()].into();
        let rec = VisitRecorder::new(&page.to_string(), None);
        let visit = browser
            .visit_supervised(&network, &page, 0, &rec, &open)
            .unwrap();
        assert_eq!(visit.scripts.len(), 1);
        assert_eq!(visit.scripts[0].error.as_deref(), Some("circuit open"));
        assert!(visit.extractions.is_empty());
        let trace = rec.finish().unwrap();
        assert!(trace.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Instant { name, .. } if *name == "breaker.short_circuit"
        )));
    }

    #[test]
    fn randomize_per_render_defeats_clustering_but_is_detectable() {
        let mut network = simple_network();
        // A script doing the §5.3 stability check.
        let checker = r##"
            fn render() {
                let c = document.createElement("canvas");
                c.width = 40; c.height = 20;
                let x = c.getContext("2d");
                x.fillStyle = "tomato";
                x.fillRect(0, 0, 40, 20);
                return c.toDataURL();
            }
            let a = render();
            let b = render();
            a == b;
        "##;
        network.host(
            &Url::https("checker.net", "/check.js"),
            Resource::Script(ScriptResource {
                source: checker.to_string(),
                label: "checker".into(),
            }),
        );
        network.host(
            &Url::https("checksite.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(Url::https("checker.net", "/check.js"))],
                consent_banner: false,
                bot_check: false,
            }),
        );
        let page = Url::https("checksite.com", "/");

        // Without defense: both renders identical.
        let visit = intel_browser().visit(&network, &page).unwrap();
        assert_eq!(visit.extractions[0].data_url, visit.extractions[1].data_url);

        // Per-render noise: renders differ (check detects randomization).
        let mut browser = intel_browser();
        browser.defense = DefenseMode::RandomizePerRender { seed: 1 };
        let visit = browser.visit(&network, &page).unwrap();
        assert_ne!(visit.extractions[0].data_url, visit.extractions[1].data_url);

        // Per-session noise: renders match (footnote 7 — undetectable by
        // the double-render check).
        let mut browser = intel_browser();
        browser.defense = DefenseMode::RandomizePerSession { seed: 1 };
        let visit = browser.visit(&network, &page).unwrap();
        assert_eq!(visit.extractions[0].data_url, visit.extractions[1].data_url);
    }
}
