//! Ad-blocker extensions.
//!
//! Both modeled extensions consume EasyList (the paper: "AdblockPlus and
//! UBlock Origin, both of which use EasyList's rules") and apply the
//! first-party exception that §5.2 shows fingerprinters exploit. uBlock
//! Origin additionally un-cloaks CNAMEs (as it does on Firefox), so
//! CNAME-cloaked trackers are evaluated — and party-classified — against
//! their canonical hosts.

use canvassing_blocklist::{FilterList, RequestContext, Verdict};
use canvassing_net::domain::registrable_domain;
use canvassing_net::{classify_party, DnsZone, Party, ResourceType, Url};

/// Which ad blocker is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdBlockerKind {
    /// Adblock Plus: EasyList, first-party exception, no CNAME uncloaking.
    AdblockPlus,
    /// uBlock Origin: EasyList, first-party exception, CNAME uncloaking.
    UblockOrigin,
}

impl AdBlockerKind {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdBlockerKind::AdblockPlus => "Adblock Plus",
            AdBlockerKind::UblockOrigin => "uBlock Origin",
        }
    }
}

/// An installed content-blocking extension.
pub struct Extension {
    kind: AdBlockerKind,
    list: FilterList,
}

/// Why a request was blocked, for crawler records.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecision {
    /// The rule text that fired.
    pub rule: String,
    /// The URL the rule was evaluated against (canonical for uBO
    /// uncloaked requests).
    pub evaluated_url: Url,
}

impl Extension {
    /// Installs an extension with the given filter list text.
    pub fn new(kind: AdBlockerKind, easylist_text: &str) -> Extension {
        Extension {
            kind,
            list: FilterList::parse("EasyList", easylist_text),
        }
    }

    /// The extension flavor.
    pub fn kind(&self) -> AdBlockerKind {
        self.kind
    }

    /// Decides whether a script request from `page` to `script_url` is
    /// blocked. `dns` is used by uBlock Origin to resolve CNAME cloaks.
    pub fn check_script(
        &self,
        page: &Url,
        script_url: &Url,
        dns: &DnsZone,
    ) -> Option<BlockDecision> {
        // uBlock Origin sees through CNAME cloaks: evaluate against the
        // canonical name when the request host aliases off-site.
        let effective_url = match self.kind {
            AdBlockerKind::UblockOrigin => match dns.resolve(&script_url.host) {
                Ok(res) if res.is_cloaked() => {
                    let mut u = script_url.clone();
                    u.host = res.canonical;
                    u
                }
                _ => script_url.clone(),
            },
            AdBlockerKind::AdblockPlus => script_url.clone(),
        };

        // First-party exception: extensions do not block same-site
        // resources (this is what lets Akamai's /akam/ sensor and
        // subdomain-routed SDKs through, §5.2).
        if classify_party(page, &effective_url) != Party::ThirdParty {
            return None;
        }

        let ctx = RequestContext::new(
            effective_url.clone(),
            ResourceType::Script,
            false,
            registrable_domain(&page.host).unwrap_or(&page.host),
        );
        match self.list.evaluate(&ctx) {
            Verdict::Block(rule) => Some(BlockDecision {
                rule,
                evaluated_url: effective_url,
            }),
            Verdict::Allow | Verdict::Excepted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST: &str = "\
||tracker.net^$script
||privacy-cs.mail.ru^$script
@@||privacy-cs.mail.ru^$script,domain=ru
/akam/*$script
";

    fn dns_with_cloak() -> DnsZone {
        let mut dns = DnsZone::new();
        dns.insert_auto("tracker.net");
        dns.insert_cname("metrics.shop.com", "tracker.net");
        dns.insert_auto("shop.com");
        dns
    }

    fn page() -> Url {
        Url::https("shop.com", "/")
    }

    #[test]
    fn blocks_third_party_match() {
        let ext = Extension::new(AdBlockerKind::AdblockPlus, LIST);
        let hit = ext.check_script(
            &page(),
            &Url::https("tracker.net", "/fp.js"),
            &DnsZone::new(),
        );
        assert!(hit.is_some());
    }

    #[test]
    fn first_party_exception_spares_akamai() {
        let ext = Extension::new(AdBlockerKind::AdblockPlus, LIST);
        // The /akam/ rule matches the URL, but it is first-party.
        let hit = ext.check_script(
            &page(),
            &Url::https("shop.com", "/akam/13/abc.js"),
            &DnsZone::new(),
        );
        assert!(hit.is_none());
        // Same path on a third-party host would be blocked.
        let hit = ext.check_script(
            &page(),
            &Url::https("cdn.example.net", "/akam/13/abc.js"),
            &DnsZone::new(),
        );
        assert!(hit.is_some());
    }

    #[test]
    fn abp_misses_cname_cloak_ubo_catches_it() {
        let dns = dns_with_cloak();
        let cloaked = Url::https("metrics.shop.com", "/fp.js");
        let abp = Extension::new(AdBlockerKind::AdblockPlus, LIST);
        assert!(abp.check_script(&page(), &cloaked, &dns).is_none());
        let ubo = Extension::new(AdBlockerKind::UblockOrigin, LIST);
        let hit = ubo.check_script(&page(), &cloaked, &dns);
        assert!(hit.is_some(), "uBO should uncloak and block");
        assert_eq!(hit.unwrap().evaluated_url.host, "tracker.net");
    }

    #[test]
    fn site_scoped_exception_spares_mailru_on_ru_pages() {
        let ext = Extension::new(AdBlockerKind::AdblockPlus, LIST);
        let script = Url::https("privacy-cs.mail.ru", "/counter/top.js");
        let ru_page = Url::https("news.ru", "/");
        assert!(ext
            .check_script(&ru_page, &script, &DnsZone::new())
            .is_none());
        // On a non-.ru page it would be blocked.
        assert!(ext
            .check_script(&page(), &script, &DnsZone::new())
            .is_some());
    }
}
