//! # canvassing-browser
//!
//! A headless browser simulation: the execution environment the crawler
//! drives across the synthetic web.
//!
//! A [`Browser`] couples a rendering device profile with an optional
//! ad-block [`extension::Extension`] and a canvas
//! [`defenses::DefenseMode`], then executes page visits: fetch the
//! document, auto-accept consent banners, pass bot gates, run each
//! referenced script (inline or external, honoring extension blocking and
//! CNAME resolution), simulate scrolling, and hand back the instrumented
//! Canvas API record — the same artifact the paper's modified Tracker
//! Radar Collector produces (§3.1).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod defenses;
pub mod extension;
pub mod memo;
pub mod visit;

pub use canvassing_analysis::{AnalysisCache, AnalysisStats, ScriptAnalysis, Verdict};
pub use canvassing_script::{ExecEngine, ScriptCache, ScriptCacheStats};
pub use defenses::DefenseMode;
pub use extension::{AdBlockerKind, BlockDecision, Extension};
pub use memo::{CrawlCaches, PerfCounters, PerfSnapshot, RenderEntry, RenderMemo};
pub use visit::{
    BlockedScript, Browser, LoadedScript, PageVisit, VisitAbort, VisitError, VisitPolicy,
};

#[cfg(test)]
mod vendor_script_tests {
    //! Every modeled vendor script must actually execute against the DOM
    //! and extract the number of canvases its metadata declares.

    use super::*;
    use canvassing_net::{PageResource, Resource, ScriptRef, ScriptResource, Url};
    use canvassing_raster::DeviceProfile;
    use canvassing_vendors::{all_vendors, scripts, VendorId};

    fn run_vendor(id: VendorId, commercial: bool) -> PageVisit {
        let mut network = canvassing_net::Network::new();
        let source = scripts::source(id, "Tok-En", commercial);
        let url = Url::https("vendor-host.example", "/fp.js");
        network.host(
            &url,
            Resource::Script(ScriptResource {
                source,
                label: format!("{id:?}"),
            }),
        );
        network.host(
            &Url::https("site.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(url)],
                consent_banner: false,
                bot_check: false,
            }),
        );
        Browser::new(DeviceProfile::intel_ubuntu())
            .visit(&network, &Url::https("site.com", "/"))
            .expect("visit")
    }

    #[test]
    fn all_vendor_scripts_run_cleanly() {
        for v in all_vendors() {
            let visit = run_vendor(v.id, false);
            for s in &visit.scripts {
                assert!(s.error.is_none(), "{} script error: {:?}", v.name, s.error);
            }
            assert!(
                !visit.extractions.is_empty(),
                "{} extracted nothing",
                v.name
            );
        }
    }

    #[test]
    fn vendor_unique_canvas_counts_match_metadata() {
        for v in all_vendors() {
            let visit = run_vendor(v.id, false);
            let unique: std::collections::BTreeSet<&str> = visit
                .extractions
                .iter()
                .map(|e| e.data_url.as_str())
                .collect();
            assert_eq!(
                unique.len(),
                v.canvas_count,
                "{}: expected {} unique canvases, extractions: {}",
                v.name,
                v.canvas_count,
                visit.extractions.len()
            );
        }
    }

    #[test]
    fn double_render_vendors_extract_a_canvas_twice() {
        for v in all_vendors() {
            let visit = run_vendor(v.id, false);
            let mut counts = std::collections::BTreeMap::new();
            for e in &visit.extractions {
                *counts.entry(e.data_url.as_str()).or_insert(0usize) += 1;
            }
            let has_double = counts.values().any(|&c| c >= 2);
            assert_eq!(
                has_double, v.double_render,
                "{}: double-render mismatch (counts {counts:?})",
                v.name
            );
        }
    }

    #[test]
    fn commercial_fpjs_renders_same_canvases_as_oss() {
        let oss = run_vendor(VendorId::FingerprintJs, false);
        let pro = run_vendor(VendorId::FingerprintJs, true);
        let urls = |v: &PageVisit| -> std::collections::BTreeSet<String> {
            v.extractions.iter().map(|e| e.data_url.clone()).collect()
        };
        assert_eq!(urls(&oss), urls(&pro));
    }

    #[test]
    fn imperva_canvases_differ_across_sites() {
        let run_on = |token: &str| {
            let mut network = canvassing_net::Network::new();
            let url = Url::https("site.com", "/x/init.js");
            network.host(
                &url,
                Resource::Script(ScriptResource {
                    source: scripts::source(VendorId::Imperva, token, false),
                    label: "imperva".into(),
                }),
            );
            network.host(
                &Url::https("site.com", "/"),
                Resource::Page(PageResource {
                    scripts: vec![ScriptRef::External(url)],
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            Browser::new(DeviceProfile::intel_ubuntu())
                .visit(&network, &Url::https("site.com", "/"))
                .unwrap()
                .extractions[0]
                .data_url
                .clone()
        };
        assert_ne!(run_on("Alpha-One"), run_on("Beta-Two"));
    }

    #[test]
    fn benign_scripts_run_cleanly() {
        use canvassing_vendors::benign::{source, BenignKind};
        for kind in BenignKind::all() {
            let mut network = canvassing_net::Network::new();
            let url = Url::https("site.com", "/assets/benign.js");
            network.host(
                &url,
                Resource::Script(ScriptResource {
                    source: source(*kind, 42),
                    label: kind.label().into(),
                }),
            );
            network.host(
                &Url::https("site.com", "/"),
                Resource::Page(PageResource {
                    scripts: vec![ScriptRef::External(url)],
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            let visit = Browser::new(DeviceProfile::intel_ubuntu())
                .visit(&network, &Url::https("site.com", "/"))
                .unwrap();
            for s in &visit.scripts {
                assert!(s.error.is_none(), "{:?}: {:?}", kind, s.error);
            }
            // Probes may extract more than once (e.g. two WebP qualities).
            assert!(
                (1..=2).contains(&visit.extractions.len()),
                "{kind:?}: {} extractions",
                visit.extractions.len()
            );
        }
    }
}
