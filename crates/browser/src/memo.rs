//! Canvas render memoization.
//!
//! Rendering is deterministic on one machine — the exact property canvas
//! fingerprinting exploits (§4.1) and the paper's clustering relies on. A
//! crawl therefore re-renders the same vendor script to the same pixels
//! tens of thousands of times. A [`RenderMemo`] runs each unique (script
//! body, device profile) pair **once** on a scratch document, keeps the
//! normalized instrumentation record (API calls, extractions, canvas
//! bytes as data URLs), and replays it into later visits by pure record
//! relocation ([`canvassing_dom::Document::absorb_render`]).
//!
//! ## Why replay is sound
//!
//! Scripts are isolated: no host API lets a script observe another
//! script's canvases, the document clock, record counters, or handle
//! state, so a script's behavior — and, after
//! `Document::set_current_script`'s per-script handle namespace, its
//! byte-exact instrumentation record — is a pure function of (source,
//! device profile). Relocating the scratch record (offsetting `seq`,
//! `timestamp_ms`, and `canvas_index`; substituting the attributed URL)
//! reproduces exactly what in-place execution would have recorded.
//!
//! ## When replay is bypassed
//!
//! * **Any active defense** (§5.3). Randomization defenses salt their
//!   noise with the page host and the per-document extraction counter, so
//!   defended extractions are not functions of (script, device) alone —
//!   and the double-render evasion check must genuinely execute both
//!   renders to observe per-render noise. The browser only consults the
//!   memo when [`crate::DefenseMode::None`] is active.
//! * **Tighter budgets.** An entry is replayed only when its canonical
//!   step count fits the visit's remaining fuel; otherwise the script
//!   executes in place and trips (or not) exactly as it would uncached.
//! * **Hash collisions** (verified by full source comparison) and
//!   canonical runs that panicked.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use canvassing_analysis::AnalysisCache;
use canvassing_dom::{ApiCall, Document, Extraction};
use canvassing_raster::{DeviceProfile, SurfacePool};
use canvassing_script::{
    eval_engine_with_budget, run_compiled_with_budget, run_with_budget, source_hash, EvalOutcome,
    ExecEngine, RuntimeError, ScriptCache, DEFAULT_STEP_BUDGET,
};

/// Number of independently locked shards in the memo map.
const SHARDS: usize = 16;

/// The canonical record of one (script body, device) render, normalized
/// to a fresh document (clock 0, empty record, canvas indices from 0).
#[derive(Debug)]
pub struct RenderEntry {
    /// Interpreter steps the canonical run consumed.
    pub steps: u64,
    /// Runtime (or parse) error message, if the script crashed.
    pub error: Option<String>,
    /// Normalized API calls.
    pub calls: Vec<ApiCall>,
    /// Normalized extractions (canvas bytes ride along as data URLs).
    pub extractions: Vec<Extraction>,
    /// Canvas elements the script created.
    pub canvases_created: usize,
}

/// Outcome of the exactly-once canonical run.
#[derive(Debug)]
enum MemoSlot {
    /// Canonical record available for replay.
    Ready(Arc<RenderEntry>),
    /// The canonical run panicked; this script always executes in place
    /// (and panics there exactly as it would uncached).
    Poisoned,
}

/// One memo cell: the verified source plus its lazily computed slot.
/// `OnceLock` serializes the canonical run per key, so concurrent workers
/// block on the computing worker instead of rendering redundantly —
/// which also makes the compute count deterministic.
struct MemoCell {
    source: String,
    slot: OnceLock<MemoSlot>,
}

/// Schedule-independent perf counters for one crawl. Every count is a
/// pure function of the workload: computes happen exactly once per unique
/// key, and hit/bypass classification per script execution is
/// deterministic, so totals match across worker counts.
#[derive(Debug, Default)]
pub struct PerfCounters {
    /// Scripts interpreted in place (not satisfied by memo replay).
    pub script_executions: AtomicU64,
    /// Scripts satisfied by replaying a memoized render.
    pub memo_hits: AtomicU64,
    /// Canonical scratch renders performed (== unique memo keys).
    pub memo_computes: AtomicU64,
    /// Memo lookups that fell back to in-place execution (budget too
    /// tight, poisoned entry, or hash collision).
    pub memo_bypasses: AtomicU64,
}

impl PerfCounters {
    /// Plain-number snapshot of the counters.
    pub fn snapshot(&self) -> PerfSnapshot {
        PerfSnapshot {
            script_executions: self.script_executions.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_computes: self.memo_computes.load(Ordering::Relaxed),
            memo_bypasses: self.memo_bypasses.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PerfCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Scripts interpreted in place.
    pub script_executions: u64,
    /// Scripts satisfied by memo replay.
    pub memo_hits: u64,
    /// Canonical scratch renders performed.
    pub memo_computes: u64,
    /// Memo lookups that fell back to in-place execution.
    pub memo_bypasses: u64,
}

/// The shared caches a crawl threads through its browsers. All fields are
/// optional so a default-constructed browser behaves exactly as before;
/// the perf counters are always present (and nearly free).
#[derive(Clone, Default)]
pub struct CrawlCaches {
    /// Compiled-script cache (parse each unique body once per crawl).
    pub scripts: Option<Arc<ScriptCache>>,
    /// Render memoization (render each unique body+device once per crawl).
    pub memo: Option<Arc<RenderMemo>>,
    /// Canvas pixel-buffer recycling pool.
    pub pool: Option<Arc<SurfacePool>>,
    /// Static pre-execution triage results, one analysis per unique
    /// script body. Always present (like `perf`): triage is part of what
    /// the crawler *records*, not an optimization, so enabling or
    /// disabling the performance caches never changes the dataset. When
    /// `scripts` is set the analysis borrows its compiled ASTs; without
    /// it, triage parses privately (uncounted in crawl parse stats).
    pub analysis: Arc<AnalysisCache>,
    /// Crawl-wide perf counters.
    pub perf: Arc<PerfCounters>,
    /// Crawl-wide trace metrics (typed counters + histograms). Always
    /// present like `perf`; it only accumulates when a visit recorder is
    /// enabled, so untraced crawls pay nothing.
    pub metrics: Arc<canvassing_trace::MetricsRegistry>,
}

impl CrawlCaches {
    /// All cache layers enabled, sharing one set of counters.
    pub fn enabled() -> CrawlCaches {
        CrawlCaches {
            scripts: Some(Arc::new(ScriptCache::new())),
            memo: Some(Arc::new(RenderMemo::new())),
            pool: Some(Arc::new(SurfacePool::new())),
            analysis: Arc::new(AnalysisCache::new()),
            perf: Arc::new(PerfCounters::default()),
            metrics: Arc::new(canvassing_trace::MetricsRegistry::new()),
        }
    }

    /// No caching (the baseline path; also what `Browser::new` gives you).
    pub fn disabled() -> CrawlCaches {
        CrawlCaches::default()
    }
}

/// One memo shard: (script hash, device profile id) → canonical render.
type MemoShard = Mutex<HashMap<(u64, String), Arc<MemoCell>>>;

/// The render memo map. `Arc`-share one instance across crawl workers.
#[derive(Default)]
pub struct RenderMemo {
    shards: Vec<MemoShard>,
}

impl RenderMemo {
    /// Creates an empty memo.
    pub fn new() -> RenderMemo {
        RenderMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Number of (script, device) keys memoized so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a replayable canonical render of `source` on `device`, or
    /// `None` when the script must execute in place (see the module docs
    /// for the bypass rules). Computes the canonical render — exactly once
    /// per key, crawl-wide — on first sight of a key.
    ///
    /// `budget` is the visit's remaining step allowance for this script;
    /// entries whose canonical run used more are not replayed.
    pub fn lookup(
        &self,
        source: &str,
        device: &DeviceProfile,
        budget: u64,
        scripts: Option<&ScriptCache>,
        engine: ExecEngine,
        perf: &PerfCounters,
    ) -> Option<Arc<RenderEntry>> {
        let hash = source_hash(source);
        let key = (hash, device.id.clone());
        let shard = &self.shards[(hash as usize) % SHARDS];
        let cell = {
            let mut map = shard.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(map.entry(key).or_insert_with(|| {
                Arc::new(MemoCell {
                    source: source.to_string(),
                    slot: OnceLock::new(),
                })
            }))
        };
        if cell.source != source {
            // 64-bit collision: never replay the wrong script.
            perf.memo_bypasses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut computed = false;
        let slot = cell.slot.get_or_init(|| {
            computed = true;
            perf.memo_computes.fetch_add(1, Ordering::Relaxed);
            compute_canonical(source, device, scripts, engine)
        });
        match slot {
            MemoSlot::Ready(entry) if entry.steps <= budget => {
                if !computed {
                    perf.memo_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(Arc::clone(entry))
            }
            _ => {
                if !computed {
                    perf.memo_bypasses.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }
}

/// Runs `source` once on a fresh scratch document under the engine's
/// full budget, producing the normalized record.
fn compute_canonical(
    source: &str,
    device: &DeviceProfile,
    scripts: Option<&ScriptCache>,
    engine: ExecEngine,
) -> MemoSlot {
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut doc = Document::new(device.clone());
        doc.set_current_script("");
        let outcome = eval_cached(source, &mut doc, DEFAULT_STEP_BUDGET, scripts, engine);
        let canvases_created = doc.canvas_count();
        let (calls, extractions) = doc.into_records();
        RenderEntry {
            steps: outcome.steps,
            error: outcome.result.err().map(|e| e.message),
            calls,
            extractions,
            canvases_created,
        }
    }));
    match run {
        Ok(entry) => MemoSlot::Ready(Arc::new(entry)),
        Err(_) => MemoSlot::Poisoned,
    }
}

/// `eval_with_budget`, but resolving the program through the shared
/// compile cache when one is available and dispatching on the configured
/// execution engine. The parse-failure contract matches
/// `eval_with_budget` exactly (same message, zero steps).
///
/// When a cache is present the cached lookup always produces bytecode —
/// even for a tree-walker run — so the crawl's `compiles` counter is a
/// pure function of the workload, identical whichever engine executes.
/// That keeps study reports byte-identical between engines (the A/B
/// determinism gate) at the cost of one amortized-away compile per unique
/// body.
pub(crate) fn eval_cached(
    source: &str,
    doc: &mut Document,
    budget: u64,
    scripts: Option<&ScriptCache>,
    engine: ExecEngine,
) -> EvalOutcome {
    match scripts {
        Some(cache) => match cache.get_or_compile(source) {
            Ok(exec) => match engine {
                ExecEngine::Bytecode => run_compiled_with_budget(&exec.bytecode, doc, budget),
                ExecEngine::TreeWalker => run_with_budget(&exec.program, doc, budget),
            },
            Err(e) => EvalOutcome {
                result: Err(RuntimeError::new(format!("script parse failed: {e}"))),
                steps: 0,
            },
        },
        None => eval_engine_with_budget(source, doc, budget, engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: &str = r##"
        let c = document.createElement("canvas");
        c.width = 40; c.height = 16;
        let x = c.getContext("2d");
        x.fillStyle = "#069";
        x.fillText("memo probe", 2, 12);
        c.toDataURL();
    "##;

    fn device() -> DeviceProfile {
        DeviceProfile::intel_ubuntu()
    }

    #[test]
    fn canonical_render_computes_once_then_hits() {
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let a = memo
            .lookup(
                FP,
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .expect("replayable");
        let b = memo
            .lookup(
                FP,
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .expect("replayable");
        assert!(Arc::ptr_eq(&a, &b));
        let snap = perf.snapshot();
        assert_eq!(snap.memo_computes, 1);
        assert_eq!(snap.memo_hits, 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(a.canvases_created, 1);
        assert_eq!(a.extractions.len(), 1);
        assert!(a.error.is_none());
        assert!(a.steps > 0);
    }

    #[test]
    fn replay_matches_direct_execution() {
        // The normalized record must equal what direct execution on a
        // fresh document records, minus attribution.
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let entry = memo
            .lookup(
                FP,
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .unwrap();

        let mut doc = Document::new(device());
        doc.set_current_script("");
        canvassing_script::eval_with_budget(FP, &mut doc, DEFAULT_STEP_BUDGET);
        let (calls, extractions) = doc.into_records();
        assert_eq!(entry.calls, calls);
        assert_eq!(entry.extractions, extractions);
    }

    #[test]
    fn distinct_devices_get_distinct_entries() {
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let a = memo
            .lookup(
                FP,
                &DeviceProfile::intel_ubuntu(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .unwrap();
        let b = memo
            .lookup(
                FP,
                &DeviceProfile::apple_m1(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .unwrap();
        assert_eq!(memo.len(), 2);
        assert_ne!(
            a.extractions[0].data_url, b.extractions[0].data_url,
            "devices must render distinct pixels"
        );
    }

    #[test]
    fn tight_budget_bypasses_replay() {
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let entry = memo
            .lookup(
                FP,
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .unwrap();
        assert!(memo
            .lookup(
                FP,
                &device(),
                entry.steps - 1,
                None,
                ExecEngine::Bytecode,
                &perf
            )
            .is_none());
        assert_eq!(perf.snapshot().memo_bypasses, 1);
        // At exactly the canonical step count the entry fits.
        assert!(memo
            .lookup(
                FP,
                &device(),
                entry.steps,
                None,
                ExecEngine::Bytecode,
                &perf
            )
            .is_some());
    }

    #[test]
    fn compute_goes_through_shared_script_cache() {
        let memo = RenderMemo::new();
        let cache = ScriptCache::new();
        let perf = PerfCounters::default();
        memo.lookup(
            FP,
            &device(),
            DEFAULT_STEP_BUDGET,
            Some(&cache),
            ExecEngine::Bytecode,
            &perf,
        )
        .unwrap();
        assert_eq!(cache.stats().parses, 1);
    }

    #[test]
    fn broken_script_entry_replays_the_error() {
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let entry = memo
            .lookup(
                "let = ;",
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .expect("parse failures are replayable");
        assert_eq!(entry.steps, 0);
        assert!(entry
            .error
            .as_deref()
            .unwrap()
            .contains("script parse failed"));
        assert!(entry.calls.is_empty());
    }

    #[test]
    fn double_render_scripts_keep_both_extractions() {
        // §5.3: the double-render record must survive memoization so the
        // downstream check still sees two identical extractions.
        let double = r##"
            fn render() {
                let c = document.createElement("canvas");
                c.width = 30; c.height = 10;
                let x = c.getContext("2d");
                x.fillRect(0, 0, 30, 10);
                return c.toDataURL();
            }
            let a = render();
            let b = render();
        "##;
        let memo = RenderMemo::new();
        let perf = PerfCounters::default();
        let entry = memo
            .lookup(
                double,
                &device(),
                DEFAULT_STEP_BUDGET,
                None,
                ExecEngine::Bytecode,
                &perf,
            )
            .unwrap();
        assert_eq!(entry.extractions.len(), 2);
        assert_eq!(entry.canvases_created, 2);
        assert_eq!(entry.extractions[0].data_url, entry.extractions[1].data_url);
    }
}
