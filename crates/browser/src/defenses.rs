//! Anti-fingerprinting defenses (§2, §5.3).
//!
//! Three deployed defense families are modeled:
//!
//! * **blocking** — all canvas reads return a constant (Tor-style);
//! * **per-render randomization** — fresh noise on every extraction
//!   (Brave-style, and the "Canvas Fingerprint Defender" extension the
//!   paper cites). Detectable by the double-render check.
//! * **per-session randomization** — one persistent noise pattern for the
//!   whole browsing session (Firefox-style; footnote 7 notes the
//!   double-render check cannot detect this variant).

use canvassing_dom::{PixelFilter, ReadbackDefense};
use canvassing_raster::Surface;

/// Which defense the browser applies to canvas read-backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefenseMode {
    /// No defense (default Chrome-like configuration; the paper's crawls).
    #[default]
    None,
    /// Block all canvas extraction.
    Block,
    /// Fresh random noise per extraction, seeded per session.
    RandomizePerRender {
        /// Session seed.
        seed: u64,
    },
    /// One persistent noise pattern per session (same noise for every
    /// extraction of the same canvas).
    RandomizePerSession {
        /// Session seed.
        seed: u64,
    },
}

impl DefenseMode {
    /// Short stable name for trace events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseMode::None => "none",
            DefenseMode::Block => "block",
            DefenseMode::RandomizePerRender { .. } => "randomize-per-render",
            DefenseMode::RandomizePerSession { .. } => "randomize-per-session",
        }
    }

    /// Builds the DOM-layer defense hook.
    pub fn build(self) -> ReadbackDefense {
        match self {
            DefenseMode::None => ReadbackDefense::None,
            DefenseMode::Block => ReadbackDefense::Block,
            DefenseMode::RandomizePerRender { seed } => {
                ReadbackDefense::Filter(Box::new(NoiseFilter {
                    seed,
                    per_render: true,
                }))
            }
            DefenseMode::RandomizePerSession { seed } => {
                ReadbackDefense::Filter(Box::new(NoiseFilter {
                    seed,
                    per_render: false,
                }))
            }
        }
    }
}

/// ±1 LSB noise applied to a sparse subset of pixels, the way deployed
/// canvas randomizers perturb read-backs without visibly corrupting the
/// image.
struct NoiseFilter {
    seed: u64,
    per_render: bool,
}

impl PixelFilter for NoiseFilter {
    fn filter(&mut self, canvas_index: usize, surface: &mut Surface, invocation: u64) {
        // Per-render noise is salted by the extraction counter (and the
        // canvas), so every read-back differs. Per-session noise depends
        // only on the session seed: the same pattern for every read-back,
        // across canvases — which is why the double-render check cannot
        // see it (two fresh canvas elements still compare equal).
        let salt = if self.per_render {
            invocation
                .wrapping_mul(0xd1b54a32d192ed03)
                .wrapping_add(canvas_index as u64)
        } else {
            0
        };
        let mut state = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(salt)
            | 1;
        let data = surface.data_mut();
        let mut i = 0usize;
        while i < data.len() {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545f4914f6cdd1d);
            // Perturb roughly 1 in 16 bytes by ±1, skipping alpha bytes.
            if r & 0xf == 0 && i % 4 != 3 {
                data[i] = if r & 0x10 == 0 {
                    data[i].saturating_add(1)
                } else {
                    data[i].saturating_sub(1)
                };
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface_with_content() -> Surface {
        let mut s = Surface::new(16, 16);
        for b in s.data_mut().iter_mut() {
            *b = 128;
        }
        s
    }

    fn run_filter(mode: DefenseMode, invocation: u64) -> Vec<u8> {
        let ReadbackDefense::Filter(mut f) = mode.build() else {
            panic!("expected filter")
        };
        let mut s = surface_with_content();
        f.filter(0, &mut s, invocation);
        s.data().to_vec()
    }

    #[test]
    fn per_render_noise_differs_across_invocations() {
        let mode = DefenseMode::RandomizePerRender { seed: 7 };
        assert_ne!(run_filter(mode, 1), run_filter(mode, 2));
        // But is deterministic for the same invocation.
        assert_eq!(run_filter(mode, 1), run_filter(mode, 1));
    }

    #[test]
    fn per_session_noise_is_stable_across_invocations() {
        let mode = DefenseMode::RandomizePerSession { seed: 7 };
        assert_eq!(run_filter(mode, 1), run_filter(mode, 2));
        // Different sessions (seeds) produce different noise.
        assert_ne!(
            run_filter(DefenseMode::RandomizePerSession { seed: 7 }, 1),
            run_filter(DefenseMode::RandomizePerSession { seed: 8 }, 1)
        );
    }

    #[test]
    fn noise_actually_changes_pixels_but_sparsely() {
        let noisy = run_filter(DefenseMode::RandomizePerRender { seed: 3 }, 1);
        let clean = surface_with_content();
        let changed = noisy
            .iter()
            .zip(clean.data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0, "noise must perturb something");
        assert!(
            changed < noisy.len() / 4,
            "noise must be sparse, changed {changed}/{}",
            noisy.len()
        );
        // Alpha channel untouched.
        for i in (3..noisy.len()).step_by(4) {
            assert_eq!(noisy[i], clean.data()[i]);
        }
    }

    #[test]
    fn none_and_block_modes_build() {
        assert!(matches!(DefenseMode::None.build(), ReadbackDefense::None));
        assert!(matches!(DefenseMode::Block.build(), ReadbackDefense::Block));
    }
}
