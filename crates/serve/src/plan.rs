//! The admission plan: the daemon's entire control-plane decision
//! sequence, precomputed as a pure function.
//!
//! This is the serving analog of the crawler's `BreakerPlan`. A naive
//! daemon would make admission, shedding, and cache decisions on whatever
//! executor thread picks a request up — and the response stream would
//! then depend on worker interleaving. Instead, [`ServePlan::plan`] walks
//! the request schedule once, in arrival order, simulating the service
//! exactly:
//!
//! * **Bounded admission queue.** Queue depth is the number of admitted
//!   requests that have not started service yet. Depth at or past the
//!   shed ceiling (or the hard [`ServeConfig::queue_capacity`]) rejects
//!   with [`RejectReason::Overload`] and a retry-after hint — explicit
//!   backpressure, never an unbounded queue.
//! * **Tiered shedding.** Depth bands select the fidelity tier: full
//!   analysis below [`ShedThresholds::full_below`], cache-only below
//!   [`ShedThresholds::cache_only_below`], static-heuristic below
//!   [`ShedThresholds::heuristic_below`], typed rejection above.
//! * **Deadline propagation.** Service lanes are FIFO and non-preemptive,
//!   so a request's completion time is exactly computable at admission.
//!   If it misses the request's deadline, the request is rejected *now*,
//!   before any parse work — which is also why completed requests can
//!   never violate their deadlines (the soak gates assert exactly that).
//! * **Epoch bookkeeping.** Reload events apply between arrivals: the
//!   epoch counter advances, the rule diff maps changed domains to the
//!   analysis-cache shards that hold scripts served from them (via the
//!   host index accumulated so far), and those shards' epoch floors rise.
//!   Requests admitted earlier keep their admission epoch.
//!
//! Cache state in the plan advances at **admission**, mirroring the
//! parse-under-shard-lock semantics of the real caches: once a cold body
//! is admitted for full analysis, any later request for the same body
//! shares that analysis (it would block on the shard lock, not analyze
//! twice). The daemon replays these decisions, so plan and execution
//! agree exactly — a property the soak bin gates on.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

use canvassing_analysis::cache::SHARD_COUNT;
use canvassing_net::domain::registrable_domain;
use canvassing_net::{Network, Resource, Url};
use canvassing_script::source_hash;
use serde::{Deserialize, Serialize};

use crate::request::{Payload, RejectReason, ServeTier, VerdictRequest};
use crate::snapshot::{ReloadEvent, RuleSnapshot};

/// Queue-depth bands selecting the service tier (each bound exclusive:
/// tier applies while `depth < bound`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedThresholds {
    /// Full analysis below this depth.
    pub full_below: usize,
    /// Cache-only below this depth.
    pub cache_only_below: usize,
    /// Static-heuristic below this depth; at or past it, reject.
    pub heuristic_below: usize,
}

/// Serving configuration. All costs are simulated milliseconds; all of
/// them — and the lane count — are service-model parameters independent
/// of how many executor threads the daemon happens to run with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Simulated service parallelism (FIFO lanes).
    pub lanes: usize,
    /// Hard bound on admitted-but-not-started requests. With the default
    /// thresholds the shed ceiling rejects first, so this is a proved
    /// invariant (`max_queue_depth` never exceeds it), not a live limit.
    pub queue_capacity: usize,
    /// Shedding bands.
    pub shed: ShedThresholds,
    /// Max cold analyses amortized into one classifier batch per lane.
    pub batch_size: usize,
    /// Full-tier cost when the body is already (validly) classified.
    pub hit_cost_ms: u64,
    /// Fixed classifier startup cost for the first cold body of a batch.
    pub analysis_base_ms: u64,
    /// Per-KiB parse + taint cost of a cold body.
    pub analysis_per_kb_ms: u64,
    /// Cost of a cold body that joins an already-open batch (the batching
    /// win: the classifier startup is amortized across the batch), and of
    /// a duplicate body inside the current batch.
    pub batch_follower_ms: u64,
    /// Cache-only-tier lookup cost (hit or typed miss).
    pub lookup_cost_ms: u64,
    /// Static-heuristic scan cost.
    pub heuristic_cost_ms: u64,
    /// Cost of producing a typed fetch-failure response.
    pub failure_cost_ms: u64,
    /// Executor threads for the parse prewarm. Must never change
    /// response bytes (the soak gates compare across 1/4/8).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            lanes: 4,
            queue_capacity: 64,
            shed: ShedThresholds {
                full_below: 8,
                cache_only_below: 20,
                heuristic_below: 40,
            },
            batch_size: 8,
            hit_cost_ms: 4,
            analysis_base_ms: 40,
            analysis_per_kb_ms: 5,
            batch_follower_ms: 6,
            lookup_cost_ms: 2,
            heuristic_cost_ms: 3,
            failure_cost_ms: 2,
            workers: 4,
        }
    }
}

impl ServeConfig {
    /// The effective rejection ceiling: the shed bands' top or the hard
    /// queue bound, whichever is lower.
    pub fn reject_at(&self) -> usize {
        self.shed.heuristic_below.min(self.queue_capacity)
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Admitted at a tier.
    Serve(ServeTier),
    /// Turned away.
    Reject(RejectReason),
}

/// Everything the plan decided about one request. Indexed 1:1 with the
/// request schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Disposition {
    /// Admit/reject and tier.
    pub decision: Decision,
    /// Rule-snapshot epoch at admission.
    pub epoch: u64,
    /// Service lane (0 for rejections).
    pub lane: usize,
    /// Service start on the simulated clock (== arrival for rejections).
    pub start_ms: u64,
    /// Completion on the simulated clock (== arrival for rejections).
    pub finish_ms: u64,
    /// Queue depth observed at admission (after this arrival's pops,
    /// before this request joins).
    pub queue_depth: usize,
    /// Resolved body hash (`None` when the URL fetch failed).
    pub body_hash: Option<u64>,
    /// Stable error label when a URL payload failed to resolve.
    pub fetch_error: Option<&'static str>,
    /// Full tier: body was validly cached at admission (no analysis).
    pub cache_hit: bool,
    /// Cache-only tier: whether the lookup will hit.
    pub cache_only_hit: bool,
    /// Cold body that joined an open classifier batch (amortized cost),
    /// or duplicate body within the current batch.
    pub batch_follower: bool,
    /// Cold analysis of a body whose previous verdict was invalidated by
    /// a reload — a Durey-style incremental re-classification.
    pub reclassified: bool,
    /// Backpressure hint attached to rejections.
    pub retry_after_ms: u64,
}

/// One applied reload, in plan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedReload {
    /// Epoch the reload created.
    pub epoch: u64,
    /// Simulated instant it applied.
    pub at_ms: u64,
    /// Analysis-cache shards whose floors rose.
    pub invalidated_shards: BTreeSet<usize>,
}

/// The full precomputed serving schedule.
#[derive(Debug, Clone)]
pub struct ServePlan {
    /// Per-request decisions, indexed like the request schedule.
    pub dispositions: Vec<Disposition>,
    /// Rule snapshots by epoch (index == epoch).
    pub snapshots: Vec<Arc<RuleSnapshot>>,
    /// Reloads applied, in order.
    pub reloads: Vec<AppliedReload>,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Unique bodies the plan schedules for cold analysis (the daemon's
    /// prewarm set), in first-admission order.
    pub cold_bodies: Vec<u64>,
}

/// Per-lane batching state.
#[derive(Debug, Clone, Default)]
struct LaneBatch {
    /// Bodies in the current batch.
    hashes: BTreeSet<u64>,
    /// Members so far.
    len: usize,
    /// Whether the batch already paid the classifier startup cost.
    has_cold: bool,
}

/// Mutable cache model shared by the plan walk.
struct CacheModel {
    /// Body hash → epoch its cached analysis was computed under.
    known: HashMap<u64, u64>,
    /// Per-shard epoch floors (entry valid iff `epoch >= floor[shard]`).
    floors: [u64; SHARD_COUNT],
    /// Script URL → body hash, for URL-keyed cache-only hits.
    url_seen: HashMap<Url, u64>,
    /// Registrable domain a body was served from → shards holding it
    /// (drives targeted invalidation on reload).
    host_index: BTreeMap<String, BTreeSet<usize>>,
}

impl CacheModel {
    fn valid(&self, hash: u64) -> bool {
        self.known
            .get(&hash)
            .is_some_and(|epoch| *epoch >= self.floors[(hash as usize) % SHARD_COUNT])
    }
}

impl ServePlan {
    /// Plans the whole schedule. `requests` must be sorted by
    /// `(arrival_ms, id)` (the load generator emits them that way);
    /// `reloads` by `at_ms`. `network` resolves URL payloads — without
    /// one, every URL payload fails typed (`no-network`).
    pub fn plan(
        requests: &[VerdictRequest],
        reloads: &[ReloadEvent],
        config: &ServeConfig,
        network: Option<&Network>,
        boot: RuleSnapshot,
    ) -> ServePlan {
        let mut snapshots = vec![Arc::new(boot)];
        let mut plan = ServePlan {
            dispositions: Vec::with_capacity(requests.len()),
            snapshots: Vec::new(),
            reloads: Vec::new(),
            max_queue_depth: 0,
            cold_bodies: Vec::new(),
        };
        let mut cache = CacheModel {
            known: HashMap::new(),
            floors: [0; SHARD_COUNT],
            url_seen: HashMap::new(),
            host_index: BTreeMap::new(),
        };
        let mut lane_free = vec![0u64; config.lanes.max(1)];
        let mut lane_batch = vec![LaneBatch::default(); config.lanes.max(1)];
        // Start times of admitted-not-started requests.
        let mut pending_starts: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut reload_idx = 0usize;

        for req in requests {
            let now = req.arrival_ms;
            // Apply reloads that landed before (or at) this arrival.
            while reload_idx < reloads.len() && reloads[reload_idx].at_ms <= now {
                let ev = &reloads[reload_idx];
                reload_idx += 1;
                let current = snapshots
                    .last()
                    .map(Arc::clone)
                    .unwrap_or_else(|| unreachable!("boot snapshot always present"));
                let epoch = current.epoch + 1;
                let next = RuleSnapshot::new(
                    epoch,
                    &ev.name,
                    &ev.list_text,
                    ev.vendor_patterns
                        .clone()
                        .unwrap_or_else(|| current.vendor_patterns.clone()),
                );
                let diff = current.diff(&next);
                let shards: BTreeSet<usize> = if diff.unanchored {
                    (0..SHARD_COUNT).collect()
                } else {
                    diff.domains
                        .iter()
                        .flat_map(|d| {
                            cache
                                .host_index
                                .get(d)
                                .into_iter()
                                .flatten()
                                .copied()
                                .collect::<Vec<_>>()
                        })
                        .collect()
                };
                for s in &shards {
                    cache.floors[*s] = cache.floors[*s].max(epoch);
                }
                plan.reloads.push(AppliedReload {
                    epoch,
                    at_ms: ev.at_ms,
                    invalidated_shards: shards,
                });
                snapshots.push(Arc::new(next));
            }
            let epoch = snapshots
                .last()
                .map(|s| s.epoch)
                .unwrap_or_else(|| unreachable!("boot snapshot always present"));

            // Requests whose service already started are no longer queued.
            while pending_starts
                .peek()
                .is_some_and(|Reverse(start)| *start <= now)
            {
                pending_starts.pop();
            }
            let depth = pending_starts.len();
            plan.max_queue_depth = plan.max_queue_depth.max(depth);

            let reject = |reason, retry_after_ms, depth| Disposition {
                decision: Decision::Reject(reason),
                epoch,
                lane: 0,
                start_ms: now,
                finish_ms: now,
                queue_depth: depth,
                body_hash: None,
                fetch_error: None,
                cache_hit: false,
                cache_only_hit: false,
                batch_follower: false,
                reclassified: false,
                retry_after_ms,
            };

            // Tier ladder (bounded queue with explicit backpressure).
            let tier = if depth >= config.reject_at() {
                let earliest = lane_free.iter().copied().min().unwrap_or(now);
                plan.dispositions.push(reject(
                    RejectReason::Overload,
                    earliest.saturating_sub(now),
                    depth,
                ));
                continue;
            } else if depth < config.shed.full_below {
                ServeTier::Full
            } else if depth < config.shed.cache_only_below {
                ServeTier::CacheOnly
            } else {
                ServeTier::Heuristic
            };

            // Resolve the payload (plan-time, pure). URL payloads ride the
            // fault model through `probe` — panics included — and fetch
            // failures become typed responses, never drops.
            let mut fetch_error: Option<&'static str> = None;
            let mut probe_latency = 0u64;
            let mut source: Option<&str> = None;
            let mut url: Option<&Url> = None;
            match &req.payload {
                Payload::Body { source: body } => source = Some(body),
                Payload::Url { url: u } => {
                    url = Some(u);
                    match network {
                        None => fetch_error = Some("no-network"),
                        Some(net) => match net.probe(u, 0) {
                            Err(e) => fetch_error = Some(e.kind_label()),
                            Ok(latency) => match net.peek(u) {
                                Some(Resource::Script(s)) => {
                                    probe_latency = latency;
                                    source = Some(&s.source);
                                }
                                _ => fetch_error = Some("not-found"),
                            },
                        },
                    }
                }
            }
            let hash = source.map(source_hash);

            // Cost model per tier.
            let url_cached = url
                .and_then(|u| cache.url_seen.get(u))
                .copied()
                .is_some_and(|h| cache.valid(h));
            let mut cache_hit = false;
            let mut cache_only_hit = false;
            let mut cold = false;
            let (lane, start);
            {
                // Lane choice: earliest-free, ties to the lowest index.
                let mut best = 0usize;
                for (i, free) in lane_free.iter().enumerate() {
                    if *free < lane_free[best] {
                        best = i;
                    }
                }
                lane = best;
                start = now.max(lane_free[lane]);
            }
            // Batch continuity: back-to-back service on the same lane
            // extends the batch; any idle gap (or a full batch) seals it.
            let continues_batch =
                start == lane_free[lane] && lane_batch[lane].len < config.batch_size;
            let mut batch_follower = false;
            let cost = match (tier, fetch_error, hash) {
                (_, Some(_), _) => config.failure_cost_ms,
                (ServeTier::Full, None, Some(h)) => {
                    let in_batch = continues_batch && lane_batch[lane].hashes.contains(&h);
                    if url.is_some() && url_cached {
                        // URL-keyed hit: no fetch, no analysis.
                        cache_hit = true;
                        config.hit_cost_ms
                    } else if cache.valid(h) {
                        cache_hit = true;
                        if in_batch {
                            batch_follower = true;
                            probe_latency + config.batch_follower_ms
                        } else {
                            probe_latency + config.hit_cost_ms
                        }
                    } else {
                        cold = true;
                        let kib = source.map(|s| s.len() as u64 / 1024).unwrap_or(0);
                        let base = if continues_batch && lane_batch[lane].has_cold {
                            batch_follower = true;
                            config.batch_follower_ms
                        } else {
                            config.analysis_base_ms
                        };
                        probe_latency + base + kib * config.analysis_per_kb_ms
                    }
                }
                (ServeTier::CacheOnly, None, Some(h)) => {
                    // Cache-only never fetches: URL payloads hit only via
                    // the URL-keyed index; body payloads via the body hash.
                    cache_only_hit = if url.is_some() {
                        url_cached
                    } else {
                        cache.valid(h)
                    };
                    config.lookup_cost_ms
                }
                (ServeTier::Heuristic, None, Some(_)) => probe_latency + config.heuristic_cost_ms,
                (_, None, None) => unreachable!("no fetch error implies a resolved body"),
            };
            let finish = start + cost;

            // Deadline propagation: decided before any state mutation, so
            // a rejected request consumes no lane time, no queue slot, and
            // no cache writes.
            if req.deadline_ms.is_some_and(|d| finish > d) {
                let late = finish - req.deadline_ms.unwrap_or(finish);
                plan.dispositions
                    .push(reject(RejectReason::DeadlineUnmeetable, late, depth));
                continue;
            }

            // Commit.
            let reclassified = cold && hash.is_some_and(|h| cache.known.contains_key(&h));
            if cold {
                if let Some(h) = hash {
                    if !cache.known.contains_key(&h) {
                        plan.cold_bodies.push(h);
                    }
                    cache.known.insert(h, epoch);
                }
            }
            if matches!(tier, ServeTier::Full | ServeTier::Heuristic) && fetch_error.is_none() {
                if let (Some(u), Some(h)) = (url, hash) {
                    cache.url_seen.insert(u.clone(), h);
                    let domain = registrable_domain(&u.host).unwrap_or(&u.host).to_string();
                    cache
                        .host_index
                        .entry(domain)
                        .or_default()
                        .insert((h as usize) % SHARD_COUNT);
                }
            }
            if continues_batch {
                lane_batch[lane].len += 1;
            } else {
                lane_batch[lane] = LaneBatch::default();
                lane_batch[lane].len = 1;
            }
            if let Some(h) = hash {
                lane_batch[lane].hashes.insert(h);
            }
            lane_batch[lane].has_cold |= cold;
            lane_free[lane] = finish;
            if start > now {
                pending_starts.push(Reverse(start));
            }
            plan.dispositions.push(Disposition {
                decision: Decision::Serve(tier),
                epoch,
                lane,
                start_ms: start,
                finish_ms: finish,
                queue_depth: depth,
                body_hash: hash,
                fetch_error,
                cache_hit,
                cache_only_hit,
                batch_follower,
                reclassified,
                retry_after_ms: 0,
            });
        }
        plan.snapshots = snapshots;
        plan
    }

    /// Predicted cold analyses (the count the daemon's analysis cache
    /// must report after execution — a soak gate).
    pub fn predicted_analyses(&self) -> u64 {
        self.dispositions
            .iter()
            .filter(|d| {
                matches!(d.decision, Decision::Serve(ServeTier::Full))
                    && d.fetch_error.is_none()
                    && !d.cache_hit
            })
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn body_req(id: u64, arrival: u64, src: &str) -> VerdictRequest {
        VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Body {
                source: src.to_string(),
            },
            phase: 0,
        }
    }

    fn boot() -> RuleSnapshot {
        RuleSnapshot::new(0, "boot", "||tracker.net^\n", BTreeMap::new())
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            lanes: 1,
            shed: ShedThresholds {
                full_below: 2,
                cache_only_below: 4,
                heuristic_below: 6,
            },
            queue_capacity: 6,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn light_load_is_all_full_tier_and_queue_stays_shallow() {
        let reqs: Vec<VerdictRequest> = (0..5)
            .map(|i| body_req(i, i * 1000, &format!("let x{i} = {i};")))
            .collect();
        let plan = ServePlan::plan(&reqs, &[], &small_config(), None, boot());
        for d in &plan.dispositions {
            assert_eq!(d.decision, Decision::Serve(ServeTier::Full));
            assert!(!d.cache_hit, "distinct bodies are all cold");
        }
        assert_eq!(plan.max_queue_depth, 0);
        assert_eq!(plan.predicted_analyses(), 5);
        assert_eq!(plan.cold_bodies.len(), 5);
    }

    #[test]
    fn same_arrival_burst_walks_the_tier_ladder_and_rejects() {
        // 12 simultaneous cold bodies on one lane. Request 0 starts at
        // t=0 (never queued), so the queue depth seen by request i is
        // i-1: depths cross full<2 after request 2, cache<4 after
        // request 4, heuristic<6 after request 6, then reject.
        let reqs: Vec<VerdictRequest> = (0..12)
            .map(|i| body_req(i, 0, &format!("let y{i} = {i};")))
            .collect();
        let plan = ServePlan::plan(&reqs, &[], &small_config(), None, boot());
        let tiers: Vec<Decision> = plan.dispositions.iter().map(|d| d.decision).collect();
        for t in &tiers[0..3] {
            assert_eq!(*t, Decision::Serve(ServeTier::Full));
        }
        for t in &tiers[3..5] {
            assert_eq!(*t, Decision::Serve(ServeTier::CacheOnly));
        }
        for t in &tiers[5..7] {
            assert_eq!(*t, Decision::Serve(ServeTier::Heuristic));
        }
        for t in &tiers[7..] {
            assert_eq!(*t, Decision::Reject(RejectReason::Overload));
        }
        // The bounded queue never exceeds the rejection ceiling.
        assert_eq!(plan.max_queue_depth, 6);
        // Partition: every request got exactly one disposition.
        assert_eq!(plan.dispositions.len(), reqs.len());
    }

    #[test]
    fn deadline_unmeetable_rejects_at_admission_without_lane_mutation() {
        let slow = "x".repeat(64 * 1024); // 64 KiB: 40 + 64*5 = 360ms cold
        let mut first = body_req(0, 0, &slow);
        first.deadline_ms = Some(10_000);
        let mut doomed = body_req(1, 0, &slow);
        doomed.deadline_ms = Some(100); // queued behind 360ms of work
        let mut fine = body_req(2, 0, "let z = 1;");
        fine.deadline_ms = Some(10_000);
        let plan = ServePlan::plan(&[first, doomed, fine], &[], &small_config(), None, boot());
        assert!(matches!(
            plan.dispositions[0].decision,
            Decision::Serve(ServeTier::Full)
        ));
        assert_eq!(
            plan.dispositions[1].decision,
            Decision::Reject(RejectReason::DeadlineUnmeetable)
        );
        assert!(plan.dispositions[1].retry_after_ms > 0);
        // The rejected request consumed no lane time: request 2 starts
        // exactly when request 0 finishes.
        assert_eq!(
            plan.dispositions[2].start_ms,
            plan.dispositions[0].finish_ms
        );
    }

    #[test]
    fn duplicate_bodies_share_one_analysis() {
        let reqs: Vec<VerdictRequest> = (0..6)
            .map(|i| body_req(i, i * 1000, "let shared = 1;"))
            .collect();
        let plan = ServePlan::plan(&reqs, &[], &small_config(), None, boot());
        assert_eq!(plan.predicted_analyses(), 1);
        assert!(!plan.dispositions[0].cache_hit);
        for d in &plan.dispositions[1..] {
            assert!(d.cache_hit, "later duplicates hit");
        }
    }

    #[test]
    fn reload_invalidates_only_affected_shards_and_drives_reclassification() {
        use canvassing_net::{Resource, ScriptResource};
        let mut network = Network::new();
        let tracked = Url::https("tracker.net", "/fp.js");
        let clean = Url::https("clean.example", "/app.js");
        network.host(
            &tracked,
            Resource::Script(ScriptResource {
                source: "let t = 1;".into(),
                label: "t".into(),
            }),
        );
        network.host(
            &clean,
            Resource::Script(ScriptResource {
                source: "let c = 2;".into(),
                label: "c".into(),
            }),
        );
        let url_req = |id, arrival, u: &Url| VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Url { url: u.clone() },
            phase: 0,
        };
        let reqs = vec![
            url_req(0, 0, &tracked),
            url_req(1, 1000, &clean),
            // After the reload (at 5000): tracked must re-classify,
            // clean must still hit — *unless* they collide into one
            // shard, which the assertion below tolerates explicitly.
            url_req(2, 6000, &tracked),
            url_req(3, 7000, &clean),
        ];
        let reload = ReloadEvent {
            at_ms: 5000,
            name: "v2".into(),
            list_text: "||tracker.net^\n||tracker.net^$script\n".into(),
            vendor_patterns: None,
        };
        let plan = ServePlan::plan(&reqs, &[reload], &small_config(), Some(&network), boot());
        assert_eq!(plan.reloads.len(), 1);
        let invalidated = &plan.reloads[0].invalidated_shards;
        let t_shard = (source_hash("let t = 1;") as usize) % SHARD_COUNT;
        let c_shard = (source_hash("let c = 2;") as usize) % SHARD_COUNT;
        assert!(invalidated.contains(&t_shard), "tracked body's shard");
        assert!(plan.dispositions[2].reclassified, "tracked re-classifies");
        assert_eq!(plan.dispositions[2].epoch, 1);
        if c_shard != t_shard {
            assert!(!invalidated.contains(&c_shard), "clean shard untouched");
            assert!(plan.dispositions[3].cache_hit, "clean body still hot");
            assert!(!plan.dispositions[3].reclassified);
        }
        assert_eq!(plan.dispositions[0].epoch, 0);
        assert_eq!(plan.dispositions[3].epoch, 1);
    }

    #[test]
    fn url_faults_become_typed_errors_not_drops() {
        use canvassing_net::Fault;
        let mut network = Network::new();
        let dead = Url::https("down.example", "/x.js");
        network.host(
            &dead,
            Resource::Script(canvassing_net::ScriptResource {
                source: "let d = 1;".into(),
                label: "d".into(),
            }),
        );
        network.faults.take_down("down.example");
        let boom = Url::https("boom.example", "/y.js");
        network.host(
            &boom,
            Resource::Script(canvassing_net::ScriptResource {
                source: "let b = 1;".into(),
                label: "b".into(),
            }),
        );
        network.faults.inject("boom.example", Fault::Panic);
        let reqs = vec![
            VerdictRequest {
                id: 0,
                arrival_ms: 0,
                deadline_ms: None,
                payload: Payload::Url { url: dead },
                phase: 0,
            },
            VerdictRequest {
                id: 1,
                arrival_ms: 100,
                deadline_ms: None,
                payload: Payload::Url { url: boom },
                phase: 0,
            },
        ];
        let plan = ServePlan::plan(&reqs, &[], &small_config(), Some(&network), boot());
        assert_eq!(plan.dispositions[0].fetch_error, Some("unreachable"));
        // Panic hosts probe as failures: planning must never crash.
        assert!(plan.dispositions[1].fetch_error.is_some());
        assert_eq!(plan.predicted_analyses(), 0);
    }

    #[test]
    fn plan_is_deterministic() {
        let reqs: Vec<VerdictRequest> = (0..50)
            .map(|i| body_req(i, (i * 37) % 400, &format!("let v{} = 1;", i % 7)))
            .collect();
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| (r.arrival_ms, r.id));
        let a = ServePlan::plan(&sorted, &[], &ServeConfig::default(), None, boot());
        let b = ServePlan::plan(&sorted, &[], &ServeConfig::default(), None, boot());
        assert_eq!(a.dispositions, b.dispositions);
    }
}
