//! Serving-run statistics: the shed-tier partition, exact latency
//! percentiles, throughput, and per-phase breakdowns.
//!
//! All fields are integers (latencies in simulated ms; `qps_x1000` is a
//! fixed-point rate) so the serialized JSON — the `BENCH_6.json` gate
//! artifact — is byte-stable across platforms and float-formatting
//! quirks. Percentiles are computed exactly (nearest-rank over the
//! sorted completed-latency list), with the trace layer's log2 histogram
//! only cross-checking them from above.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::daemon::ServeOutput;
use crate::plan::Decision;
use crate::request::{RejectReason, ServeTier, Served, VerdictRequest};

/// How many requests landed in each tier / rejection bucket. The
/// partition invariant `full + cache_only + heuristic + rejected_* ==
/// offered` is a soak gate: a daemon that drops requests can't satisfy
/// it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCounts {
    /// Admitted at full fidelity.
    pub full: u64,
    /// Shed to cache-only.
    pub cache_only: u64,
    /// Shed to static-heuristic.
    pub heuristic: u64,
    /// Rejected: queue over the shedding ceiling.
    pub rejected_overload: u64,
    /// Rejected: predicted completion past the deadline.
    pub rejected_deadline: u64,
}

impl TierCounts {
    /// Admitted requests (any fidelity).
    pub fn admitted(&self) -> u64 {
        self.full + self.cache_only + self.heuristic
    }

    /// Requests shed below full fidelity.
    pub fn shed(&self) -> u64 {
        self.cache_only + self.heuristic
    }

    /// Rejected requests.
    pub fn rejected(&self) -> u64 {
        self.rejected_overload + self.rejected_deadline
    }

    /// The whole partition.
    pub fn total(&self) -> u64 {
        self.admitted() + self.rejected()
    }
}

/// Per-phase slice of the run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label from the load profile ("burst", ...).
    pub label: String,
    /// Requests offered during the phase.
    pub offered: u64,
    /// Tier partition within the phase.
    pub tiers: TierCounts,
    /// Shed rate in tenths of a percent (integer fixed-point).
    pub shed_per_mille: u64,
}

/// The full run summary (the `BENCH_6.json` schema).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests offered.
    pub offered: u64,
    /// Requests completed (served at any tier, incl. typed misses and
    /// fetch failures).
    pub completed: u64,
    /// Tier partition over the whole run.
    pub tiers: TierCounts,
    /// Full-tier answers served from the warm analysis cache.
    pub full_cache_hits: u64,
    /// Cold analyses actually run.
    pub cold_analyses: u64,
    /// Cold analyses amortized into an open classifier batch.
    pub batch_followers: u64,
    /// Re-classifications forced by reload invalidation.
    pub reclassified: u64,
    /// Cache-only answers that hit.
    pub cache_only_hits: u64,
    /// Cache-only typed misses.
    pub cache_only_misses: u64,
    /// URL payloads whose resolution failed (typed responses).
    pub fetch_failures: u64,
    /// Completed responses that finished past their deadline. Deadline
    /// propagation rejects those at admission, so this must be zero —
    /// gated in the soak.
    pub deadline_violations: u64,
    /// Hot reloads applied.
    pub reloads: u64,
    /// Analysis-cache shards invalidated by reloads.
    pub shards_invalidated: u64,
    /// Queue high-water mark.
    pub max_queue_depth: u64,
    /// Exact nearest-rank p50 of completed end-to-end latency (ms).
    pub p50_latency_ms: u64,
    /// Exact nearest-rank p99.
    pub p99_latency_ms: u64,
    /// Slowest completed request.
    pub max_latency_ms: u64,
    /// Mean completed latency in fixed-point (ms × 1000).
    pub mean_latency_us: u64,
    /// Wall-clock of the simulated run: last finish − first arrival.
    pub makespan_ms: u64,
    /// Completed requests per simulated second, fixed-point × 1000.
    pub qps_x1000: u64,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseStats>,
}

impl ServeStats {
    /// Computes the summary from a run. `phase_labels` names the phase
    /// indices the requests carry (requests with out-of-range phases
    /// group under their numeric index).
    pub fn compute(
        requests: &[VerdictRequest],
        output: &ServeOutput,
        phase_labels: &[String],
    ) -> ServeStats {
        let mut stats = ServeStats {
            offered: requests.len() as u64,
            ..ServeStats::default()
        };
        let mut latencies: Vec<u64> = Vec::new();
        let mut phases: BTreeMap<u32, PhaseStats> = BTreeMap::new();
        for ((req, resp), disp) in requests
            .iter()
            .zip(&output.responses)
            .zip(&output.plan.dispositions)
        {
            let phase = phases.entry(req.phase).or_insert_with(|| PhaseStats {
                label: phase_labels
                    .get(req.phase as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("phase-{}", req.phase)),
                ..PhaseStats::default()
            });
            phase.offered += 1;
            // The admission decision partitions the request; the served
            // outcome adds hit/miss/failure detail within it.
            match disp.decision {
                Decision::Reject(RejectReason::Overload) => {
                    stats.tiers.rejected_overload += 1;
                    phase.tiers.rejected_overload += 1;
                    continue;
                }
                Decision::Reject(RejectReason::DeadlineUnmeetable) => {
                    stats.tiers.rejected_deadline += 1;
                    phase.tiers.rejected_deadline += 1;
                    continue;
                }
                Decision::Serve(ServeTier::Full) => {
                    stats.tiers.full += 1;
                    phase.tiers.full += 1;
                }
                Decision::Serve(ServeTier::CacheOnly) => {
                    stats.tiers.cache_only += 1;
                    phase.tiers.cache_only += 1;
                }
                Decision::Serve(ServeTier::Heuristic) => {
                    stats.tiers.heuristic += 1;
                    phase.tiers.heuristic += 1;
                }
            }
            stats.completed += 1;
            latencies.push(resp.latency_ms());
            if req.deadline_ms.is_some_and(|d| resp.finish_ms > d) {
                stats.deadline_violations += 1;
            }
            match &resp.served {
                Served::CacheOnly { .. } => stats.cache_only_hits += 1,
                Served::CacheMiss => stats.cache_only_misses += 1,
                Served::FetchFailed { .. } => stats.fetch_failures += 1,
                _ => {}
            }
            if matches!(disp.decision, Decision::Serve(ServeTier::Full))
                && disp.fetch_error.is_none()
            {
                if disp.cache_hit {
                    stats.full_cache_hits += 1;
                } else {
                    stats.cold_analyses += 1;
                }
                if disp.batch_follower {
                    stats.batch_followers += 1;
                }
                if disp.reclassified {
                    stats.reclassified += 1;
                }
            }
        }
        stats.reloads = output.plan.reloads.len() as u64;
        stats.shards_invalidated = output
            .plan
            .reloads
            .iter()
            .map(|r| r.invalidated_shards.len() as u64)
            .sum();
        stats.max_queue_depth = output.plan.max_queue_depth as u64;

        latencies.sort_unstable();
        stats.p50_latency_ms = nearest_rank(&latencies, 50);
        stats.p99_latency_ms = nearest_rank(&latencies, 99);
        stats.max_latency_ms = latencies.last().copied().unwrap_or(0);
        if !latencies.is_empty() {
            stats.mean_latency_us = latencies.iter().sum::<u64>() * 1_000 / latencies.len() as u64;
        }
        let first_arrival = requests.first().map(|r| r.arrival_ms).unwrap_or(0);
        let last_finish = output
            .responses
            .iter()
            .map(|r| r.finish_ms)
            .max()
            .unwrap_or(first_arrival);
        stats.makespan_ms = last_finish.saturating_sub(first_arrival);
        stats.qps_x1000 = (stats.completed * 1_000_000)
            .checked_div(stats.makespan_ms)
            .unwrap_or(0);
        for phase in phases.values_mut() {
            phase.shed_per_mille = ((phase.tiers.shed() + phase.tiers.rejected()) * 1_000)
                .checked_div(phase.offered)
                .unwrap_or(0);
        }
        stats.phases = phases.into_values().collect();
        stats
    }

    /// Whether the tier partition is exact: admitted + rejected covers
    /// every offered request with nothing dropped or double-counted.
    pub fn partition_exact(&self) -> bool {
        self.tiers.total() == self.offered && self.tiers.admitted() == self.completed
    }

    /// Human-readable block (stable formatting; used by the report
    /// section and the soak's stdout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offered {}  completed {}  rejected {} (overload {}, deadline {})\n",
            self.offered,
            self.completed,
            self.tiers.rejected(),
            self.tiers.rejected_overload,
            self.tiers.rejected_deadline,
        ));
        out.push_str(&format!(
            "tiers: full {} (hits {}, cold {}, batched {}, reclassified {})  cache-only {} (hits {}, misses {})  heuristic {}\n",
            self.tiers.full,
            self.full_cache_hits,
            self.cold_analyses,
            self.batch_followers,
            self.reclassified,
            self.tiers.cache_only,
            self.cache_only_hits,
            self.cache_only_misses,
            self.tiers.heuristic,
        ));
        out.push_str(&format!(
            "latency: p50 {}ms  p99 {}ms  max {}ms  mean {}.{:03}ms\n",
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.max_latency_ms,
            self.mean_latency_us / 1_000,
            self.mean_latency_us % 1_000,
        ));
        out.push_str(&format!(
            "throughput: {}.{:03} req/s over {}ms  queue-depth max {}  reloads {} ({} shards)\n",
            self.qps_x1000 / 1_000,
            self.qps_x1000 % 1_000,
            self.makespan_ms,
            self.max_queue_depth,
            self.reloads,
            self.shards_invalidated,
        ));
        for phase in &self.phases {
            out.push_str(&format!(
                "  phase {:>8}: offered {:>6}  full {:>6}  cache-only {:>6}  heuristic {:>6}  rejected {:>6}  degraded {}.{}%\n",
                phase.label,
                phase.offered,
                phase.tiers.full,
                phase.tiers.cache_only,
                phase.tiers.heuristic,
                phase.tiers.rejected(),
                phase.shed_per_mille / 10,
                phase.shed_per_mille % 10,
            ));
        }
        out
    }
}

/// Exact nearest-rank percentile of a sorted list (0 when empty).
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1);
    sorted[(rank as usize - 1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::VerdictService;
    use crate::plan::{ServeConfig, ShedThresholds};
    use crate::request::Payload;
    use crate::snapshot::RuleSnapshot;

    fn body_req(id: u64, arrival: u64, src: &str) -> VerdictRequest {
        VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Body {
                source: src.to_string(),
            },
            phase: (arrival / 100) as u32 % 2,
        }
    }

    #[test]
    fn nearest_rank_is_exact() {
        let sorted = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(nearest_rank(&sorted, 50), 5);
        assert_eq!(nearest_rank(&sorted, 99), 10);
        assert_eq!(nearest_rank(&sorted, 100), 10);
        assert_eq!(nearest_rank(&sorted, 1), 1);
        assert_eq!(nearest_rank(&[], 50), 0);
        assert_eq!(nearest_rank(&[7], 50), 7);
    }

    #[test]
    fn partition_is_exact_under_pressure() {
        let config = ServeConfig {
            lanes: 1,
            shed: ShedThresholds {
                full_below: 1,
                cache_only_below: 2,
                heuristic_below: 3,
            },
            ..ServeConfig::default()
        };
        let service = VerdictService::new(config);
        let reqs: Vec<VerdictRequest> = (0..20)
            .map(|i| body_req(i, (i / 4) * 2, &format!("let q{} = 1;", i % 3)))
            .collect();
        let boot = RuleSnapshot::new(0, "b", "", RuleSnapshot::standard_vendor_patterns());
        let out = service.serve(&reqs, &[], boot, None, None);
        let stats = ServeStats::compute(&reqs, &out, &["even".into(), "odd".into()]);
        assert!(
            stats.partition_exact(),
            "partition must be exact: {stats:?}"
        );
        assert_eq!(stats.offered, 20);
        assert!(stats.tiers.rejected() > 0, "pressure must reject some");
        assert!(stats.tiers.shed() > 0, "pressure must shed some");
        assert_eq!(stats.deadline_violations, 0);
        let phase_total: u64 = stats.phases.iter().map(|p| p.offered).sum();
        assert_eq!(phase_total, 20);
        let rendered = stats.render();
        assert!(rendered.contains("offered 20"));
        assert!(rendered.contains("phase"));
    }

    #[test]
    fn stats_json_is_stable() {
        let service = VerdictService::new(ServeConfig::default());
        let reqs: Vec<VerdictRequest> =
            (0..10).map(|i| body_req(i, i * 50, "let s = 1;")).collect();
        let boot = RuleSnapshot::new(0, "b", "", RuleSnapshot::standard_vendor_patterns());
        let out = service.serve(&reqs, &[], boot, None, None);
        let stats = ServeStats::compute(&reqs, &out, &[]);
        let a =
            serde_json::to_string_pretty(&stats).unwrap_or_else(|e| panic!("stats serialize: {e}"));
        let again = ServeStats::compute(&reqs, &out, &[]);
        let b =
            serde_json::to_string_pretty(&again).unwrap_or_else(|e| panic!("stats serialize: {e}"));
        assert_eq!(a, b);
        let back: ServeStats =
            serde_json::from_str(&a).unwrap_or_else(|e| panic!("stats roundtrip: {e}"));
        assert_eq!(back, stats);
    }
}
