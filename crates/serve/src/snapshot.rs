//! Epoch-swapped rule snapshots and hot reload events.
//!
//! The daemon never mutates rules in place. A [`RuleSnapshot`] is an
//! immutable, `Arc`-shared bundle of (blocklist index + vendor rules)
//! tagged with an epoch number; a [`ReloadEvent`] swaps in a new snapshot
//! at a simulated instant. Requests admitted before the swap keep their
//! admission snapshot `Arc` until they finish — a reload can therefore
//! never mix rule generations within one response, and never drops an
//! in-flight request.
//!
//! Reload also drives *incremental re-classification* (Durey et al.,
//! arXiv 2103.00590: verdicts must follow the rules that justify them):
//! [`RuleSnapshot::diff`] computes which anchor domains changed between
//! two snapshots, the daemon maps those domains to the analysis-cache
//! shards that hold scripts served from them, and only those shards are
//! invalidated — cold traffic re-classifies exactly the affected bodies
//! while the rest of the cache stays hot.

use std::collections::{BTreeMap, BTreeSet};

use canvassing_blocklist::{FilterList, IndexedFilterList, RequestContext, Verdict};
use canvassing_net::domain::registrable_domain;
use canvassing_net::{ResourceType, Url};

/// What changed between two snapshots, in cache-invalidation terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleDiff {
    /// Anchor domains of added/removed `||domain`-style rules and of
    /// host-shaped vendor patterns, reduced to registrable domains.
    pub domains: BTreeSet<String>,
    /// Whether any changed rule cannot be attributed to a host (plain
    /// substring rules, path-shaped vendor patterns): such a change can
    /// affect any script, so the whole cache must be invalidated.
    pub unanchored: bool,
}

impl RuleDiff {
    /// Whether the diff is empty (a no-op reload).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty() && !self.unanchored
    }
}

/// An immutable rule generation.
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    /// Epoch number (0 for the boot snapshot; +1 per reload).
    pub epoch: u64,
    /// List name (diagnostics only).
    pub name: String,
    /// The compiled, host-indexed blocklist.
    pub index: IndexedFilterList,
    /// Vendor attribution rules: URL substring pattern → vendor name
    /// (the Table 3 script-pattern method, hot-reloadable like the list).
    pub vendor_patterns: BTreeMap<String, String>,
    /// Raw non-comment rule lines, kept for diffing against the next
    /// generation.
    raw_lines: BTreeSet<String>,
}

impl RuleSnapshot {
    /// Compiles a snapshot from filter-list text and vendor patterns.
    pub fn new(
        epoch: u64,
        name: &str,
        list_text: &str,
        vendor_patterns: BTreeMap<String, String>,
    ) -> RuleSnapshot {
        let list = FilterList::parse(name, list_text);
        let index = IndexedFilterList::build(&list);
        let raw_lines = list_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('!'))
            .map(str::to_string)
            .collect();
        RuleSnapshot {
            epoch,
            name: name.to_string(),
            index,
            vendor_patterns,
            raw_lines,
        }
    }

    /// The Table 3 vendor URL patterns shipped with the repo, as the boot
    /// vendor-rule set.
    pub fn standard_vendor_patterns() -> BTreeMap<String, String> {
        canvassing_vendors::all_vendors()
            .iter()
            .filter_map(|v| v.url_pattern.map(|p| (p.to_string(), v.name.to_string())))
            .collect()
    }

    /// Whether this snapshot's blocklist covers a script URL (the §5.1
    /// static-coverage question, page-context-free like
    /// `FilterList::covers_script_url`).
    pub fn covers(&self, url: &Url) -> bool {
        let ctx = RequestContext::new(
            url.clone(),
            ResourceType::Script,
            false,
            "adblockparser.invalid",
        );
        matches!(self.index.evaluate(&ctx), Verdict::Block(_))
    }

    /// Vendor attribution of a script URL under this snapshot's vendor
    /// rules (first matching pattern in map order — deterministic).
    pub fn vendor_for(&self, url: &Url) -> Option<&str> {
        let rendered = url.to_string();
        self.vendor_patterns
            .iter()
            .find(|(pattern, _)| rendered.contains(pattern.as_str()))
            .map(|(_, name)| name.as_str())
    }

    /// The invalidation-relevant difference between this snapshot and the
    /// next generation.
    pub fn diff(&self, next: &RuleSnapshot) -> RuleDiff {
        let mut diff = RuleDiff::default();
        for line in self
            .raw_lines
            .symmetric_difference(&next.raw_lines)
            .map(String::as_str)
        {
            match rule_anchor_domain(line) {
                Some(domain) => {
                    diff.domains.insert(domain);
                }
                None => diff.unanchored = true,
            }
        }
        let old: BTreeSet<(&str, &str)> = self
            .vendor_patterns
            .iter()
            .map(|(p, v)| (p.as_str(), v.as_str()))
            .collect();
        let new: BTreeSet<(&str, &str)> = next
            .vendor_patterns
            .iter()
            .map(|(p, v)| (p.as_str(), v.as_str()))
            .collect();
        for (pattern, _) in old.symmetric_difference(&new) {
            match pattern_anchor_domain(pattern) {
                Some(domain) => {
                    diff.domains.insert(domain);
                }
                None => diff.unanchored = true,
            }
        }
        diff
    }
}

/// Anchor domain of a filter rule line: `||host...` (or `@@||host...`)
/// reduced to the host's registrable domain. `None` for rules that cannot
/// be pinned to a host.
fn rule_anchor_domain(line: &str) -> Option<String> {
    let body = line.strip_prefix("@@").unwrap_or(line);
    let rest = body.strip_prefix("||")?;
    let host: String = rest
        .chars()
        .take_while(|c| !matches!(c, '^' | '/' | '$' | '*' | '|'))
        .collect::<String>()
        .to_ascii_lowercase();
    if host.is_empty() {
        return None;
    }
    Some(
        registrable_domain(&host)
            .map(str::to_string)
            .unwrap_or(host),
    )
}

/// Anchor domain of a vendor URL pattern: host-shaped patterns (contain a
/// dot, no slash) reduce to a registrable domain; path-shaped patterns
/// (`/akam/`) are unanchored.
fn pattern_anchor_domain(pattern: &str) -> Option<String> {
    if pattern.contains('/') || !pattern.contains('.') {
        return None;
    }
    let host = pattern.to_ascii_lowercase();
    Some(
        registrable_domain(&host)
            .map(str::to_string)
            .unwrap_or(host),
    )
}

/// A hot rule reload, scheduled on the simulated clock. Requests arriving
/// at or after `at_ms` are admitted under the new snapshot; requests
/// already admitted finish on their admission epoch.
#[derive(Debug, Clone)]
pub struct ReloadEvent {
    /// When the swap happens.
    pub at_ms: u64,
    /// Name for the new generation (diagnostics).
    pub name: String,
    /// Full new filter-list text (epoch swaps are whole-snapshot, never
    /// in-place edits).
    pub list_text: String,
    /// New vendor patterns, or `None` to carry the current ones forward.
    pub vendor_patterns: Option<BTreeMap<String, String>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, text: &str) -> RuleSnapshot {
        RuleSnapshot::new(
            epoch,
            "test",
            text,
            RuleSnapshot::standard_vendor_patterns(),
        )
    }

    #[test]
    fn covers_and_vendor_attribution() {
        let s = snap(0, "||tracker.net^$script\n");
        assert!(s.covers(&Url::https("cdn.tracker.net", "/fp.js")));
        assert!(!s.covers(&Url::https("clean.example", "/app.js")));
        let fp = Url::https("cdn.fpnpmcdn.net", "/v3/loader.js");
        assert_eq!(s.vendor_for(&fp), Some("FingerprintJS"));
        assert_eq!(s.vendor_for(&Url::https("clean.example", "/a.js")), None);
    }

    #[test]
    fn diff_attributes_anchored_changes_to_domains() {
        let a = snap(0, "||tracker.net^$script\n||ads.example.com^\n");
        let b = snap(1, "||tracker.net^$script\n||ads.example.com^\n||evil.io^\n");
        let d = a.diff(&b);
        assert!(!d.unanchored);
        assert_eq!(
            d.domains.iter().collect::<Vec<_>>(),
            vec![&"evil.io".to_string()]
        );
        // Removals count too, and exception rules anchor like blocks.
        let c = snap(2, "||ads.example.com^\n@@||tracker.net/allowed/*\n");
        let d2 = b.diff(&c);
        assert!(d2.domains.contains("evil.io"));
        assert!(d2.domains.contains("tracker.net"));
    }

    #[test]
    fn diff_marks_substring_rules_unanchored() {
        let a = snap(0, "||tracker.net^\n");
        let b = snap(1, "||tracker.net^\n/fp-collect.js\n");
        assert!(a.diff(&b).unanchored);
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty() {
        let a = snap(0, "||tracker.net^\n! a comment\n");
        let b = snap(1, "! different comment\n||tracker.net^\n");
        assert!(a.diff(&b).is_empty(), "comments never invalidate");
    }

    #[test]
    fn vendor_pattern_changes_anchor_by_host_shape() {
        let mut patterns = RuleSnapshot::standard_vendor_patterns();
        let a = RuleSnapshot::new(0, "t", "", patterns.clone());
        patterns.insert("newvendor.example".into(), "NewVendor".into());
        let b = RuleSnapshot::new(1, "t", "", patterns.clone());
        let d = a.diff(&b);
        assert!(d.domains.contains("newvendor.example"));
        assert!(!d.unanchored);
        // A path-shaped pattern cannot be host-attributed.
        patterns.insert("/collect/".into(), "PathVendor".into());
        let c = RuleSnapshot::new(2, "t", "", patterns);
        assert!(b.diff(&c).unanchored);
    }

    #[test]
    fn anchor_extraction_handles_rule_shapes() {
        assert_eq!(
            rule_anchor_domain("||cdn.tracker.net^$script"),
            Some("tracker.net".into())
        );
        assert_eq!(
            rule_anchor_domain("@@||tracker.net/allowed/*"),
            Some("tracker.net".into())
        );
        assert_eq!(rule_anchor_domain("/fp-collect.js"), None);
        assert_eq!(rule_anchor_domain("||^"), None);
    }
}
