//! The verdict-serving daemon: plan deterministically, execute in
//! parallel, deliver in request order.
//!
//! [`VerdictService::serve`] runs one load schedule end to end:
//!
//! 1. **Plan** — [`ServePlan::plan`] makes every admission, shedding,
//!    deadline, and cache decision single-threaded (see the plan module
//!    for why this is the only way responses can be byte-identical
//!    across worker counts).
//! 2. **Prewarm** — the unique cold bodies the plan scheduled for full
//!    analysis are parsed into the shared [`ScriptCache`] by
//!    [`ServeConfig::workers`] threads. Parse-under-shard-lock makes the
//!    parse count equal the unique-body count regardless of how the
//!    threads interleave, and a compiled AST is a pure function of its
//!    source — so this stage can run as wide as the machine allows
//!    without touching the response stream.
//! 3. **Assemble** — responses are produced in request order: reload
//!    boundaries invalidate the affected [`AnalysisCache`] shards
//!    exactly where the plan said they would, full-tier requests
//!    classify (or hit) under their admission epoch, degraded tiers
//!    answer from cache or heuristics without ever parsing, and each
//!    response is enriched with blocklist/vendor facts from its
//!    admission-epoch [`RuleSnapshot`].
//!
//! Every offered request yields exactly one response — served, typed
//! failure, or typed rejection. The soak bin gates on that partition
//! being exact, on responses being byte-identical across worker counts,
//! and on the plan's predicted analysis count matching the cache's
//! actual counter.

use std::collections::HashMap;
use std::sync::Arc;

use canvassing_analysis::{AnalysisCache, AnalysisStats, EpochCacheStats};
use canvassing_net::{Network, Resource};
use canvassing_script::{ScriptCache, ScriptCacheStats};
use canvassing_trace::{MetricsRegistry, MetricsSnapshot, TraceSink, VisitRecorder};

use crate::plan::{Decision, Disposition, ServeConfig, ServePlan};
use crate::request::{
    heuristic_scan, Payload, RejectReason, ServeTier, Served, VerdictRequest, VerdictResponse,
};
use crate::snapshot::{ReloadEvent, RuleSnapshot};

/// Everything one serving run produced.
pub struct ServeOutput {
    /// One response per offered request, in request order.
    pub responses: Vec<VerdictResponse>,
    /// The admission plan the run executed (dispositions, snapshots,
    /// applied reloads, queue high-water mark).
    pub plan: ServePlan,
    /// Name-ordered snapshot of the run's serving metrics.
    pub metrics: MetricsSnapshot,
}

/// A long-running verdict service over shared parse/analysis caches.
pub struct VerdictService {
    config: ServeConfig,
    scripts: Arc<ScriptCache>,
    analysis: Arc<AnalysisCache>,
}

impl VerdictService {
    /// A service with fresh caches.
    pub fn new(config: ServeConfig) -> VerdictService {
        VerdictService::with_caches(
            config,
            Arc::new(ScriptCache::new()),
            Arc::new(AnalysisCache::new()),
        )
    }

    /// A service over existing shared caches (e.g. ones prewarmed by a
    /// crawl — the "detection as a service" deployment the paper's §6
    /// countermeasures discussion implies).
    pub fn with_caches(
        config: ServeConfig,
        scripts: Arc<ScriptCache>,
        analysis: Arc<AnalysisCache>,
    ) -> VerdictService {
        VerdictService {
            config,
            scripts,
            analysis,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Parse-cache counters (deterministic; parse-under-lock).
    pub fn script_stats(&self) -> ScriptCacheStats {
        self.scripts.stats()
    }

    /// Analysis-cache counters (deterministic; analyze-under-lock).
    pub fn analysis_stats(&self) -> AnalysisStats {
        self.analysis.stats()
    }

    /// Epoch/invalidation counters.
    pub fn epoch_stats(&self) -> EpochCacheStats {
        self.analysis.epoch_stats()
    }

    /// Serves one load schedule. `requests` must be sorted by
    /// `(arrival_ms, id)`, `reloads` by `at_ms`. `sink` (when enabled)
    /// receives one per-request trace, in request order.
    pub fn serve(
        &self,
        requests: &[VerdictRequest],
        reloads: &[ReloadEvent],
        boot: RuleSnapshot,
        network: Option<&Network>,
        sink: Option<&dyn TraceSink>,
    ) -> ServeOutput {
        let plan = ServePlan::plan(requests, reloads, &self.config, network, boot);

        // Hash → source for every body the plan resolved, so degraded
        // tiers and the prewarm never re-derive payloads differently
        // from the plan.
        let mut sources: HashMap<u64, &str> = HashMap::new();
        for (req, disp) in requests.iter().zip(&plan.dispositions) {
            if let (Some(hash), Some(src)) = (disp.body_hash, resolve_source(req, network)) {
                sources.entry(hash).or_insert(src);
            }
        }

        // Prewarm: parallel parse of the plan's unique cold bodies.
        let cold: Vec<&str> = plan
            .cold_bodies
            .iter()
            .filter_map(|h| sources.get(h).copied())
            .collect();
        let workers = self.config.workers.max(1);
        if workers > 1 && cold.len() > 1 {
            std::thread::scope(|scope| {
                for chunk in cold.chunks(cold.len().div_ceil(workers)) {
                    let scripts = Arc::clone(&self.scripts);
                    scope.spawn(move || {
                        for src in chunk {
                            let _ = scripts.get_or_parse(src);
                        }
                    });
                }
            });
        } else {
            for src in &cold {
                let _ = self.scripts.get_or_parse(src);
            }
        }

        // Assemble, single-threaded, in request order.
        let registry = Arc::new(MetricsRegistry::new());
        let trace_on = sink.is_some_and(TraceSink::enabled);
        let mut responses = Vec::with_capacity(requests.len());
        let mut reload_idx = 0usize;
        for (req, disp) in requests.iter().zip(&plan.dispositions) {
            while reload_idx < plan.reloads.len()
                && plan.reloads[reload_idx].at_ms <= req.arrival_ms
            {
                let reload = &plan.reloads[reload_idx];
                self.analysis
                    .invalidate_shards(reload.invalidated_shards.iter().copied(), reload.epoch);
                registry.add("serve.reload.applied", 1);
                registry.add(
                    "serve.reload.shards_invalidated",
                    reload.invalidated_shards.len() as u64,
                );
                reload_idx += 1;
            }

            let snapshot = &plan.snapshots[disp.epoch as usize];
            let served = self.assemble(req, disp, snapshot, network);
            let response = VerdictResponse {
                id: req.id,
                epoch: disp.epoch,
                arrival_ms: req.arrival_ms,
                start_ms: disp.start_ms,
                finish_ms: disp.finish_ms,
                served,
            };
            record_metrics(&registry, disp, &response);
            if trace_on {
                if let Some(sink) = sink {
                    emit_trace(sink, req, disp, &response);
                }
            }
            responses.push(response);
        }

        ServeOutput {
            responses,
            plan,
            metrics: registry.snapshot(),
        }
    }

    /// Produces the served outcome for one disposition. Infallible by
    /// construction: every failure mode is a typed response.
    fn assemble(
        &self,
        req: &VerdictRequest,
        disp: &Disposition,
        snapshot: &RuleSnapshot,
        network: Option<&Network>,
    ) -> Served {
        let tier = match disp.decision {
            Decision::Reject(reason) => {
                return Served::Rejected {
                    reason,
                    retry_after_ms: disp.retry_after_ms,
                }
            }
            Decision::Serve(tier) => tier,
        };
        if let Some(error) = disp.fetch_error {
            return Served::FetchFailed {
                error: error.to_string(),
            };
        }
        let Some(source) = resolve_source(req, network) else {
            // The plan types every resolution failure as a fetch error,
            // so this arm is defensive, not expected.
            return Served::FetchFailed {
                error: "not-found".to_string(),
            };
        };
        let (blocklisted, vendor) = match &req.payload {
            Payload::Url { url } => (
                snapshot.covers(url),
                snapshot.vendor_for(url).map(str::to_string),
            ),
            Payload::Body { .. } => (false, None),
        };
        match tier {
            ServeTier::Full => {
                let (_, analysis) =
                    self.analysis
                        .analyze_at(source, Some(&self.scripts), disp.epoch);
                Served::Full {
                    verdict: analysis.verdict.label().to_string(),
                    findings: analysis.findings.len(),
                    blocklisted,
                    vendor,
                }
            }
            ServeTier::CacheOnly => {
                if !disp.cache_only_hit {
                    return Served::CacheMiss;
                }
                match self.analysis.peek(source) {
                    Some(analysis) => Served::CacheOnly {
                        verdict: analysis.verdict.label().to_string(),
                        blocklisted,
                        vendor,
                    },
                    // Plan and cache can only disagree if a caller mixed
                    // caches between runs; degrade to a typed miss.
                    None => Served::CacheMiss,
                }
            }
            ServeTier::Heuristic => Served::Heuristic {
                suspicious: heuristic_scan(source),
            },
        }
    }
}

/// The source text a request classifies, resolved exactly like the plan
/// resolved it (body payloads verbatim; URL payloads from the immutable
/// resource registry).
fn resolve_source<'a>(req: &'a VerdictRequest, network: Option<&'a Network>) -> Option<&'a str> {
    match &req.payload {
        Payload::Body { source } => Some(source),
        Payload::Url { url } => match network?.peek(url)? {
            Resource::Script(script) => Some(&script.source),
            Resource::Page(_) => None,
        },
    }
}

/// Counter/histogram vocabulary for one response.
fn record_metrics(registry: &MetricsRegistry, disp: &Disposition, response: &VerdictResponse) {
    registry.add("serve.offered", 1);
    match disp.decision {
        Decision::Serve(ServeTier::Full) => registry.add("serve.admitted.full", 1),
        Decision::Serve(ServeTier::CacheOnly) => registry.add("serve.admitted.cache-only", 1),
        Decision::Serve(ServeTier::Heuristic) => registry.add("serve.admitted.heuristic", 1),
        Decision::Reject(RejectReason::Overload) => registry.add("serve.rejected.overload", 1),
        Decision::Reject(RejectReason::DeadlineUnmeetable) => {
            registry.add("serve.rejected.deadline-unmeetable", 1)
        }
    }
    match &response.served {
        Served::FetchFailed { .. } => registry.add("serve.fetch-failed", 1),
        Served::CacheMiss => registry.add("serve.cache-miss", 1),
        _ => {}
    }
    if response.served.is_completed() {
        registry.observe("serve.latency_ms", response.latency_ms());
        registry.observe("serve.queue_ms", response.queue_ms());
    }
}

/// One per-request trace: admit instant, queue span, serve span with a
/// tier child and outcome instant.
fn emit_trace(
    sink: &dyn TraceSink,
    req: &VerdictRequest,
    disp: &Disposition,
    response: &VerdictResponse,
) {
    let rec = VisitRecorder::new(&format!("serve/{:06}", req.id), None);
    rec.instant("admit", || match disp.decision {
        Decision::Serve(tier) => tier.label().to_string(),
        Decision::Reject(reason) => format!("reject:{}", reason.label()),
    });
    match disp.decision {
        Decision::Reject(_) => {}
        Decision::Serve(tier) => {
            let queue = rec.span("queue");
            queue.end(response.queue_ms());
            let serve = rec.span("serve");
            let stage = rec.span(tier.label());
            rec.instant("outcome", || outcome_label(&response.served).to_string());
            stage.end(disp.finish_ms.saturating_sub(disp.start_ms));
            serve.end(response.latency_ms());
        }
    }
    if let Some(trace) = rec.finish() {
        sink.consume(trace);
    }
}

/// Stable label for a served outcome (trace/report vocabulary).
pub fn outcome_label(served: &Served) -> &'static str {
    match served {
        Served::Full { .. } => "full",
        Served::CacheOnly { .. } => "cache-only",
        Served::CacheMiss => "cache-miss",
        Served::Heuristic { .. } => "heuristic",
        Served::FetchFailed { .. } => "fetch-failed",
        Served::Rejected { .. } => "rejected",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShedThresholds;

    const FP: &str = r#"
        let c = document.createElement("canvas");
        let x = c.getContext("2d");
        x.fillText("serve me", 2, 2);
        c.toDataURL();
    "#;

    fn body_req(id: u64, arrival: u64, src: &str) -> VerdictRequest {
        VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Body {
                source: src.to_string(),
            },
            phase: 0,
        }
    }

    fn boot() -> RuleSnapshot {
        RuleSnapshot::new(
            0,
            "boot",
            "||tracker.net^\n",
            RuleSnapshot::standard_vendor_patterns(),
        )
    }

    #[test]
    fn full_tier_serves_classifier_verdicts() {
        let service = VerdictService::new(ServeConfig::default());
        let reqs = vec![body_req(0, 0, FP), body_req(1, 1000, "let benign = 1;")];
        let out = service.serve(&reqs, &[], boot(), None, None);
        assert_eq!(out.responses.len(), 2);
        match &out.responses[0].served {
            Served::Full {
                verdict,
                blocklisted,
                vendor,
                ..
            } => {
                assert_eq!(verdict, "fingerprinting+exfil");
                assert!(!blocklisted, "body payloads carry no URL to match");
                assert!(vendor.is_none());
            }
            other => panic!("expected a full answer, got {other:?}"),
        }
        match &out.responses[1].served {
            Served::Full { verdict, .. } => assert_eq!(verdict, "benign"),
            other => panic!("expected a full answer, got {other:?}"),
        }
        assert_eq!(service.analysis_stats().analyses, 2);
        assert_eq!(out.metrics.counters["serve.admitted.full"], 2);
    }

    #[test]
    fn degraded_tiers_never_parse() {
        // Queue thresholds of zero force every request to the heuristic
        // tier; the parse cache must stay untouched.
        let config = ServeConfig {
            lanes: 1,
            shed: ShedThresholds {
                full_below: 0,
                cache_only_below: 0,
                heuristic_below: 40,
            },
            ..ServeConfig::default()
        };
        let service = VerdictService::new(config);
        let reqs = vec![body_req(0, 0, FP), body_req(1, 1, "let x = 1;")];
        let out = service.serve(&reqs, &[], boot(), None, None);
        assert!(matches!(
            out.responses[0].served,
            Served::Heuristic { suspicious: true }
        ));
        assert!(matches!(
            out.responses[1].served,
            Served::Heuristic { suspicious: false }
        ));
        assert_eq!(service.script_stats().lookups(), 0, "no parse at all");
        assert_eq!(service.analysis_stats().lookups(), 0);
        assert!(service.scripts.get_if_cached(FP).is_none());
    }

    #[test]
    fn cache_only_tier_hits_after_full_warms_and_misses_cold() {
        let config = ServeConfig {
            lanes: 1,
            // full below 1: only an idle queue gets full service.
            shed: ShedThresholds {
                full_below: 1,
                cache_only_below: 40,
                heuristic_below: 41,
            },
            ..ServeConfig::default()
        };
        let service = VerdictService::new(config);
        // Request 0 starts at t=0 and is never queued, so request 1
        // (same instant) still sees depth 0 and gets full service too;
        // requests 2 and 3 queue behind it and are shed to cache-only.
        let reqs = vec![
            body_req(0, 0, FP),       // idle → full, cold: warms the cache
            body_req(1, 0, FP),       // depth 0 → full, cache hit
            body_req(2, 1, FP),       // depth 1 → cache-only, hits
            body_req(3, 2, "1 + 1;"), // depth 2 → cache-only, cold → miss
        ];
        let out = service.serve(&reqs, &[], boot(), None, None);
        assert!(matches!(out.responses[0].served, Served::Full { .. }));
        assert!(matches!(out.responses[1].served, Served::Full { .. }));
        match &out.responses[2].served {
            Served::CacheOnly { verdict, .. } => assert_eq!(verdict, "fingerprinting+exfil"),
            other => panic!("expected a cache-only hit, got {other:?}"),
        }
        assert!(matches!(out.responses[3].served, Served::CacheMiss));
        assert_eq!(
            service.script_stats().parses,
            1,
            "only the one cold full-tier body parsed"
        );
        let epochs = service.epoch_stats();
        assert_eq!(epochs.peeks, 1, "one plan-predicted cache-only hit");
        assert_eq!(epochs.peek_hits, 1);
    }

    #[test]
    fn responses_are_identical_across_worker_counts() {
        let reqs: Vec<VerdictRequest> = (0..40)
            .map(|i| {
                body_req(
                    i,
                    i * 7,
                    &format!("let v{} = {}; v{} + 1;", i % 9, i % 9, i % 9),
                )
            })
            .collect();
        let reloads = vec![ReloadEvent {
            at_ms: 100,
            name: "v2".into(),
            list_text: "||tracker.net^\n||fresh.example^\n".into(),
            vendor_patterns: None,
        }];
        let mut rendered: Vec<String> = Vec::new();
        for workers in [1usize, 4, 8] {
            let service = VerdictService::new(ServeConfig {
                workers,
                ..ServeConfig::default()
            });
            let out = service.serve(&reqs, &reloads, boot(), None, None);
            rendered.push(
                serde_json::to_string(&out.responses)
                    .unwrap_or_else(|e| panic!("responses serialize: {e}")),
            );
        }
        assert_eq!(rendered[0], rendered[1]);
        assert_eq!(rendered[1], rendered[2]);
    }

    #[test]
    fn reload_reclassifies_under_the_new_epoch() {
        use canvassing_net::{ScriptResource, Url};
        let mut network = Network::new();
        let url = Url::https("cdn.tracker.net", "/fp.js");
        network.host(
            &url,
            Resource::Script(ScriptResource {
                source: FP.to_string(),
                label: "t".into(),
            }),
        );
        let url_req = |id, arrival| VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Url { url: url.clone() },
            phase: 0,
        };
        let service = VerdictService::new(ServeConfig::default());
        let reqs = vec![url_req(0, 0), url_req(1, 10_000)];
        let reloads = vec![ReloadEvent {
            at_ms: 5_000,
            name: "v2".into(),
            // tracker.net rules changed → its shard must re-classify.
            list_text: "||tracker.net^$script\n".into(),
            vendor_patterns: None,
        }];
        let out = service.serve(&reqs, &reloads, boot(), Some(&network), None);
        assert_eq!(out.responses[0].epoch, 0);
        assert_eq!(out.responses[1].epoch, 1);
        // Both full answers; the second is a re-analysis, not a hit.
        assert!(matches!(out.responses[0].served, Served::Full { .. }));
        assert!(matches!(out.responses[1].served, Served::Full { .. }));
        assert_eq!(service.analysis_stats().analyses, 2);
        assert_eq!(service.epoch_stats().stale_refreshes, 1);
        assert_eq!(service.script_stats().parses, 1, "the parse is reused");
        // Blocklist enrichment followed each admission epoch: covered
        // under both (the host stays listed), vendor attribution intact.
        for r in &out.responses {
            match &r.served {
                Served::Full { blocklisted, .. } => assert!(blocklisted),
                other => panic!("expected full, got {other:?}"),
            }
        }
    }

    #[test]
    fn traces_flow_to_the_sink_in_request_order() {
        use canvassing_trace::CountingSink;
        let service = VerdictService::new(ServeConfig::default());
        let sink = CountingSink::default();
        let reqs = vec![body_req(0, 0, FP), body_req(1, 50, "let t = 2;")];
        let out = service.serve(&reqs, &[], boot(), None, Some(&sink));
        let (visits, spans, _events) = sink.totals();
        assert_eq!(visits, 2);
        assert!(spans >= 2 * 3, "queue + serve + tier spans per request");
        assert_eq!(out.responses.len(), 2);
    }

    #[test]
    fn rejected_requests_still_get_responses() {
        let config = ServeConfig {
            lanes: 1,
            shed: ShedThresholds {
                full_below: 1,
                cache_only_below: 1,
                heuristic_below: 1,
            },
            ..ServeConfig::default()
        };
        let service = VerdictService::new(config);
        let reqs: Vec<VerdictRequest> = (0..5).map(|i| body_req(i, 0, FP)).collect();
        let out = service.serve(&reqs, &[], boot(), None, None);
        assert_eq!(out.responses.len(), 5, "1:1 request/response, no drops");
        let rejected = out
            .responses
            .iter()
            .filter(|r| !r.served.is_completed())
            .count();
        // Request 0 starts instantly (never queued) and request 1 still
        // sees depth 0; from request 2 on the queue is at the ceiling.
        assert_eq!(rejected, 3);
        assert_eq!(out.metrics.counters["serve.rejected.overload"], 3);
        assert_eq!(out.metrics.counters["serve.offered"], 5);
    }

    #[test]
    fn vendor_patterns_hot_reload_applies_to_later_requests() {
        use canvassing_net::{ScriptResource, Url};
        let mut network = Network::new();
        let url = Url::https("cdn.newvendor.example", "/collect.js");
        network.host(
            &url,
            Resource::Script(ScriptResource {
                source: FP.to_string(),
                label: "nv".into(),
            }),
        );
        let url_req = |id, arrival| VerdictRequest {
            id,
            arrival_ms: arrival,
            deadline_ms: None,
            payload: Payload::Url { url: url.clone() },
            phase: 0,
        };
        let mut patterns = RuleSnapshot::standard_vendor_patterns();
        patterns.insert("newvendor.example".into(), "NewVendor".into());
        let reloads = vec![ReloadEvent {
            at_ms: 5_000,
            name: "vendors-v2".into(),
            list_text: "||tracker.net^\n".into(),
            vendor_patterns: Some(patterns),
        }];
        let service = VerdictService::new(ServeConfig::default());
        let reqs = vec![url_req(0, 0), url_req(1, 10_000)];
        let out = service.serve(&reqs, &reloads, boot(), Some(&network), None);
        let vendor_of = |served: &Served| match served {
            Served::Full { vendor, .. } => vendor.clone(),
            other => panic!("expected full, got {other:?}"),
        };
        assert_eq!(vendor_of(&out.responses[0].served), None);
        assert_eq!(
            vendor_of(&out.responses[1].served),
            Some("NewVendor".to_string())
        );
    }

    #[test]
    fn with_caches_reuses_a_crawl_warmed_cache() {
        let scripts = Arc::new(ScriptCache::new());
        let analysis = Arc::new(AnalysisCache::new());
        analysis.analyze(FP, Some(&scripts));
        let service = VerdictService::with_caches(ServeConfig::default(), scripts, analysis);
        let out = service.serve(&[body_req(0, 0, FP)], &[], boot(), None, None);
        assert!(matches!(out.responses[0].served, Served::Full { .. }));
        assert_eq!(
            service.analysis_stats().analyses,
            1,
            "the crawl's analysis is reused, not recomputed"
        );
        assert_eq!(out.plan.predicted_analyses(), 1, "plan sees a cold body");
    }

    #[test]
    fn plan_predicts_execution_exactly() {
        let reqs: Vec<VerdictRequest> = (0..30)
            .map(|i| body_req(i, i * 13, &format!("let p{} = 0;", i % 5)))
            .collect();
        let service = VerdictService::new(ServeConfig::default());
        let out = service.serve(&reqs, &[], boot(), None, None);
        assert_eq!(
            service.analysis_stats().analyses,
            out.plan.predicted_analyses()
        );
    }
}
