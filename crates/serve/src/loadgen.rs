//! Seeded deterministic load generation: Zipf-skewed script popularity
//! over a harvested corpus, phased burst/ramp/overload schedules.
//!
//! Everything is a pure function of `(profile, corpus)` — arrivals come
//! from evenly spaced slots with LCG jitter, body picks from an inverse
//! power-law (Zipf) table, and URL-vs-body payload choices from the same
//! LCG stream. Two runs with the same seed offer byte-identical request
//! schedules, which is what lets the soak bin compare whole response
//! streams across worker counts.

use std::collections::HashSet;

use canvassing_net::{Network, Resource, ScriptRef, Url};
use canvassing_script::source_hash;
use serde::{Deserialize, Serialize};

use crate::request::{Payload, VerdictRequest};

/// One load phase: a label, a duration, and an offered rate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase name ("ramp", "burst", ...).
    pub label: String,
    /// Phase length on the simulated clock.
    pub duration_ms: u64,
    /// Offered requests per simulated second.
    pub qps: u64,
}

/// A full load profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// LCG seed; same seed → same schedule.
    pub seed: u64,
    /// Phases, played back to back.
    pub phases: Vec<PhaseSpec>,
    /// Zipf skew exponent for body popularity (1.0–1.3 matches the
    /// paper's observation that a dozen vendor scripts dominate the
    /// long tail of sites serving them).
    pub zipf_s: f64,
    /// Relative deadline attached to every request (absolute deadline =
    /// arrival + this), or `None` for deadline-free load.
    pub deadline_ms: Option<u64>,
    /// Percentage (0–100) of requests submitted as URL payloads when the
    /// picked corpus entry has one (the rest submit the raw body).
    pub url_fraction_pct: u64,
}

impl LoadProfile {
    /// The standard soak shape: ramp → steady → burst → overload →
    /// drain. At the default [`crate::ServeConfig`] capacity (~4 lanes ×
    /// ~4ms warm hits ≈ 1000 req/s), steady load serves at full
    /// fidelity, the burst sheds tiers, and the overload phase rejects —
    /// so one schedule exercises the whole admission ladder.
    pub fn standard(seed: u64) -> LoadProfile {
        LoadProfile {
            seed,
            phases: vec![
                PhaseSpec {
                    label: "ramp".into(),
                    duration_ms: 2_000,
                    qps: 50,
                },
                PhaseSpec {
                    label: "steady".into(),
                    duration_ms: 4_000,
                    qps: 150,
                },
                PhaseSpec {
                    label: "burst".into(),
                    duration_ms: 1_000,
                    qps: 2_500,
                },
                PhaseSpec {
                    label: "overload".into(),
                    duration_ms: 1_000,
                    qps: 5_000,
                },
                PhaseSpec {
                    label: "drain".into(),
                    duration_ms: 2_000,
                    qps: 50,
                },
            ],
            zipf_s: 1.1,
            deadline_ms: Some(150),
            url_fraction_pct: 40,
        }
    }

    /// Scales every phase's offered rate by `scale` (each phase keeps at
    /// least 1 qps), for quick CI runs of the same schedule shape.
    pub fn scaled(mut self, scale: f64) -> LoadProfile {
        for phase in &mut self.phases {
            phase.qps = ((phase.qps as f64 * scale).round() as u64).max(1);
        }
        self
    }

    /// Total offered requests.
    pub fn offered(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.duration_ms * p.qps / 1_000)
            .sum()
    }
}

/// The script corpus load is drawn from: unique bodies, each optionally
/// carrying the URL it was first seen at (inline scripts have none).
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// `(source, first URL)` in harvest order — index order is the
    /// popularity rank the Zipf pick uses, so entry 0 is the hottest.
    pub bodies: Vec<(String, Option<Url>)>,
}

impl Corpus {
    /// Number of unique bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// Harvests up to `cap` unique script bodies from a frontier of page
/// URLs, in frontier order (deterministic): external scripts keep their
/// URL, inline scripts don't, duplicates keep their first sighting.
pub fn harvest_corpus(network: &Network, frontier: &[Url], cap: usize) -> Corpus {
    let mut corpus = Corpus::default();
    let mut seen: HashSet<u64> = HashSet::new();
    for page_url in frontier {
        if corpus.bodies.len() >= cap {
            break;
        }
        let Some(Resource::Page(page)) = network.peek(page_url) else {
            continue;
        };
        for script in &page.scripts {
            if corpus.bodies.len() >= cap {
                break;
            }
            match script {
                ScriptRef::External(url) => {
                    if let Some(Resource::Script(s)) = network.peek(url) {
                        if seen.insert(source_hash(&s.source)) {
                            corpus.bodies.push((s.source.clone(), Some(url.clone())));
                        }
                    }
                }
                ScriptRef::Inline { source, .. } => {
                    if seen.insert(source_hash(source)) {
                        corpus.bodies.push((source.clone(), None));
                    }
                }
            }
        }
    }
    corpus
}

/// Linear congruential step (the repo's standard constants).
fn lcg_step(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Generates the request schedule: one pass over the phases, arrivals
/// evenly spaced within each phase with ±slot/4 LCG jitter, bodies
/// picked from the corpus by a Zipf(`zipf_s`) table. Requests come back
/// sorted by `(arrival_ms, id)` with dense ids — exactly the order
/// [`crate::ServePlan::plan`] requires.
pub fn generate(profile: &LoadProfile, corpus: &Corpus) -> Vec<VerdictRequest> {
    if corpus.is_empty() {
        return Vec::new();
    }
    // Zipf cumulative table over popularity ranks.
    let weights: Vec<f64> = (0..corpus.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(profile.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }

    let mut lcg = profile.seed ^ 0x9e3779b97f4a7c15;
    let mut requests = Vec::new();
    let mut phase_start = 0u64;
    for (phase_idx, phase) in profile.phases.iter().enumerate() {
        let count = phase.duration_ms * phase.qps / 1_000;
        if count == 0 {
            phase_start += phase.duration_ms;
            continue;
        }
        let slot = phase.duration_ms / count;
        for i in 0..count {
            let base = phase_start + i * phase.duration_ms / count;
            let jitter = if slot > 1 {
                lcg_step(&mut lcg) % (slot / 2 + 1)
            } else {
                0
            };
            let arrival = base + jitter;
            let pick = {
                let r = (lcg_step(&mut lcg) as f64) / ((1u64 << 31) as f64);
                cumulative
                    .iter()
                    .position(|c| *c >= r)
                    .unwrap_or(corpus.len() - 1)
            };
            let (source, url) = &corpus.bodies[pick];
            let as_url = url.is_some() && lcg_step(&mut lcg) % 100 < profile.url_fraction_pct;
            let payload = if as_url {
                match url {
                    Some(u) => Payload::Url { url: u.clone() },
                    None => Payload::Body {
                        source: source.clone(),
                    },
                }
            } else {
                Payload::Body {
                    source: source.clone(),
                }
            };
            requests.push(VerdictRequest {
                id: 0, // assigned after the sort
                arrival_ms: arrival,
                deadline_ms: profile.deadline_ms.map(|d| arrival + d),
                payload,
                phase: phase_idx as u32,
            });
        }
        phase_start += phase.duration_ms;
    }
    // Dense ids in arrival order (stable sort keeps the generation
    // sequence as the tiebreak, so the schedule is fully deterministic).
    requests.sort_by_key(|r| r.arrival_ms);
    for (i, req) in requests.iter_mut().enumerate() {
        req.id = i as u64;
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::ScriptResource;

    fn tiny_corpus() -> Corpus {
        Corpus {
            bodies: vec![
                (
                    "let hot = 1;".to_string(),
                    Some(Url::https("cdn.hot.net", "/a.js")),
                ),
                ("let warm = 2;".to_string(), None),
                (
                    "let cool = 3;".to_string(),
                    Some(Url::https("cdn.cool.net", "/c.js")),
                ),
            ],
        }
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let profile = LoadProfile::standard(42).scaled(0.02);
        let corpus = tiny_corpus();
        let a = generate(&profile, &corpus);
        let b = generate(&profile, &corpus);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .windows(2)
            .all(|w| w[0].arrival_ms <= w[1].arrival_ms && w[0].id < w[1].id));
        assert_eq!(a.len() as u64, profile.offered());
        // Deadlines are absolute.
        for r in &a {
            assert_eq!(r.deadline_ms, Some(r.arrival_ms + 150));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let corpus = tiny_corpus();
        let a = generate(&LoadProfile::standard(1).scaled(0.1), &corpus);
        let b = generate(&LoadProfile::standard(2).scaled(0.1), &corpus);
        assert_ne!(a, b, "seeds must matter");
    }

    #[test]
    fn zipf_pick_favors_the_head() {
        let profile = LoadProfile {
            deadline_ms: None,
            url_fraction_pct: 0,
            ..LoadProfile::standard(7)
        };
        let corpus = tiny_corpus();
        let reqs = generate(&profile, &corpus);
        let hot = reqs
            .iter()
            .filter(|r| matches!(&r.payload, Payload::Body { source } if source == "let hot = 1;"))
            .count();
        assert!(
            hot * 2 > reqs.len(),
            "rank-0 body should dominate a zipf(1.1) draw: {hot}/{}",
            reqs.len()
        );
    }

    #[test]
    fn url_fraction_controls_payload_mix() {
        let corpus = tiny_corpus();
        let all_bodies = generate(
            &LoadProfile {
                url_fraction_pct: 0,
                ..LoadProfile::standard(3)
            },
            &corpus,
        );
        assert!(all_bodies
            .iter()
            .all(|r| matches!(r.payload, Payload::Body { .. })));
        let mixed = generate(
            &LoadProfile {
                url_fraction_pct: 100,
                ..LoadProfile::standard(3)
            },
            &corpus,
        );
        // Rank-0 dominates and has a URL, so a 100% URL fraction must
        // produce plenty of URL payloads (inline bodies stay bodies).
        assert!(mixed
            .iter()
            .any(|r| matches!(r.payload, Payload::Url { .. })));
    }

    #[test]
    fn harvest_dedupes_and_keeps_first_urls() {
        let mut network = Network::new();
        let page1 = Url::https("site1.example", "/");
        let page2 = Url::https("site2.example", "/");
        let ext = Url::https("cdn.shared.net", "/fp.js");
        network.host(
            &ext,
            Resource::Script(ScriptResource {
                source: "let shared = 9;".into(),
                label: "s".into(),
            }),
        );
        let page = |scripts| {
            Resource::Page(canvassing_net::PageResource {
                scripts,
                consent_banner: false,
                bot_check: false,
            })
        };
        network.host(
            &page1,
            page(vec![
                ScriptRef::External(ext.clone()),
                ScriptRef::Inline {
                    source: "let inline1 = 1;".into(),
                    label: "i1".into(),
                },
            ]),
        );
        network.host(
            &page2,
            page(vec![
                // Same external body again: deduped.
                ScriptRef::External(ext.clone()),
                ScriptRef::Inline {
                    source: "let inline2 = 2;".into(),
                    label: "i2".into(),
                },
            ]),
        );
        let corpus = harvest_corpus(&network, &[page1, page2], 10);
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.bodies[0].1, Some(ext));
        assert_eq!(corpus.bodies[1].1, None, "inline scripts carry no URL");
        // The cap truncates deterministically.
        let capped = harvest_corpus(
            &network,
            &[
                Url::https("site1.example", "/"),
                Url::https("site2.example", "/"),
            ],
            1,
        );
        assert_eq!(capped.len(), 1);
    }
}
