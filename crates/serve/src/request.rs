//! The serving wire vocabulary: requests, shed tiers, typed rejections,
//! and responses.
//!
//! Everything here is plain serializable data. The soak gates compare the
//! JSON of whole response streams byte for byte across worker counts, so
//! a response may carry only facts that are a pure function of the
//! request schedule and configuration — never of executor scheduling.

use canvassing_net::Url;
use serde::{Deserialize, Serialize};

/// What a client submits for classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A raw script body (the in-browser integration path: the client
    /// already holds the bytes).
    Body {
        /// The script source text.
        source: String,
    },
    /// A script URL (the proxy/resolver path: the daemon resolves the
    /// body itself and the request additionally rides the network's
    /// fault model).
    Url {
        /// The script URL to resolve and classify.
        url: Url,
    },
}

/// One verdict request on the simulated clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictRequest {
    /// Request id; also its admission-order rank (ids are dense and
    /// sorted by arrival, ties broken by id).
    pub id: u64,
    /// Arrival time on the simulated clock, in milliseconds.
    pub arrival_ms: u64,
    /// Absolute response deadline, if the client propagated one. A
    /// request whose predicted completion would miss this is rejected at
    /// admission — before any parse or analysis work is spent on it.
    pub deadline_ms: Option<u64>,
    /// What to classify.
    pub payload: Payload,
    /// Load-generator phase index (0 for hand-built requests); lets the
    /// stats break shed rates down per phase.
    pub phase: u32,
}

/// Service fidelity tiers, degrading under load (mirrors the crawl's
/// visit-fidelity ladder from the graceful-degradation supervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeTier {
    /// Full pipeline: resolve, parse (shared [`canvassing_script::ScriptCache`]),
    /// taint-classify (shared [`canvassing_analysis::AnalysisCache`]),
    /// enrich with blocklist/vendor rules.
    Full,
    /// Cache-only: answer from already-classified bodies; cold bodies get
    /// a typed miss instead of an analysis.
    CacheOnly,
    /// Static-heuristic-only: a substring scan, no parse, no cache.
    Heuristic,
}

impl ServeTier {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            ServeTier::Full => "full",
            ServeTier::CacheOnly => "cache-only",
            ServeTier::Heuristic => "heuristic",
        }
    }

    /// All tiers, best fidelity first.
    pub fn all() -> [ServeTier; 3] {
        [ServeTier::Full, ServeTier::CacheOnly, ServeTier::Heuristic]
    }
}

/// Why a request was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The admission queue is at (or past) the shedding ceiling: even the
    /// heuristic tier cannot absorb the request.
    Overload,
    /// The predicted completion time misses the request's deadline, so
    /// admitting it would only waste parse work on an answer the client
    /// has already given up on.
    DeadlineUnmeetable,
}

impl RejectReason {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::Overload => "overload",
            RejectReason::DeadlineUnmeetable => "deadline-unmeetable",
        }
    }
}

/// The served outcome of one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Served {
    /// Full-tier answer.
    Full {
        /// Verdict label (see [`canvassing_analysis::Verdict::label`]).
        verdict: String,
        /// Number of findings the classifier attached.
        findings: usize,
        /// Whether the admission-epoch blocklist covers the script URL
        /// (always `false` for body payloads — there is no URL to match).
        blocklisted: bool,
        /// Vendor attribution from the admission-epoch vendor rules.
        vendor: Option<String>,
    },
    /// Cache-only-tier answer: the body was already classified.
    CacheOnly {
        /// Verdict label of the cached analysis.
        verdict: String,
        /// Blocklist coverage under the admission epoch.
        blocklisted: bool,
        /// Vendor attribution under the admission epoch.
        vendor: Option<String>,
    },
    /// Cache-only-tier typed miss: the body is not (validly) cached and
    /// the tier does not analyze. The client may retry later at full
    /// fidelity.
    CacheMiss,
    /// Heuristic-tier answer: substring scan only.
    Heuristic {
        /// Whether the scan saw the draw-then-read canvas shape.
        suspicious: bool,
    },
    /// A URL payload whose resolution failed (the network fault surfaces
    /// as a typed, deterministic response — never a dropped request).
    FetchFailed {
        /// Stable error-kind label (see `FetchError::kind_label`).
        error: String,
    },
    /// Turned away at admission.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Backpressure hint: how long (ms) until the daemon predicts it
        /// could have started the request.
        retry_after_ms: u64,
    },
}

impl Served {
    /// Whether the request was actually served (any tier, including a
    /// typed fetch failure or cache miss) as opposed to rejected.
    pub fn is_completed(&self) -> bool {
        !matches!(self, Served::Rejected { .. })
    }
}

/// One response, paired 1:1 with its request by `id` — offered requests
/// are never dropped, they are answered or rejected, and either way the
/// response stream accounts for them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictResponse {
    /// The request id this answers.
    pub id: u64,
    /// Rule-snapshot epoch the request was admitted under. In-flight
    /// requests finish on their admission epoch even when a reload lands
    /// while they are queued.
    pub epoch: u64,
    /// Request arrival (echoed for latency accounting).
    pub arrival_ms: u64,
    /// When service began (== `arrival_ms` for rejections).
    pub start_ms: u64,
    /// When the response was ready (== `arrival_ms` for rejections).
    pub finish_ms: u64,
    /// The outcome.
    pub served: Served,
}

impl VerdictResponse {
    /// End-to-end latency (queue wait + service) in simulated ms.
    pub fn latency_ms(&self) -> u64 {
        self.finish_ms.saturating_sub(self.arrival_ms)
    }

    /// Queue wait before service began.
    pub fn queue_ms(&self) -> u64 {
        self.start_ms.saturating_sub(self.arrival_ms)
    }
}

/// The static-heuristic tier's scan: does the source both draw to a
/// canvas and read it back? This is the paper's coarse precondition for
/// canvas fingerprinting (§4.1), evaluated without a parse — strictly
/// cheaper than the taint classifier and strictly less precise.
pub fn heuristic_scan(source: &str) -> bool {
    let reads = source.contains("toDataURL") || source.contains("getImageData");
    let draws = source.contains("fillText")
        || source.contains("fillRect")
        || source.contains("arc(")
        || source.contains("bezierCurveTo");
    reads && draws
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_and_reason_labels_are_stable() {
        assert_eq!(ServeTier::Full.label(), "full");
        assert_eq!(ServeTier::CacheOnly.label(), "cache-only");
        assert_eq!(ServeTier::Heuristic.label(), "heuristic");
        assert_eq!(RejectReason::Overload.label(), "overload");
        assert_eq!(
            RejectReason::DeadlineUnmeetable.label(),
            "deadline-unmeetable"
        );
    }

    #[test]
    fn heuristic_scan_needs_draw_and_read() {
        assert!(heuristic_scan("x.fillText(\"a\", 1, 1); c.toDataURL();"));
        assert!(!heuristic_scan("c.toDataURL();"), "read without draw");
        assert!(!heuristic_scan("x.fillRect(0,0,2,2);"), "draw without read");
        assert!(!heuristic_scan("let a = 1;"));
    }

    #[test]
    fn responses_roundtrip_through_json() {
        let resp = VerdictResponse {
            id: 7,
            epoch: 1,
            arrival_ms: 100,
            start_ms: 120,
            finish_ms: 160,
            served: Served::Full {
                verdict: "fingerprinting+exfil".into(),
                findings: 2,
                blocklisted: true,
                vendor: Some("FingerprintJS".into()),
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: VerdictResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.latency_ms(), 60);
        assert_eq!(back.queue_ms(), 20);
        assert!(back.served.is_completed());
        let rej = Served::Rejected {
            reason: RejectReason::Overload,
            retry_after_ms: 12,
        };
        assert!(!rej.is_completed());
    }
}
