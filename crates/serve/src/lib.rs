//! # canvassing-serve
//!
//! An overload-robust verdict-serving daemon: "fingerprinting detection
//! as a service" over the repo's static classifier and shared caches.
//! Clients submit script bodies or URLs; the daemon answers with the
//! taint classifier's verdict enriched with blocklist coverage and
//! vendor attribution — and stays predictable when the offered load
//! exceeds what it can classify.
//!
//! Robustness model (all on simulated time, like the rest of the repo):
//!
//! * **Admission control + bounded queues** — the admission queue is
//!   depth-bounded with explicit backpressure; requests past the ceiling
//!   get typed [`Served::Rejected`] responses with a retry-after hint,
//!   never an unbounded queue or a silent drop.
//! * **Deadline propagation** — requests carry absolute deadlines; since
//!   service lanes are FIFO and non-preemptive, completion times are
//!   exactly computable at admission, so a request that would miss its
//!   deadline is rejected *before* any parse work is wasted on it.
//! * **Tiered load shedding** — queue-depth bands degrade fidelity
//!   (full analysis → cache-only → static-heuristic → rejection),
//!   mirroring the crawl supervisor's visit-fidelity ladder; every shed
//!   is counted per tier and the partition `admitted + shed + rejected
//!   == offered` is exact.
//! * **Hot blocklist reload** — rule generations are immutable
//!   epoch-tagged [`RuleSnapshot`]s; a reload swaps the snapshot between
//!   arrivals, in-flight requests finish on their admission epoch, and
//!   the rule diff invalidates only the analysis-cache shards holding
//!   scripts from changed domains (incremental re-classification).
//!
//! Determinism contract: the full response stream is a pure function of
//! `(requests, reloads, config, network, boot snapshot)`. The plan
//! ([`ServePlan`]) makes every control-plane decision single-threaded;
//! executor workers only prewarm the parse cache (parse-under-shard-lock
//! keeps counts schedule-independent); responses assemble in request
//! order. The soak bin gates byte-identical responses across worker
//! counts 1/4/8.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod daemon;
pub mod loadgen;
pub mod plan;
pub mod request;
pub mod snapshot;
pub mod stats;

pub use daemon::{outcome_label, ServeOutput, VerdictService};
pub use loadgen::{generate, harvest_corpus, Corpus, LoadProfile, PhaseSpec};
pub use plan::{AppliedReload, Decision, Disposition, ServeConfig, ServePlan, ShedThresholds};
pub use request::{
    heuristic_scan, Payload, RejectReason, ServeTier, Served, VerdictRequest, VerdictResponse,
};
pub use snapshot::{ReloadEvent, RuleDiff, RuleSnapshot};
pub use stats::{PhaseStats, ServeStats, TierCounts};
