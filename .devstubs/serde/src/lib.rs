//! Minimal offline stand-in for serde: a real (if simple) value-tree
//! serialization facility so derived types round-trip through the
//! serde_json stub. API-compatible with the subset of serde this
//! workspace uses: `#[derive(Serialize, Deserialize)]` plus trait bounds.

pub use serde_derive::{Deserialize, Serialize};

pub mod json_value {
    /// A JSON-like value tree.
    #[derive(Clone, Debug, PartialEq)]
    pub enum JsonValue {
        Null,
        Bool(bool),
        /// Unsigned integer (exact).
        UInt(u64),
        /// Signed integer (exact).
        Int(i64),
        /// Floating point.
        Num(f64),
        Str(String),
        Arr(Vec<JsonValue>),
        Obj(Vec<(String, JsonValue)>),
    }
}

use json_value::JsonValue;

/// Serialization half of the stub data model.
pub trait Serialize {
    fn to_json_value(&self) -> JsonValue;
}

/// Deserialization half of the stub data model.
pub trait Deserialize: Sized {
    fn from_json_value(v: &JsonValue) -> Result<Self, String>;
}

// ---- helpers used by generated code ----

#[doc(hidden)]
pub fn __get<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key}"))
}

#[doc(hidden)]
pub fn __as_obj(v: &JsonValue) -> Result<&[(String, JsonValue)], String> {
    match v {
        JsonValue::Obj(o) => Ok(o),
        other => Err(format!("expected object, got {other:?}")),
    }
}

#[doc(hidden)]
pub fn __as_arr(v: &JsonValue) -> Result<&[JsonValue], String> {
    match v {
        JsonValue::Arr(a) => Ok(a),
        other => Err(format!("expected array, got {other:?}")),
    }
}

#[doc(hidden)]
pub fn __idx(arr: &[JsonValue], i: usize) -> Result<&JsonValue, String> {
    arr.get(i).ok_or_else(|| format!("missing tuple element {i}"))
}

// ---- primitive impls ----

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue { JsonValue::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, String> {
                match v {
                    JsonValue::UInt(n) => Ok(*n as $t),
                    JsonValue::Int(n) if *n >= 0 => Ok(*n as $t),
                    JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    other => Err(format!("expected unsigned integer, got {other:?}")),
                }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue { JsonValue::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, String> {
                match v {
                    JsonValue::Int(n) => Ok(*n as $t),
                    JsonValue::UInt(n) => Ok(*n as $t),
                    JsonValue::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue { JsonValue::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, String> {
                match v {
                    JsonValue::Num(n) => Ok(*n as $t),
                    JsonValue::Int(n) => Ok(*n as $t),
                    JsonValue::UInt(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

// Real serde deserializes `&str` zero-copy from the input; the stub has no
// borrowed input to hand out, so it leaks — fine for test-only use.
impl Deserialize for &'static str {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Null
    }
}
impl Deserialize for () {
    fn from_json_value(_v: &JsonValue) -> Result<Self, String> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        Ok(Box::new(T::from_json_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            None => JsonValue::Null,
            Some(t) => t.to_json_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(|t| t.to_json_value()).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Arr(a) => a.iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(|t| t.to_json_value()).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_json_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {n}"))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Arr(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &JsonValue) -> Result<Self, String> {
                let arr = __as_arr(v)?;
                Ok(($($t::from_json_value(__idx(arr, $n)?)?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys are serialized through their JSON value: strings pass through,
/// anything else uses its compact JSON rendering as the key text.
fn key_to_string(v: JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s,
        JsonValue::UInt(n) => n.to_string(),
        JsonValue::Int(n) => n.to_string(),
        JsonValue::Num(n) => n.to_string(),
        JsonValue::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, String> {
    // Try the string form first, then integer forms.
    if let Ok(k) = K::from_json_value(&JsonValue::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_json_value(&JsonValue::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_json_value(&JsonValue::Int(n)) {
            return Ok(k);
        }
    }
    Err(format!("cannot deserialize map key from {s:?}"))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let obj = __as_obj(v)?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> JsonValue {
        let mut entries: Vec<(String, JsonValue)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_json_value()), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Obj(entries)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let obj = __as_obj(v)?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(|t| t.to_json_value()).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Arr(a) => a.iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(|t| t.to_json_value()).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        match v {
            JsonValue::Arr(a) => a.iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}
