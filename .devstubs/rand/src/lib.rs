//! Minimal offline stand-in for rand 0.8: a SplitMix64-backed StdRng plus
//! the Rng / SeedableRng / SliceRandom surface this workspace uses. The
//! stream differs from the real StdRng (ChaCha12) but is deterministic,
//! which is the property the workspace's tests rely on.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64 generator (Steele, Lea, Flood 2014).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled from a range, mirroring rand's SampleRange.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching rand's iteration order (high to low).
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
