//! Minimal offline stand-in for criterion: bench targets compile and the
//! generated main() exits immediately without running any benchmark body.

pub struct Criterion;

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<I, F: FnMut(&mut Bencher)>(&mut self, _id: I, _f: F) -> &mut Self {
        self
    }

    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I, F: FnMut(&mut Bencher)>(&mut self, _id: I, _f: F) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        _input: &I,
        _f: F,
    ) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, _f: F) {}
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(_name: &str, _param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }

    pub fn from_parameter(_param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines the group fn; targets are type-checked via a never-called
/// closure so they don't trip dead_code, but nothing executes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _typecheck = || {
                let mut __c: $crate::Criterion = $config;
                $( $target(&mut __c); )+
            };
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
