//! Minimal offline stand-in for serde_derive: parses struct/enum
//! definitions by raw token inspection (no syn) and emits impls of the
//! stub `serde::Serialize` / `serde::Deserialize` traits, which map values
//! through a simple JSON tree. Supports non-generic named-field structs,
//! tuple structs, and enums with unit / tuple / struct variants — the full
//! shape inventory of this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Parsed {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses named fields from the tokens of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // expect ':'
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => break,
        }
        fields.push(name);
        // consume the type until a comma at angle depth 0
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the comma-separated items in a paren group (tuple fields).
fn tuple_arity(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                // ignore a trailing comma
                if idx + 1 < tokens.len() {
                    arity += 1;
                }
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Tuple(tuple_arity(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Shape::Named(parse_named_fields(&inner))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // skip an optional discriminant, then the separating comma
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;
    // skip generics if present
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            panic!("serde_derive stub: generic types are not supported ({name})");
        }
    }
    if kind == "struct" {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(tuple_arity(&inner))
            }
            _ => Shape::Unit,
        };
        Parsed::Struct { name, shape }
    } else if kind == "enum" {
        let variants = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                parse_variants(&inner)
            }
            _ => panic!("serde_derive stub: enum body missing for {name}"),
        };
        Parsed::Enum { name, variants }
    } else {
        panic!("serde_derive stub: unsupported item kind {kind}");
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Parsed::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::json_value::JsonValue::Obj(vec![{}])",
                        items.join(", ")
                    )
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect();
                    format!(
                        "::serde::json_value::JsonValue::Arr(vec![{}])",
                        items.join(", ")
                    )
                }
                Shape::Unit => "::serde::json_value::JsonValue::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::json_value::JsonValue {{ {body} }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::json_value::JsonValue::Str(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::json_value::JsonValue::Obj(vec![(\"{vn}\".to_string(), ::serde::json_value::JsonValue::Arr(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::json_value::JsonValue::Obj(vec![(\"{vn}\".to_string(), ::serde::json_value::JsonValue::Obj(vec![{items}]))]),",
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::json_value::JsonValue {{\n\
                 match self {{\n{arms}\n}}\n}}\n}}",
                arms = arms.join("\n")
            )
        }
    };
    out.parse().expect("serde_derive stub: generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse(input) {
        Parsed::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_json_value(::serde::__get(__obj, \"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let __obj = ::serde::__as_obj(v)?;\nOk({name} {{ {} }})",
                        items.join(" ")
                    )
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_json_value(::serde::__idx(__arr, {i})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __arr = ::serde::__as_arr(v)?;\nOk({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::json_value::JsonValue) -> Result<Self, String> {{ {body} }}\n\
                 }}"
            )
        }
        Parsed::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_json_value(::serde::__idx(__arr, {i})?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = ::serde::__as_arr(__payload)?; Ok({name}::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(::serde::__get(__inner, \"{f}\")?)?,"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __inner = ::serde::__as_obj(__payload)?; Ok({name}::{vn} {{ {} }}) }}\n",
                            items.join(" ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::json_value::JsonValue) -> Result<Self, String> {{\n\
                 match v {{\n\
                 ::serde::json_value::JsonValue::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(format!(\"unknown variant {{__other}} for {name}\")),\n\
                 }},\n\
                 ::serde::json_value::JsonValue::Obj(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __payload) = &__o[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(format!(\"unknown variant {{__other}} for {name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => Err(\"expected enum encoding for {name}\".to_string()),\n\
                 }}\n}}\n}}"
            )
        }
    };
    out.parse().expect("serde_derive stub: generated code parses")
}
