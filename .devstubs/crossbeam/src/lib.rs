//! Minimal offline stand-in for crossbeam: an unbounded MPMC channel built
//! on Mutex + Condvar with the same disconnect semantics the workspace
//! relies on (recv errors once all senders are dropped and the queue is
//! empty; iter() ends at that point).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T: std::fmt::Debug> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.queue.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.pop_front().ok_or(RecvError)
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}
