//! Minimal offline stand-in for proptest. The `proptest!` macro swallows
//! its body (property tests are skipped offline); the `Strategy` trait and
//! combinators exist only so helper functions *outside* the macro — which
//! return `impl Strategy<Value = T>` — still typecheck.

use std::marker::PhantomData;

/// A strategy that carries only its value type. Never sampled.
pub struct Stub<T>(PhantomData<fn() -> T>);

impl<T> Stub<T> {
    pub fn new() -> Self {
        Stub(PhantomData)
    }
}

impl<T> Default for Stub<T> {
    fn default() -> Self {
        Stub::new()
    }
}

impl<T> Clone for Stub<T> {
    fn clone(&self) -> Self {
        Stub::new()
    }
}

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, _f: F) -> Stub<O> {
        Stub::new()
    }

    fn prop_recursive<S, F>(self, _depth: u32, _size: u32, _branch: u32, _f: F) -> Stub<Self::Value>
    where
        S: Strategy<Value = Self::Value>,
        F: Fn(Stub<Self::Value>) -> S,
    {
        Stub::new()
    }
}

impl<T> Strategy for Stub<T> {
    type Value = T;
}

/// A strategy producing exactly one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T> Strategy for Just<T> {
    type Value = T;
}

impl<'a> Strategy for &'a str {
    type Value = String;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` — arbitrary values of T.
pub fn any<T>() -> Stub<T> {
    Stub::new()
}

#[doc(hidden)]
pub fn __stub_of<S: Strategy>(_s: &S) -> Stub<S::Value> {
    Stub::new()
}

pub mod collection {
    use super::{Strategy, Stub};

    pub fn vec<S: Strategy, R>(_element: S, _size: R) -> Stub<Vec<S::Value>> {
        Stub::new()
    }
}

pub mod char {
    use super::Stub;

    pub fn range(_lo: char, _hi: char) -> Stub<char> {
        Stub::new()
    }
}

pub struct ProptestConfig;

impl ProptestConfig {
    pub fn with_cases(_cases: u32) -> Self {
        ProptestConfig
    }
}

/// Offline stub: property tests are compiled out entirely.
#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

/// Evaluates the first arm for its strategy type; remaining arms are
/// type-checked but discarded.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let __s = $crate::__stub_of(&$first);
        $(let _ = &$rest;)*
        __s
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => {};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}
