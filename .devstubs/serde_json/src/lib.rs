//! Minimal offline stand-in for serde_json working over the stub serde
//! value tree: a compact/pretty writer and a recursive-descent parser.

use serde::json_value::JsonValue;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), &mut out, 0);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    T::from_json_value(&v).map_err(Error::new)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{:.1}", n));
    } else {
        out.push_str(&format!("{}", n));
    }
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::Num(n) => write_num(*n, out),
        JsonValue::Str(s) => write_escaped(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &JsonValue, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        JsonValue::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner);
                write_pretty(item, out, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&inner);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // multi-byte UTF-8: find the full char from the source
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(Error::new("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(Error::new("expected , or } in object")),
            }
        }
    }
}
