//! Minimal offline stand-in for bytes (unused by workspace code).
