//! Minimal offline stand-in for parking_lot over std::sync primitives.

pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
